"""Tests for the protocol record/vocabulary."""

from __future__ import annotations

import pytest

from repro.core.strategy import Action
from repro.protocol.messages import (
    DecisionLogEntry,
    Stage,
    SwapOutcome,
    SwapRecord,
)


class TestOutcome:
    def test_only_completed_succeeds(self):
        assert SwapOutcome.COMPLETED.succeeded
        for outcome in SwapOutcome:
            if outcome is not SwapOutcome.COMPLETED:
                assert not outcome.succeeded


class TestSwapRecord:
    @staticmethod
    def record_with_balances() -> SwapRecord:
        record = SwapRecord(pstar=2.0)
        record.initial_balances = {
            "alice": {"TOKEN_A": 2.0, "TOKEN_B": 0.0},
            "bob": {"TOKEN_A": 0.0, "TOKEN_B": 1.0},
        }
        record.final_balances = {
            "alice": {"TOKEN_A": 0.0, "TOKEN_B": 1.0},
            "bob": {"TOKEN_A": 2.0, "TOKEN_B": 0.0},
        }
        return record

    def test_balance_change(self):
        record = self.record_with_balances()
        assert record.balance_change("alice", "TOKEN_A") == -2.0
        assert record.balance_change("bob", "TOKEN_A") == 2.0

    def test_matches_table1(self):
        assert self.record_with_balances().matches_table1()

    def test_table1_mismatch_detected(self):
        record = self.record_with_balances()
        record.final_balances["alice"]["TOKEN_B"] = 0.5
        assert not record.matches_table1()

    def test_no_op_detection(self):
        record = SwapRecord(pstar=2.0)
        record.initial_balances = {"alice": {"TOKEN_A": 2.0, "TOKEN_B": 0.0},
                                   "bob": {"TOKEN_A": 0.0, "TOKEN_B": 1.0}}
        record.final_balances = {k: dict(v) for k, v in record.initial_balances.items()}
        assert record.is_no_op()
        assert not record.matches_table1()

    def test_decision_lookup(self):
        record = SwapRecord(pstar=2.0)
        entry = DecisionLogEntry(
            stage=Stage.T2_LOCK, agent="bob", time=3.0, price=2.0,
            action=Action.CONT,
        )
        record.log(entry)
        assert record.decision_at(Stage.T2_LOCK) is entry
        assert record.decision_at(Stage.T3_REVEAL) is None

    def test_missing_agent_balance_defaults_zero(self):
        record = SwapRecord(pstar=2.0)
        assert record.balance_change("carol", "TOKEN_A") == 0.0
