"""Tests for the collateralised protocol (Section IV execution)."""

from __future__ import annotations

import pytest

from repro.agents import AlwaysStopAgent, HonestAgent, rational_pair
from repro.protocol.collateral_swap import CollateralSwapProtocol
from repro.protocol.messages import Stage, SwapOutcome
from repro.stochastic.rng import RandomState

FLAT = [2.0, 2.0, 2.0]


def run(params, pstar, collateral, alice, bob, prices, seed=1):
    protocol = CollateralSwapProtocol(
        params, pstar, collateral, alice, bob, rng=RandomState(seed)
    )
    return protocol.run(prices)


class TestSuccess:
    def test_outcome_and_table1(self, params):
        record = run(params, 2.0, 0.5, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.outcome is SwapOutcome.COMPLETED
        # deposits returned, so net changes match Table I exactly
        assert record.matches_table1()

    def test_collateral_recorded(self, params):
        record = run(params, 2.0, 0.5, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.collateral == 0.5


class TestForfeitures:
    def test_bob_walks_forfeits_both_deposits(self, params):
        record = run(
            params, 2.0, 0.5, HonestAgent("a"), AlwaysStopAgent(Stage.T2_LOCK), FLAT
        )
        assert record.outcome is SwapOutcome.ABORTED_AT_T2
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(0.5)
        assert record.balance_change("bob", "TOKEN_A") == pytest.approx(-0.5)
        # token_b never moved
        assert record.balance_change("bob", "TOKEN_B") == pytest.approx(0.0)

    def test_alice_waives_forfeits_her_deposit(self, params):
        record = run(
            params, 2.0, 0.5, AlwaysStopAgent(Stage.T3_REVEAL), HonestAgent("b"), FLAT
        )
        assert record.outcome is SwapOutcome.ABORTED_AT_T3
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(-0.5)
        assert record.balance_change("bob", "TOKEN_A") == pytest.approx(0.5)

    def test_not_initiated_returns_deposits(self, params):
        record = run(
            params, 2.0, 0.5, AlwaysStopAgent(Stage.T1_INITIATE), HonestAgent("b"), FLAT
        )
        assert record.outcome is SwapOutcome.NOT_INITIATED
        assert record.is_no_op()


class TestZeroCollateralDegenerates:
    def test_no_escrow_when_zero(self, params):
        record = run(params, 2.0, 0.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.outcome is SwapOutcome.COMPLETED
        assert record.matches_table1()

    def test_rejects_negative(self, params):
        with pytest.raises(ValueError):
            CollateralSwapProtocol(
                params, 2.0, -0.5, HonestAgent("a"), HonestAgent("b"),
                rng=RandomState(1),
            )


class TestRationalCollateralAgents:
    def test_low_price_still_continues(self, params):
        """With collateral, Bob locks even at a crashed price (Section IV
        intuition 2) and Alice -- whose threshold dropped -- may still
        reveal."""
        alice, bob = rational_pair(params, 2.0, collateral=0.5)
        record = run(params, 2.0, 0.5, alice, bob, [2.0, 0.8, 1.2], seed=3)
        # basic-model Bob would stop at 0.8 (below his region); collateral Bob locks
        assert record.decision_at(Stage.T2_LOCK).action.value == "cont"
        # p3 = 1.2 clears the collateral threshold (~1.10)
        assert record.outcome is SwapOutcome.COMPLETED

    def test_conservation_including_deposits(self, params):
        alice, bob = rational_pair(params, 2.0, collateral=0.5)
        protocol = CollateralSwapProtocol(
            params, 2.0, 0.5, alice, bob, rng=RandomState(9)
        )
        net = protocol.network
        supply_a = net.chain_a.ledger.total_supply()
        protocol.run([2.0, 5.0, 5.0])
        assert net.chain_a.ledger.total_supply() == pytest.approx(supply_a)
