"""Protocol-level transaction fees (relaxing Assumption 2 in the substrate)."""

from __future__ import annotations

import pytest

from repro.agents import HonestAgent
from repro.chain.chain import FEE_SINK
from repro.chain.network import ALICE, BOB, TwoChainNetwork
from repro.protocol.messages import SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.stochastic.rng import RandomState


def run_with_fees(params, fee_a: float, fee_b: float, slack: float = 1.0):
    network = TwoChainNetwork(params, fee_a=fee_a, fee_b=fee_b)
    network.fund_agents(pstar=2.0, slack=slack)
    protocol = SwapProtocol(
        params, 2.0, HonestAgent("a"), HonestAgent("b"),
        rng=RandomState(1), network=network,
    )
    return protocol.run([2.0, 2.0, 2.0]), network


class TestFeeCharging:
    def test_swap_completes_with_fees(self, params):
        record, _network = run_with_fees(params, fee_a=0.01, fee_b=0.005)
        assert record.outcome is SwapOutcome.COMPLETED

    def test_fee_sink_collects(self, params):
        _record, network = run_with_fees(params, fee_a=0.01, fee_b=0.005)
        # chain_a: Alice's deploy + Bob's claim = 2 txs
        assert network.chain_a.balance(FEE_SINK) == pytest.approx(0.02)
        # chain_b: Bob's deploy + Alice's claim = 2 txs
        assert network.chain_b.balance(FEE_SINK) == pytest.approx(0.01)

    def test_supply_conserved_including_fees(self, params):
        _record, network = run_with_fees(params, fee_a=0.01, fee_b=0.005)
        # alice 2 + slack 1, bob slack 1, fees included in accounts
        assert network.chain_a.ledger.total_supply() == pytest.approx(4.0)
        assert network.chain_b.ledger.total_supply() == pytest.approx(3.0)

    def test_agents_pay_their_own_fees(self, params):
        record, _network = run_with_fees(params, fee_a=0.01, fee_b=0.005)
        # Alice: -P* swap leg, -fee_a deploy on chain_a
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(-2.01)
        # Alice claim fee on chain_b: +1 received, -0.005 fee
        assert record.balance_change("alice", "TOKEN_B") == pytest.approx(0.995)
        # Bob: +P* redeemed, -fee_a claim
        assert record.balance_change("bob", "TOKEN_A") == pytest.approx(1.99)
        assert record.balance_change("bob", "TOKEN_B") == pytest.approx(-1.005)

    def test_insolvent_sender_tx_fails(self, params):
        # no slack: the fee is reserved first, leaving Alice short for the
        # lock itself -- the deploy fails and the fee is consumed (as on a
        # real chain, a failed transaction still pays)
        record, network = run_with_fees(params, fee_a=0.5, fee_b=0.0, slack=0.0)
        assert record.outcome is not SwapOutcome.COMPLETED
        deploy_tx = network.chain_a.transactions[0]
        assert deploy_tx.status.value == "failed"
        assert network.chain_a.balance(FEE_SINK) == pytest.approx(0.5)
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(-0.5)

    def test_system_refunds_exempt_from_fees(self, params):
        # Bob never locks (verification fails is not the case here; use a
        # stopping Bob) -> Alice's HTLC refunds via a system tx, fee-free
        from repro.agents import AlwaysStopAgent
        from repro.protocol.messages import Stage

        network = TwoChainNetwork(params, fee_a=0.01, fee_b=0.005)
        network.fund_agents(pstar=2.0, slack=1.0)
        protocol = SwapProtocol(
            params, 2.0, HonestAgent("a"), AlwaysStopAgent(Stage.T2_LOCK),
            rng=RandomState(2), network=network,
        )
        record = protocol.run([2.0, 2.0, 2.0])
        assert record.outcome is SwapOutcome.ABORTED_AT_T2
        # Alice lost only her deploy fee; the refund itself was free
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(-0.01)

    def test_zero_fee_network_unchanged(self, params):
        record, network = run_with_fees(params, fee_a=0.0, fee_b=0.0, slack=0.0)
        assert record.outcome is SwapOutcome.COMPLETED
        assert record.matches_table1()
        assert not network.chain_a.ledger.has_account(FEE_SINK)

    def test_fee_validation(self, params):
        with pytest.raises(ValueError):
            TwoChainNetwork(params, fee_a=-0.1)
