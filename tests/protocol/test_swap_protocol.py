"""Tests for the HTLC swap protocol engine."""

from __future__ import annotations

import pytest

from repro.agents import AlwaysStopAgent, CrashingAgent, HonestAgent, rational_pair
from repro.core.parameters import SwapParameters
from repro.protocol.errors import ProtocolStateError
from repro.protocol.messages import Stage, SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.stochastic.rng import RandomState

FLAT = [2.0, 2.0, 2.0]


def run(params, pstar, alice, bob, prices, seed=1):
    return SwapProtocol(params, pstar, alice, bob, rng=RandomState(seed)).run(prices)


class TestHappyPath:
    def test_completion(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.outcome is SwapOutcome.COMPLETED
        assert record.outcome.succeeded

    def test_balance_changes_match_table1(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.matches_table1()

    def test_receipt_times_match_eq13(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        grid = params.grid
        assert record.alice_received_at == pytest.approx(grid.t5)
        assert record.bob_received_at == pytest.approx(grid.t6)

    def test_htlc_lock_times(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.htlc_a_locked_at == pytest.approx(params.grid.t2)
        assert record.htlc_b_locked_at == pytest.approx(params.grid.t3)

    def test_secret_revealed_at_t3(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        assert record.secret_revealed_at == pytest.approx(params.grid.t3)

    def test_all_four_decisions_logged(self, params):
        record = run(params, 2.0, HonestAgent("a"), HonestAgent("b"), FLAT)
        stages = [entry.stage for entry in record.decisions]
        assert stages == [
            Stage.T1_INITIATE, Stage.T2_LOCK, Stage.T3_REVEAL, Stage.T4_REDEEM,
        ]


class TestAbortPaths:
    def test_not_initiated(self, params):
        record = run(
            params, 2.0, AlwaysStopAgent(Stage.T1_INITIATE), HonestAgent("b"), FLAT
        )
        assert record.outcome is SwapOutcome.NOT_INITIATED
        assert record.is_no_op()
        assert len(record.decisions) == 1

    def test_bob_walks_at_t2(self, params):
        record = run(
            params, 2.0, HonestAgent("a"), AlwaysStopAgent(Stage.T2_LOCK), FLAT
        )
        assert record.outcome is SwapOutcome.ABORTED_AT_T2
        assert record.is_no_op()  # Alice refunded by expiry

    def test_alice_waives_at_t3(self, params):
        record = run(
            params, 2.0, AlwaysStopAgent(Stage.T3_REVEAL), HonestAgent("b"), FLAT
        )
        assert record.outcome is SwapOutcome.ABORTED_AT_T3
        assert record.is_no_op()  # both refunded by expiry

    def test_abort_never_loses_funds(self, params):
        for stop_stage in (Stage.T1_INITIATE, Stage.T2_LOCK, Stage.T3_REVEAL):
            alice = (
                AlwaysStopAgent(stop_stage)
                if stop_stage is not Stage.T2_LOCK
                else HonestAgent("a")
            )
            bob = (
                AlwaysStopAgent(stop_stage)
                if stop_stage is Stage.T2_LOCK
                else HonestAgent("b")
            )
            record = run(params, 2.0, alice, bob, FLAT)
            assert record.is_no_op(), stop_stage


class TestCrashFailures:
    def test_bob_crash_at_t4_forfeits(self, params):
        bob = CrashingAgent(HonestAgent("b"), Stage.T4_REDEEM)
        record = run(params, 2.0, HonestAgent("a"), bob, FLAT)
        assert record.outcome is SwapOutcome.BOB_FORFEITED
        # Alice keeps her Token_a (refunded) AND gains Token_b
        assert record.balance_change("alice", "TOKEN_A") == pytest.approx(0.0)
        assert record.balance_change("alice", "TOKEN_B") == pytest.approx(1.0)
        assert record.balance_change("bob", "TOKEN_B") == pytest.approx(-1.0)

    def test_crash_is_logged(self, params):
        bob = CrashingAgent(HonestAgent("b"), Stage.T4_REDEEM)
        record = run(params, 2.0, HonestAgent("a"), bob, FLAT)
        entry = record.decision_at(Stage.T4_REDEEM)
        assert entry is not None
        assert entry.crashed

    def test_alice_crash_at_t3_is_clean_abort(self, params):
        alice = CrashingAgent(HonestAgent("a"), Stage.T3_REVEAL)
        record = run(params, 2.0, alice, HonestAgent("b"), FLAT)
        assert record.outcome is SwapOutcome.ABORTED_AT_T3
        assert record.is_no_op()

    def test_bob_crash_at_t2_is_clean_abort(self, params):
        bob = CrashingAgent(HonestAgent("b"), Stage.T2_LOCK)
        record = run(params, 2.0, HonestAgent("a"), bob, FLAT)
        assert record.outcome is SwapOutcome.ABORTED_AT_T2
        assert record.is_no_op()


class TestRationalAgents:
    def test_equilibrium_paths(self, params):
        cases = [
            ([2.0, 2.0, 2.0], SwapOutcome.COMPLETED),
            ([2.0, 2.0, 1.0], SwapOutcome.ABORTED_AT_T3),  # below P3 threshold
            ([2.0, 3.0, 3.0], SwapOutcome.ABORTED_AT_T2),  # above Bob's range
            ([2.0, 1.0, 1.0], SwapOutcome.ABORTED_AT_T2),  # below Bob's range
        ]
        for prices, expected in cases:
            record = run(params, 2.0, *rational_pair(params, 2.0), prices)
            assert record.outcome is expected, prices

    def test_rational_alice_declines_bad_rate(self, params):
        record = run(params, 4.0, *rational_pair(params, 4.0), [2.0, 2.0, 2.0])
        assert record.outcome is SwapOutcome.NOT_INITIATED


class TestEngineHygiene:
    def test_single_use(self, params):
        protocol = SwapProtocol(
            params, 2.0, HonestAgent("a"), HonestAgent("b"), rng=RandomState(1)
        )
        protocol.run(FLAT)
        with pytest.raises(ProtocolStateError):
            protocol.run(FLAT)

    def test_rejects_wrong_price_count(self, params):
        protocol = SwapProtocol(
            params, 2.0, HonestAgent("a"), HonestAgent("b"), rng=RandomState(1)
        )
        with pytest.raises(ValueError, match="t1, t2, t3"):
            protocol.run([2.0, 2.0])

    def test_rejects_bad_pstar(self, params):
        with pytest.raises(ValueError):
            SwapProtocol(
                params, 0.0, HonestAgent("a"), HonestAgent("b"), rng=RandomState(1)
            )

    def test_fresh_secret_per_protocol(self, params):
        rng = RandomState(1)
        p1 = SwapProtocol(params, 2.0, HonestAgent("a"), HonestAgent("b"), rng=rng)
        p1.run(FLAT)
        p2 = SwapProtocol(params, 2.0, HonestAgent("a"), HonestAgent("b"), rng=rng)
        p2.run(FLAT)
        h1 = p1.network.chain_a.blocks[0].transactions[0].operation.contract.hashlock
        h2 = p2.network.chain_a.blocks[0].transactions[0].operation.contract.hashlock
        assert h1 != h2


class TestTokenConservation:
    @pytest.mark.parametrize(
        "prices",
        [[2.0, 2.0, 2.0], [2.0, 2.0, 1.0], [2.0, 3.0, 3.0], [2.0, 1.0, 1.0]],
    )
    def test_supply_conserved(self, params, prices):
        protocol = SwapProtocol(
            params, 2.0, *rational_pair(params, 2.0), rng=RandomState(5)
        )
        net = protocol.network
        supply_a = net.chain_a.ledger.total_supply()
        supply_b = net.chain_b.ledger.total_supply()
        protocol.run(prices)
        assert net.chain_a.ledger.total_supply() == pytest.approx(supply_a)
        assert net.chain_b.ledger.total_supply() == pytest.approx(supply_b)
