"""Tests for the episode runner and Monte Carlo batches."""

from __future__ import annotations

import pytest

from repro.agents import AlwaysStopAgent, HonestAgent
from repro.core.parameters import SwapParameters
from repro.protocol.messages import Stage, SwapOutcome
from repro.simulation.engine import EpisodeConfig, run_episode
from repro.simulation.montecarlo import (
    empirical_success_rate,
    validate_against_analytic,
)
from repro.simulation.scenarios import SCENARIOS, scenario
from repro.stochastic.rng import RandomState


class TestEpisodeConfig:
    def test_defaults_to_rational_agents(self, params):
        config = EpisodeConfig(params=params, pstar=2.0)
        alice, bob = config.agents()
        assert alice.name == "alice"
        assert bob.name == "bob"

    def test_partial_override(self, params):
        stopper = AlwaysStopAgent(Stage.T2_LOCK)
        config = EpisodeConfig(params=params, pstar=2.0, bob=stopper)
        _alice, bob = config.agents()
        assert bob is stopper

    def test_validation(self, params):
        with pytest.raises(ValueError):
            EpisodeConfig(params=params, pstar=-1.0)
        with pytest.raises(ValueError):
            EpisodeConfig(params=params, pstar=2.0, collateral=-0.1)


class TestRunEpisode:
    def test_deterministic_prices(self, params):
        config = EpisodeConfig(
            params=params, pstar=2.0,
            alice=HonestAgent("a"), bob=HonestAgent("b"),
        )
        record = run_episode(config, RandomState(1), decision_prices=[2, 2, 2])
        assert record.outcome is SwapOutcome.COMPLETED

    def test_sampled_prices_reproducible(self, params):
        config = EpisodeConfig(params=params, pstar=2.0)
        a = run_episode(config, RandomState(7))
        b = run_episode(config, RandomState(7))
        assert a.outcome == b.outcome
        assert [e.price for e in a.decisions] == [e.price for e in b.decisions]

    def test_collateral_episode(self, params):
        config = EpisodeConfig(
            params=params, pstar=2.0, collateral=0.5,
            alice=HonestAgent("a"), bob=HonestAgent("b"),
        )
        record = run_episode(config, RandomState(2), decision_prices=[2, 2, 2])
        assert record.outcome is SwapOutcome.COMPLETED
        assert record.collateral == 0.5


class TestStrategyLevelMonteCarlo:
    def test_matches_analytic(self, params):
        empirical, analytic = validate_against_analytic(
            params, 2.0, n_paths=100_000, seed=17
        )
        assert empirical.contains(analytic)
        assert empirical.success_rate == pytest.approx(analytic, abs=0.01)

    def test_collateral_matches_analytic(self, params):
        empirical, analytic = validate_against_analytic(
            params, 2.0, n_paths=100_000, seed=18, collateral=0.5
        )
        assert empirical.contains(analytic)

    def test_not_initiated_when_rate_infeasible(self, params):
        result = empirical_success_rate(params, 4.0, n_paths=1000, seed=1)
        assert result.n_initiated == 0
        assert result.success_rate == 0.0

    def test_reproducible(self, params):
        a = empirical_success_rate(params, 2.0, n_paths=5000, seed=3)
        b = empirical_success_rate(params, 2.0, n_paths=5000, seed=3)
        assert a.success_rate == b.success_rate

    def test_rejects_bad_paths(self, params):
        with pytest.raises(ValueError):
            empirical_success_rate(params, 2.0, n_paths=0)


class TestProtocolLevelMonteCarlo:
    def test_matches_analytic(self, params):
        empirical, analytic = validate_against_analytic(
            params, 2.0, n_paths=600, seed=19, protocol_level=True
        )
        assert empirical.contains(analytic)

    def test_protocol_and_strategy_levels_agree(self, params):
        strategy = empirical_success_rate(params, 2.0, n_paths=50_000, seed=20)
        protocol = empirical_success_rate(
            params, 2.0, n_paths=600, seed=20, protocol_level=True
        )
        # wide protocol CI must overlap the tight strategy CI
        assert protocol.ci_low <= strategy.ci_high
        assert strategy.ci_low <= protocol.ci_high


class TestScenarios:
    def test_all_scenarios_valid(self):
        for name, params in SCENARIOS.items():
            assert params.p0 > 0, name

    def test_lookup(self):
        assert scenario("default") == SwapParameters.default()

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("nope")

    def test_volatility_scenarios_ordered(self):
        assert scenario("calm_market").sigma < scenario("default").sigma
        assert scenario("default").sigma < scenario("volatile_market").sigma
