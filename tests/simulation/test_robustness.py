"""Tests for the timing-robustness study (jitter x margin x wait)."""

from __future__ import annotations

import pytest

from repro.chain.network import TwoChainNetwork
from repro.core.parameters import SwapParameters
from repro.protocol.messages import SwapOutcome
from repro.simulation.robustness import RobustnessPoint, timing_robustness_sweep
from repro.stochastic.rng import RandomState


def cell(points, jitter, margin, wait):
    for point in points:
        if (
            point.jitter == jitter
            and point.margin == margin
            and point.wait_slack == wait
        ):
            return point
    raise KeyError((jitter, margin, wait))


@pytest.fixture(scope="module")
def sweep():
    return timing_robustness_sweep(
        SwapParameters.default(),
        jitters=(0.0, 0.25),
        margins=(0.0, 2.0),
        wait_slacks=(0.0, 1.0),
        n_runs=120,
        seed=17,
    )


class TestJitterSubstrate:
    def test_requires_rng(self, params):
        with pytest.raises(ValueError, match="jitter_rng"):
            TwoChainNetwork(params, confirmation_jitter=0.2)

    def test_zero_jitter_deterministic(self, params):
        net = TwoChainNetwork(params)
        assert net.chain_a._draw_confirmation_time() == params.tau_a

    def test_jittered_delays_bounded(self, params):
        net = TwoChainNetwork(
            params, confirmation_jitter=0.3, jitter_rng=RandomState(5)
        )
        for _ in range(200):
            delay = net.chain_a._draw_confirmation_time()
            assert params.tau_a * 0.7 - 1e-9 <= delay <= params.tau_a * 1.3 + 1e-9
            assert delay > net.chain_a.mempool_delay

    def test_negative_jitter_rejected(self, params):
        with pytest.raises(ValueError):
            TwoChainNetwork(
                params, confirmation_jitter=-0.1, jitter_rng=RandomState(1)
            )


class TestSweepResults:
    def test_no_jitter_always_completes(self, sweep):
        for margin in (0.0, 2.0):
            for wait in (0.0, 1.0):
                point = cell(sweep, 0.0, margin, wait)
                assert point.completion_rate == 1.0
                assert point.violation_rate == 0.0

    def test_jitter_without_protection_breaks_atomicity(self, sweep):
        point = cell(sweep, 0.25, 0.0, 0.0)
        assert point.completion_rate < 0.5
        assert point.violation_rate > 0.0

    def test_margin_eliminates_violations(self, sweep):
        """Padding the timelocks protects revealed claims."""
        assert cell(sweep, 0.25, 2.0, 0.0).violation_rate == 0.0
        assert cell(sweep, 0.25, 2.0, 1.0).violation_rate == 0.0

    def test_margin_plus_wait_restores_completion(self, sweep):
        point = cell(sweep, 0.25, 2.0, 1.0)
        assert point.completion_rate == 1.0
        assert point.handshake_failure_rate == 0.0

    def test_wait_alone_cuts_handshake_failures(self, sweep):
        fragile = cell(sweep, 0.25, 0.0, 0.0)
        patient = cell(sweep, 0.25, 0.0, 1.0)
        assert patient.handshake_failure_rate < fragile.handshake_failure_rate

    def test_wait_without_margin_risks_violations(self, sweep):
        """Waiting longer pushes claims closer to unpadded expiries --
        handshakes survive but more revealed claims miss the timeout."""
        fragile = cell(sweep, 0.25, 0.0, 0.0)
        patient = cell(sweep, 0.25, 0.0, 1.0)
        assert patient.violation_rate >= fragile.violation_rate

    def test_counts_add_up(self, sweep):
        for point in sweep:
            assert sum(point.outcomes.values()) == point.n_runs

    def test_validation(self, params):
        with pytest.raises(ValueError):
            timing_robustness_sweep(params, n_runs=0)


class TestViolationAccounting:
    def test_alice_forfeited_balances(self, params):
        """Force the violation deterministically: huge jitter, many runs,
        find an ALICE_FORFEITED record and audit the balance changes."""
        points = timing_robustness_sweep(
            params, jitters=(0.4,), margins=(0.0,), wait_slacks=(1.5,),
            n_runs=150, seed=23,
        )
        point = points[0]
        assert point.outcomes.get(SwapOutcome.ALICE_FORFEITED, 0) > 0
