"""Tests for the heterogeneous-population market study."""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.simulation.population import (
    MarketOutcome,
    PopulationSpec,
    simulate_market,
    volatility_failure_curve,
)
from repro.stochastic.rng import RandomState


class TestPopulationSpec:
    def test_sampling_within_ranges(self):
        spec = PopulationSpec(alpha_range=(0.2, 0.4), r_range=(0.005, 0.01))
        rng = RandomState(1)
        for _ in range(50):
            alpha_a, alpha_b, r_a, r_b = spec.sample_pair(rng)
            assert 0.2 <= alpha_a <= 0.4
            assert 0.2 <= alpha_b <= 0.4
            assert 0.005 <= r_a <= 0.01
            assert 0.005 <= r_b <= 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationSpec(alpha_range=(0.5, 0.2))
        with pytest.raises(ValueError):
            PopulationSpec(r_range=(0.0, 0.01))


class TestSimulateMarket:
    def test_reproducible(self, params):
        spec = PopulationSpec()
        a = simulate_market(params, spec, n_pairs=10, seed=4)
        b = simulate_market(params, spec, n_pairs=10, seed=4)
        assert a == b

    def test_outcome_fields(self, params):
        outcome = simulate_market(params, PopulationSpec(), n_pairs=10, seed=5)
        assert outcome.n_pairs == 10
        assert 0 <= outcome.n_participating <= 10
        assert 0.0 <= outcome.mean_success_rate <= 1.0
        assert 0.0 <= outcome.participation_rate <= 1.0
        assert outcome.failure_rate == pytest.approx(
            1.0 - outcome.mean_success_rate
        )

    def test_rejects_bad_n(self, params):
        with pytest.raises(ValueError):
            simulate_market(params, PopulationSpec(), n_pairs=0, seed=1)

    def test_hostile_population_does_not_participate(self, params):
        spec = PopulationSpec(alpha_range=(0.0, 0.02), r_range=(0.05, 0.1))
        outcome = simulate_market(params, spec, n_pairs=8, seed=6)
        assert outcome.n_participating == 0
        assert outcome.failure_rate == 0.0  # nothing traded, nothing failed


class TestVolatilityCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return volatility_failure_curve(
            SwapParameters.default(),
            PopulationSpec(),
            sigmas=(0.03, 0.08, 0.14),
            n_pairs=25,
            seed=7,
        )

    def test_failure_rises_with_volatility(self, curve):
        """The Bisq anecdote: failures increase in volatile periods."""
        failures = [o.failure_rate for o in curve]
        assert failures[0] < failures[1] < failures[2]

    def test_calm_market_failure_is_small(self, curve):
        # Bisq reports 3-5% arbitration in normal conditions
        assert curve[0].failure_rate < 0.05

    def test_participation_declines(self, curve):
        participations = [o.participation_rate for o in curve]
        assert participations[-1] <= participations[0]

    def test_sigma_recorded(self, curve):
        assert [o.sigma for o in curve] == [0.03, 0.08, 0.14]
