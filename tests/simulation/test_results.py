"""Tests for batch aggregation and the Wilson interval."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.messages import SwapOutcome, SwapRecord
from repro.simulation.results import BatchSummary, wilson_interval


def record(outcome: SwapOutcome) -> SwapRecord:
    r = SwapRecord(pstar=2.0)
    r.outcome = outcome
    return r


class TestWilsonInterval:
    def test_symmetric_at_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert (0.5 - lo) == pytest.approx(hi - 0.5, abs=1e-9)

    def test_narrows_with_more_trials(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_handles_extremes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        assert hi > 0.0
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0
        assert lo < 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestBatchSummary:
    def test_counts(self):
        summary = BatchSummary.from_records(
            [
                record(SwapOutcome.COMPLETED),
                record(SwapOutcome.COMPLETED),
                record(SwapOutcome.ABORTED_AT_T3),
                record(SwapOutcome.NOT_INITIATED),
            ]
        )
        assert summary.n_total == 4
        assert summary.n_initiated == 3
        assert summary.n_completed == 2

    def test_success_rate_conditions_on_initiation(self):
        summary = BatchSummary.from_records(
            [record(SwapOutcome.COMPLETED), record(SwapOutcome.NOT_INITIATED)]
        )
        assert summary.success_rate == 1.0
        assert summary.unconditional_success_rate == 0.5

    def test_empty_batch(self):
        summary = BatchSummary()
        assert summary.success_rate == 0.0
        assert summary.unconditional_success_rate == 0.0
        assert summary.success_rate_ci() == (0.0, 1.0)
        assert summary.outcome_fractions() == {}

    def test_rejects_unfinished_record(self):
        with pytest.raises(ValueError, match="outcome"):
            BatchSummary().add(SwapRecord(pstar=2.0))

    def test_outcome_fractions(self):
        summary = BatchSummary.from_records(
            [record(SwapOutcome.COMPLETED)] * 3 + [record(SwapOutcome.ABORTED_AT_T2)]
        )
        fractions = summary.outcome_fractions()
        assert fractions[SwapOutcome.COMPLETED] == 0.75
        assert fractions[SwapOutcome.ABORTED_AT_T2] == 0.25

    def test_describe_renders(self):
        summary = BatchSummary.from_records([record(SwapOutcome.COMPLETED)])
        text = summary.describe()
        assert "success rate" in text
        assert "completed" in text


@settings(max_examples=60, deadline=None)
@given(
    successes=st.integers(min_value=0, max_value=100),
    extra=st.integers(min_value=0, max_value=100),
)
def test_property_wilson_contains_point_estimate(successes, extra):
    trials = successes + extra
    if trials == 0:
        return
    lo, hi = wilson_interval(successes, trials)
    phat = successes / trials
    assert 0.0 <= lo <= phat + 1e-12
    assert phat - 1e-12 <= hi <= 1.0
