"""Tests for all agent implementations."""

from __future__ import annotations

import pytest

from repro.agents import (
    AlwaysStopAgent,
    CrashingAgent,
    HonestAgent,
    MyopicAgent,
    RationalAlice,
    RationalBob,
    rational_pair,
)
from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import CollateralBackwardInduction
from repro.core.strategy import Action
from repro.protocol.errors import AgentCrashed
from repro.protocol.messages import DecisionContext, Stage


def ctx(stage: Stage, price: float = 2.0, pstar: float = 2.0, params=None):
    from repro.core.parameters import SwapParameters

    return DecisionContext(
        stage=stage,
        time=0.0,
        price=price,
        pstar=pstar,
        params=params if params is not None else SwapParameters.default(),
    )


class TestHonest:
    def test_always_continues(self):
        agent = HonestAgent()
        assert agent.decide_initiate(ctx(Stage.T1_INITIATE)) is Action.CONT
        assert agent.decide_lock(ctx(Stage.T2_LOCK)) is Action.CONT
        assert agent.decide_reveal(ctx(Stage.T3_REVEAL)) is Action.CONT
        assert agent.decide_redeem(ctx(Stage.T4_REDEEM)) is Action.CONT


class TestAlwaysStop:
    def test_stops_only_at_target_stage(self):
        agent = AlwaysStopAgent(Stage.T3_REVEAL)
        assert agent.decide_initiate(ctx(Stage.T1_INITIATE)) is Action.CONT
        assert agent.decide_lock(ctx(Stage.T2_LOCK)) is Action.CONT
        assert agent.decide_reveal(ctx(Stage.T3_REVEAL)) is Action.STOP


class TestMyopic:
    def test_alice_wants_cheap_token_b(self):
        agent = MyopicAgent("alice")
        assert agent.decide_reveal(ctx(Stage.T3_REVEAL, price=2.5)) is Action.CONT
        assert agent.decide_reveal(ctx(Stage.T3_REVEAL, price=1.5)) is Action.STOP

    def test_bob_wants_expensive_token_a(self):
        agent = MyopicAgent("bob")
        assert agent.decide_lock(ctx(Stage.T2_LOCK, price=1.5)) is Action.CONT
        assert agent.decide_lock(ctx(Stage.T2_LOCK, price=2.5)) is Action.STOP

    def test_rejects_bad_role(self):
        with pytest.raises(ValueError):
            MyopicAgent("carol")

    def test_myopic_differs_from_rational(self, params):
        """The myopic rule ignores Alice's optionality: at prices just
        above P* but below Alice's dynamic threshold region boundary the
        two policies diverge -- the ablation the benchmarks quantify."""
        solver = BackwardInduction(params, 2.0)
        hi = solver.bob_t2_region().bounds()[1]
        price = (2.0 + hi) / 2.0  # above P*, inside rational Bob's region
        myopic = MyopicAgent("bob")
        rational = rational_pair(params, 2.0)[1]
        assert myopic.decide_lock(ctx(Stage.T2_LOCK, price=price)) is Action.STOP
        assert rational.decide_lock(ctx(Stage.T2_LOCK, price=price)) is Action.CONT


class TestCrashing:
    def test_crashes_from_stage_onward(self):
        agent = CrashingAgent(HonestAgent(), Stage.T3_REVEAL)
        assert agent.decide_initiate(ctx(Stage.T1_INITIATE)) is Action.CONT
        assert agent.decide_lock(ctx(Stage.T2_LOCK)) is Action.CONT
        with pytest.raises(AgentCrashed):
            agent.decide_reveal(ctx(Stage.T3_REVEAL))
        with pytest.raises(AgentCrashed):
            agent.decide_redeem(ctx(Stage.T4_REDEEM))

    def test_name_derived_from_inner(self):
        agent = CrashingAgent(HonestAgent("inner"), Stage.T2_LOCK)
        assert "inner" in agent.name


class TestRational:
    def test_pair_matches_solver(self, params):
        alice, bob = rational_pair(params, 2.0)
        solver = BackwardInduction(params, 2.0)
        thr = solver.p3_threshold()
        assert alice.decide_reveal(ctx(Stage.T3_REVEAL, price=thr * 1.01)) is Action.CONT
        assert alice.decide_reveal(ctx(Stage.T3_REVEAL, price=thr * 0.99)) is Action.STOP
        lo, hi = solver.bob_t2_region().bounds()
        assert bob.decide_lock(ctx(Stage.T2_LOCK, price=(lo + hi) / 2)) is Action.CONT
        assert bob.decide_lock(ctx(Stage.T2_LOCK, price=hi * 1.05)) is Action.STOP

    def test_collateral_pair_uses_section4_thresholds(self, params):
        alice, bob = rational_pair(params, 2.0, collateral=0.5)
        solver = CollateralBackwardInduction(params, 2.0, 0.5)
        assert alice.strategy.p3_threshold == pytest.approx(solver.p3_threshold())
        # collateralised Bob locks at very low prices
        assert bob.decide_lock(ctx(Stage.T2_LOCK, price=0.2)) is Action.CONT

    def test_role_guards(self, params):
        alice, bob = rational_pair(params, 2.0)
        with pytest.raises(NotImplementedError):
            alice.decide_lock(ctx(Stage.T2_LOCK))
        with pytest.raises(NotImplementedError):
            bob.decide_initiate(ctx(Stage.T1_INITIATE))
        with pytest.raises(NotImplementedError):
            bob.decide_reveal(ctx(Stage.T3_REVEAL))

    def test_bob_always_redeems(self, params):
        _alice, bob = rational_pair(params, 2.0)
        assert bob.decide_redeem(ctx(Stage.T4_REDEEM)) is Action.CONT

    def test_constructable_from_strategies(self, params):
        from repro.core.strategy import equilibrium_strategies

        a_strat, b_strat = equilibrium_strategies(params, 2.0)
        assert RationalAlice(a_strat).strategy is a_strat
        assert RationalBob(b_strat).strategy is b_strat
