"""The unified ``repro.api`` facade and the removed aliases.

The facade must be a pure re-routing layer: on default keywords it
returns results *equal* to the pre-existing per-game entry points. The
pre-facade top-level names finished their deprecation cycle in v1.2:
they now fail hard with an ImportError that names the replacement.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import solve, success_rate, sweep
from repro.core.collateral import (
    CollateralEquilibrium,
    collateral_success_rate,
    solve_collateral_game,
)
from repro.core.equilibrium import SwapEquilibrium
from repro.core.parameters import SwapParameters
from repro.core.premium import PremiumEquilibrium, solve_premium_game
from repro.core.solver import solve_swap_game
from repro.core.success_rate import success_rate as core_success_rate


class TestSolveDelegation:
    def test_basic_game_equals_core_solver(self, params):
        for pstar in (1.8, 2.0, 2.2):
            assert solve(params, pstar) == solve_swap_game(params, pstar)

    def test_basic_game_returns_swap_equilibrium(self, params):
        assert isinstance(solve(params, 2.0), SwapEquilibrium)

    def test_collateral_game_equals_core_solver(self, params):
        got = solve(params, 2.0, collateral=0.5)
        assert isinstance(got, CollateralEquilibrium)
        assert got == solve_collateral_game(params, 2.0, 0.5)

    def test_premium_game_equals_core_solver(self, params):
        got = solve(params, 2.0, premium=0.1)
        assert isinstance(got, PremiumEquilibrium)
        assert got == solve_premium_game(params, 2.0, 0.1)

    def test_collateral_and_premium_are_mutually_exclusive(self, params):
        with pytest.raises(ValueError):
            solve(params, 2.0, collateral=0.5, premium=0.1)

    def test_defaults_to_table_iii_parameters(self):
        assert solve() == solve_swap_game(SwapParameters.default(), 2.0)

    def test_rejects_non_parameter_objects(self):
        with pytest.raises(TypeError):
            solve({"sigma": 0.1}, 2.0)


class TestSuccessRateDelegation:
    def test_basic_rate_matches_core(self, params):
        assert success_rate(params, 2.0) == core_success_rate(params, 2.0)

    def test_collateral_rate_matches_core(self, params):
        assert success_rate(params, 2.0, collateral=0.5) == (
            collateral_success_rate(params, 2.0, 0.5)
        )


def _assert_equilibria_close(got, want, tol=1e-9):
    """Field-wise parity between an engine-solved and a scalar equilibrium.

    The sweep verb answers through the vectorised grid engine, whose
    batched-bisection roots differ from the scalar solver's Brent roots
    at ~1e-12; the contract is agreement to ``tol``, not bitwise
    equality (see tests/core/test_grid_parity.py for the full property
    suite).
    """
    assert type(got) is type(want)
    assert got.pstar == want.pstar
    assert got.p3_threshold == pytest.approx(want.p3_threshold, abs=tol)
    assert got.alice_t1.cont == pytest.approx(want.alice_t1.cont, abs=tol)
    assert got.alice_t1.stop == pytest.approx(want.alice_t1.stop, abs=tol)
    assert got.bob_t1.cont == pytest.approx(want.bob_t1.cont, abs=tol)
    assert got.bob_t1.stop == pytest.approx(want.bob_t1.stop, abs=tol)
    assert got.success_rate == pytest.approx(want.success_rate, abs=tol)
    assert len(got.bob_t2_region.intervals) == len(want.bob_t2_region.intervals)
    for (glo, ghi), (wlo, whi) in zip(
        got.bob_t2_region.intervals, want.bob_t2_region.intervals
    ):
        assert glo == pytest.approx(wlo, abs=tol)
        assert ghi == pytest.approx(whi, abs=tol)


class TestSweep:
    def test_matches_pointwise_solves(self, params):
        grid = [1.9, 2.0, 2.1]
        got = sweep(grid, params)
        for item, pstar in zip(got, grid):
            _assert_equilibria_close(item, solve_swap_game(params, pstar))

    def test_collateral_sweep(self, params):
        grid = [2.0, 2.1]
        got = sweep(grid, params, collateral=0.5)
        for item, pstar in zip(got, grid):
            _assert_equilibria_close(item, solve_collateral_game(params, pstar, 0.5))

    def test_empty_grid(self, params):
        assert sweep([], params) == []


class TestValidateFacade:
    def test_returns_validation_result(self, params):
        result = repro.validate(params, 2.0, n_paths=500, seed=3)
        assert result.empirical.n_paths == 500
        assert result.seed_used == 3
        assert 0.0 <= result.empirical.success_rate <= 1.0
        assert result.analytic == pytest.approx(core_success_rate(params, 2.0))


class TestRemovedAliases:
    @pytest.mark.parametrize(
        "name",
        ["solve_swap_game", "solve_collateral_game", "solve_premium_game"],
    )
    def test_top_level_access_fails_hard(self, name):
        with pytest.raises(ImportError, match="repro.api"):
            getattr(repro, name)

    def test_error_names_the_replacement(self):
        with pytest.raises(ImportError, match=r"repro\.solve\(params, pstar\)"):
            repro.solve_swap_game

    def test_from_import_fails_too(self):
        with pytest.raises(ImportError):
            from repro import solve_premium_game  # noqa: F401

    def test_dropped_from_all(self):
        for name in (
            "solve_swap_game",
            "solve_collateral_game",
            "solve_premium_game",
        ):
            assert name not in repro.__all__

    def test_unknown_attributes_still_raise_attribute_error(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_name

    def test_core_originals_survive_and_stay_silent(self, params):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve_swap_game(params, 2.0)
            solve_collateral_game(params, 2.0, 0.5)
            solve_premium_game(params, 2.0, 0.1)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestPublicSurface:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_facade_names_exported(self):
        for name in ("solve", "validate", "sweep", "success_rate", "Equilibrium"):
            assert name in repro.__all__
