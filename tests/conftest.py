"""Shared fixtures.

Solvers for the default parameters are session-scoped: they are
immutable and moderately expensive to build, and dozens of tests read
the same thresholds/regions.
"""

from __future__ import annotations

import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.stochastic.rng import RandomState


@pytest.fixture(scope="session")
def params() -> SwapParameters:
    """The paper's Table III defaults."""
    return SwapParameters.default()


@pytest.fixture(scope="session")
def solver(params: SwapParameters) -> BackwardInduction:
    """Basic-game solver at the reference rate P* = 2."""
    return BackwardInduction(params, pstar=2.0)


@pytest.fixture()
def rng() -> RandomState:
    """A fresh deterministic random stream per test."""
    return RandomState(20210701)
