"""Tests for price series, estimators and synthetic generators."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marketdata.series import PriceSeries, estimate_gbm_parameters
from repro.marketdata.synthetic import (
    JumpDiffusionGenerator,
    PlainGBMGenerator,
    RegimeSwitchingGenerator,
)
from repro.stochastic.rng import RandomState


class TestPriceSeries:
    def test_construction(self):
        series = PriceSeries(prices=(1.0, 1.1, 1.2), dt=1.0)
        assert len(series) == 3

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            PriceSeries(prices=(1.0,))

    def test_rejects_nonpositive_prices(self):
        with pytest.raises(ValueError):
            PriceSeries(prices=(1.0, -0.5))

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            PriceSeries(prices=(1.0, 1.1), dt=0.0)

    def test_log_returns(self):
        series = PriceSeries(prices=(1.0, math.e, math.e**2))
        assert np.allclose(series.log_returns(), [1.0, 1.0])

    def test_window(self):
        series = PriceSeries(prices=tuple(float(i) for i in range(1, 11)))
        sub = series.window(2, 4)
        assert sub.prices == (3.0, 4.0, 5.0, 6.0)

    def test_window_bounds_checked(self):
        series = PriceSeries(prices=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            series.window(1, 5)
        with pytest.raises(ValueError):
            series.window(0, 1)

    def test_realized_volatility_of_constant_series(self):
        series = PriceSeries(prices=(2.0,) * 10)
        assert series.realized_volatility() == 0.0


class TestEstimation:
    def test_recovers_gbm_parameters(self):
        gen = PlainGBMGenerator(mu=0.004, sigma=0.12)
        series = gen.generate(2.0, 50_000, RandomState(5))
        estimate = estimate_gbm_parameters(series)
        assert estimate.sigma == pytest.approx(0.12, rel=0.02)
        assert estimate.mu == pytest.approx(0.004, abs=0.002)
        assert estimate.n_observations == 50_000

    def test_sigma_floor(self):
        series = PriceSeries(prices=(2.0,) * 20)
        estimate = estimate_gbm_parameters(series, min_sigma=1e-3)
        assert estimate.sigma == 1e-3

    def test_respects_dt(self):
        gen = PlainGBMGenerator(mu=0.002, sigma=0.1, dt=0.5)
        series = gen.generate(2.0, 40_000, RandomState(6))
        estimate = estimate_gbm_parameters(series)
        assert estimate.sigma == pytest.approx(0.1, rel=0.03)


class TestPlainGBM:
    def test_length_and_start(self):
        series = PlainGBMGenerator().generate(2.0, 100, RandomState(1))
        assert len(series) == 101
        assert series.price_at(0) == 2.0

    def test_reproducible(self):
        a = PlainGBMGenerator().generate(2.0, 50, RandomState(2))
        b = PlainGBMGenerator().generate(2.0, 50, RandomState(2))
        assert a.prices == b.prices

    def test_validation(self):
        with pytest.raises(ValueError):
            PlainGBMGenerator().generate(0.0, 10, RandomState(1))
        with pytest.raises(ValueError):
            PlainGBMGenerator().generate(2.0, 0, RandomState(1))


class TestRegimeSwitching:
    def test_returns_series_and_regimes(self):
        series, regimes = RegimeSwitchingGenerator().generate(2.0, 200, RandomState(3))
        assert len(series) == 201
        assert len(regimes) == 200
        assert set(regimes).issubset({0, 1})

    def test_regime_volatilities_differ(self):
        gen = RegimeSwitchingGenerator(
            sigma_calm=0.02, sigma_turbulent=0.3,
            p_calm_to_turbulent=0.05, p_turbulent_to_calm=0.05,
        )
        series, regimes = gen.generate(2.0, 20_000, RandomState(4))
        returns = series.log_returns()
        regimes_arr = np.asarray(regimes)
        calm_vol = returns[regimes_arr == 0].std()
        turbulent_vol = returns[regimes_arr == 1].std()
        assert turbulent_vol > 3.0 * calm_vol

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RegimeSwitchingGenerator(p_calm_to_turbulent=1.5)


class TestJumpDiffusion:
    def test_generates(self):
        series = JumpDiffusionGenerator().generate(2.0, 500, RandomState(5))
        assert len(series) == 501
        assert all(p > 0 for p in series.prices)

    def test_jumps_fatten_tails(self):
        plain = PlainGBMGenerator(mu=0.0, sigma=0.05).generate(
            2.0, 50_000, RandomState(6)
        )
        jumpy = JumpDiffusionGenerator(
            mu=0.0, sigma=0.05, jump_intensity=0.05, jump_mean=-0.2, jump_std=0.05
        ).generate(2.0, 50_000, RandomState(6))
        from scipy.stats import kurtosis

        assert kurtosis(jumpy.log_returns()) > kurtosis(plain.log_returns()) + 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            JumpDiffusionGenerator(jump_intensity=-1.0)


@settings(max_examples=15, deadline=None)
@given(
    mu=st.floats(min_value=-0.01, max_value=0.01),
    sigma=st.floats(min_value=0.02, max_value=0.3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_generated_series_are_valid(mu, sigma, seed):
    series = PlainGBMGenerator(mu=mu, sigma=sigma).generate(
        2.0, 100, RandomState(seed)
    )
    assert all(p > 0 for p in series.prices)
    estimate = estimate_gbm_parameters(series)
    assert estimate.sigma > 0
