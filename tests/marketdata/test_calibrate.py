"""Golden tests for per-law calibration and law-matched backtesting.

Each law's own estimator recovers the generator's parameters from a
fixed-seed synthetic market, and its in-sample likelihood beats the
mismatched Gaussian fit by a wide, deterministic margin. The
walk-forward goldens pin the X7 model-risk story: a lognormal-calibrated
backtest on regime-switching data opens a systematic prediction gap
that the law-matched calibration closes.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.marketdata import (
    JumpDiffusionGenerator,
    PlainGBMGenerator,
    RegimeSwitchingGenerator,
    SwapBacktester,
    calibrate_law,
)
from repro.stochastic.rng import RandomState


class TestLognormalRecovery:
    def test_recovers_gbm_parameters(self):
        series = PlainGBMGenerator(mu=0.002, sigma=0.1).generate(
            2.0, 3000, RandomState(5)
        )
        fit = calibrate_law(series, "lognormal")
        assert fit.kind == "lognormal"
        assert fit.law.is_lognormal
        assert fit.mu == pytest.approx(0.002, abs=0.01)
        assert fit.sigma == pytest.approx(0.1, abs=0.005)
        assert fit.n_observations == 3000


class TestMertonRecovery:
    @pytest.fixture(scope="class")
    def jumpy(self):
        # rare, large, well-separated jumps: the identifiable corner
        return JumpDiffusionGenerator(
            sigma=0.06, jump_intensity=0.08, jump_mean=-0.18, jump_std=0.05
        ).generate(2.0, 6000, RandomState(1))

    def test_recovers_jump_parameters(self, jumpy):
        fit = calibrate_law(jumpy, "merton")
        assert fit.kind == "merton"
        params = fit.law.param_dict()
        assert params["jump_intensity"] == pytest.approx(0.08, abs=0.03)
        assert params["jump_mean"] == pytest.approx(-0.18, abs=0.05)
        assert params["jump_std"] == pytest.approx(0.05, abs=0.04)
        assert fit.sigma == pytest.approx(0.06, abs=0.01)

    def test_beats_the_gaussian_fit_on_jumpy_data(self, jumpy):
        merton = calibrate_law(jumpy, "merton")
        gaussian = calibrate_law(jumpy, "lognormal")
        assert merton.log_likelihood > gaussian.log_likelihood + 100.0

    def test_degrades_gracefully_on_pure_gbm(self):
        """The mixture nests the Gaussian; no-jump data stays sane."""
        series = PlainGBMGenerator(mu=0.002, sigma=0.1).generate(
            2.0, 3000, RandomState(5)
        )
        fit = calibrate_law(series, "merton")
        gaussian = calibrate_law(series, "lognormal")
        assert fit.sigma == pytest.approx(gaussian.sigma, abs=0.01)
        assert fit.log_likelihood >= gaussian.log_likelihood - 1.0


class TestRegimeRecovery:
    @pytest.fixture(scope="class")
    def switching(self):
        series, _regimes = RegimeSwitchingGenerator().generate(
            2.0, 6000, RandomState(5)
        )
        return series

    def test_recovers_hmm_parameters(self, switching):
        fit = calibrate_law(switching, "regime")
        assert fit.kind == "regime"
        params = fit.law.param_dict()
        assert params["sigma_calm"] == pytest.approx(0.05, abs=0.01)
        assert params["sigma_turbulent"] == pytest.approx(0.2, abs=0.03)
        assert params["p_calm_to_turbulent"] == pytest.approx(0.02, abs=0.02)
        assert params["p_turbulent_to_calm"] == pytest.approx(0.1, abs=0.05)
        # the reported pair stays solver-sane: stationary vol between states
        assert params["sigma_calm"] < fit.sigma < params["sigma_turbulent"]

    def test_beats_the_gaussian_fit_on_switching_data(self, switching):
        regime = calibrate_law(switching, "regime")
        gaussian = calibrate_law(switching, "lognormal")
        assert regime.log_likelihood > gaussian.log_likelihood + 500.0


class TestDispatch:
    def test_unknown_kind_is_refused(self):
        series = PlainGBMGenerator().generate(2.0, 200, RandomState(0))
        with pytest.raises(ValueError, match="no calibrator"):
            calibrate_law(series, "ghost")

    def test_backtester_surfaces_bad_law_kind(self):
        series = PlainGBMGenerator().generate(2.0, 400, RandomState(0))
        backtester = SwapBacktester(
            SwapParameters.default(), window=168, law_kind="ghost"
        )
        with pytest.raises(ValueError, match="no calibrator"):
            backtester.run(series)


class TestWalkForwardModelRisk:
    """X7's systematic gap: wrong-law calibration mispredicts, the
    matched law closes the gap (fixed-seed golden, wide margins)."""

    @pytest.fixture(scope="class")
    def reports(self):
        series, _ = RegimeSwitchingGenerator().generate(
            2.0, 1200, RandomState(21)
        )
        base = SwapParameters.default()
        lognormal = SwapBacktester(base, window=168, step=48).run(series)
        regime = SwapBacktester(
            base, window=168, step=48, law_kind="regime"
        ).run(series)
        return lognormal, regime

    def test_lognormal_misfit_opens_a_gap(self, reports):
        lognormal, _ = reports
        assert lognormal.calibration_gap > 0.02

    def test_matched_law_closes_the_gap(self, reports):
        lognormal, regime = reports
        assert regime.calibration_gap < 0.01
        assert regime.calibration_gap < lognormal.calibration_gap
        assert regime.brier_score <= lognormal.brier_score

    def test_laws_disagree_attempt_by_attempt(self, reports):
        """Model risk is visible per attempt, not just in aggregate."""
        lognormal, regime = reports
        diffs = [
            abs(a.predicted_sr - b.predicted_sr)
            for a, b in zip(lognormal.attempts, regime.attempts)
            if a.viable and b.viable
        ]
        assert max(diffs) > 0.05
