"""Tests for the walk-forward backtester."""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.marketdata.backtest import SwapBacktester
from repro.marketdata.synthetic import PlainGBMGenerator, RegimeSwitchingGenerator
from repro.stochastic.rng import RandomState


@pytest.fixture(scope="module")
def base() -> SwapParameters:
    return SwapParameters.default()


@pytest.fixture(scope="module")
def gbm_report(base):
    series = PlainGBMGenerator(mu=0.002, sigma=0.08).generate(
        2.0, 900, RandomState(11)
    )
    return SwapBacktester(base, window=120, step=48).run(series)


class TestMechanics:
    def test_validation(self, base):
        with pytest.raises(ValueError, match="window"):
            SwapBacktester(base, window=4)
        with pytest.raises(ValueError, match="step"):
            SwapBacktester(base, step=0)
        with pytest.raises(ValueError, match="rate_policy"):
            SwapBacktester(base, rate_policy="weird")

    def test_series_too_short(self, base):
        series = PlainGBMGenerator().generate(2.0, 50, RandomState(1))
        with pytest.raises(ValueError, match="too short"):
            SwapBacktester(base, window=120).run(series)

    def test_no_lookahead_in_estimates(self, base):
        """Estimates at attempt i depend only on the trailing window."""
        gen = PlainGBMGenerator(mu=0.002, sigma=0.08)
        series = gen.generate(2.0, 400, RandomState(12))
        report = SwapBacktester(base, window=120, step=120).run(series)
        first = report.attempts[0]
        from repro.marketdata.series import estimate_gbm_parameters

        window = series.window(first.index - 120, 120)
        expected = estimate_gbm_parameters(window)
        assert first.mu_hat == pytest.approx(expected.mu)
        assert first.sigma_hat == pytest.approx(expected.sigma)

    def test_attempts_stride(self, base):
        series = PlainGBMGenerator().generate(2.0, 500, RandomState(13))
        report = SwapBacktester(base, window=120, step=60).run(series)
        indices = [a.index for a in report.attempts]
        assert all(b - a == 60 for a, b in zip(indices, indices[1:]))

    def test_spot_policy(self, base):
        series = PlainGBMGenerator(sigma=0.06).generate(2.0, 400, RandomState(14))
        report = SwapBacktester(
            base, window=120, step=120, rate_policy="spot"
        ).run(series)
        for attempt in report.viable_attempts:
            assert attempt.pstar == pytest.approx(attempt.spot)


class TestCalibration:
    def test_gbm_data_calibrated(self, gbm_report):
        """On correctly specified data, predictions match outcomes."""
        assert gbm_report.viability_rate > 0.8
        assert gbm_report.calibration_gap < 0.2

    def test_predictions_are_probabilities(self, gbm_report):
        for attempt in gbm_report.viable_attempts:
            assert 0.0 <= attempt.predicted_sr <= 1.0

    def test_brier_score_beats_coin_flip(self, gbm_report):
        assert gbm_report.brier_score < 0.25

    def test_describe(self, gbm_report):
        text = gbm_report.describe()
        assert "predicted SR" in text
        assert "Brier" in text


class TestRegimes:
    def test_turbulence_lowers_predicted_sr(self, base):
        """Backtests through turbulent stretches predict lower SR than
        calm ones (the Bisq effect seen by the model through its own
        rolling estimates)."""
        calm = PlainGBMGenerator(mu=0.002, sigma=0.04).generate(
            2.0, 700, RandomState(15)
        )
        stormy = PlainGBMGenerator(mu=0.002, sigma=0.13).generate(
            2.0, 700, RandomState(15)
        )
        backtester = SwapBacktester(base, window=120, step=96)
        report_calm = backtester.run(calm)
        report_stormy = backtester.run(stormy)
        assert (
            report_calm.mean_predicted_success_rate
            > report_stormy.mean_predicted_success_rate
        )

    def test_regime_switching_runs(self, base):
        series, _regimes = RegimeSwitchingGenerator().generate(
            2.0, 700, RandomState(16)
        )
        report = SwapBacktester(base, window=120, step=96).run(series)
        assert report.n_attempts > 0
