"""Tests for transaction state transitions and the mempool."""

from __future__ import annotations

import pytest

from repro.chain.crypto import new_secret
from repro.chain.htlc import HTLC, ClaimOp
from repro.chain.mempool import Mempool
from repro.chain.transaction import Operation, Transaction, TxStatus
from repro.stochastic.rng import RandomState


class NoopOp(Operation):
    def apply(self, chain, now: float) -> None:
        pass


def make_tx(**overrides) -> Transaction:
    fields = dict(
        sender="alice", operation=NoopOp(),
        submitted_at=0.0, visible_at=1.0, confirm_at=3.0,
    )
    fields.update(overrides)
    return Transaction(**fields)


class TestTransitions:
    def test_initial_state(self):
        assert make_tx().status is TxStatus.SUBMITTED

    def test_happy_path(self):
        tx = make_tx()
        tx.mark_visible()
        assert tx.status is TxStatus.VISIBLE
        tx.mark_confirmed()
        assert tx.status is TxStatus.CONFIRMED
        assert tx.is_final

    def test_cannot_confirm_from_submitted(self):
        with pytest.raises(ValueError):
            make_tx().mark_confirmed()

    def test_cannot_double_visible(self):
        tx = make_tx()
        tx.mark_visible()
        with pytest.raises(ValueError):
            tx.mark_visible()

    def test_fail_records_reason(self):
        tx = make_tx()
        tx.mark_visible()
        tx.mark_failed("bad preimage")
        assert tx.status is TxStatus.FAILED
        assert tx.failure_reason == "bad preimage"
        assert tx.is_final

    def test_cannot_fail_twice(self):
        tx = make_tx()
        tx.mark_failed("x")
        with pytest.raises(ValueError):
            tx.mark_failed("y")

    def test_timing_invariant(self):
        with pytest.raises(ValueError, match="timing"):
            make_tx(visible_at=5.0)

    def test_unique_txids(self):
        assert make_tx().txid != make_tx().txid


class TestMempool:
    def test_only_visible_txs_accepted(self):
        pool = Mempool()
        with pytest.raises(ValueError):
            pool.add(make_tx())

    def test_add_remove(self):
        pool = Mempool()
        tx = make_tx()
        tx.mark_visible()
        pool.add(tx)
        assert len(pool) == 1
        pool.remove(tx)
        assert len(pool) == 0

    def test_find_revealed_preimage(self):
        secret = new_secret(RandomState(3))
        contract = HTLC(
            sender="alice", recipient="bob", amount=1.0,
            hashlock=secret.hashlock, expiry=10.0,
        )
        tx = make_tx(operation=ClaimOp(contract, secret.preimage))
        tx.mark_visible()
        pool = Mempool()
        pool.add(tx)
        assert pool.find_revealed_preimage(secret.hashlock) == secret.preimage

    def test_find_ignores_wrong_hashlock(self):
        secret = new_secret(RandomState(3))
        other = new_secret(RandomState(4))
        contract = HTLC(
            sender="alice", recipient="bob", amount=1.0,
            hashlock=secret.hashlock, expiry=10.0,
        )
        tx = make_tx(operation=ClaimOp(contract, secret.preimage))
        tx.mark_visible()
        pool = Mempool()
        pool.add(tx)
        assert pool.find_revealed_preimage(other.hashlock) is None

    def test_find_ignores_non_claim_ops(self):
        secret = new_secret(RandomState(3))
        tx = make_tx(operation=NoopOp())
        tx.mark_visible()
        pool = Mempool()
        pool.add(tx)
        assert pool.find_revealed_preimage(secret.hashlock) is None
