"""Tests for the blockchain + HTLC lifecycle."""

from __future__ import annotations

import pytest

from repro.chain.chain import Blockchain
from repro.chain.crypto import new_secret
from repro.chain.events import SimulationClock
from repro.chain.htlc import ClaimOp, HTLCState
from repro.chain.transaction import TxStatus
from repro.stochastic.rng import RandomState


@pytest.fixture()
def chain() -> Blockchain:
    clock = SimulationClock()
    chain = Blockchain(
        name="test", token="TOK", clock=clock,
        confirmation_time=3.0, mempool_delay=1.0,
    )
    chain.open_account("alice", 10.0)
    chain.open_account("bob", 0.0)
    return chain


@pytest.fixture()
def secret():
    return new_secret(RandomState(1))


class TestChainValidation:
    def test_rejects_bad_confirmation_time(self):
        with pytest.raises(ValueError):
            Blockchain("x", "TOK", SimulationClock(), confirmation_time=0.0,
                       mempool_delay=0.0)

    def test_rejects_mempool_delay_geq_confirmation(self):
        with pytest.raises(ValueError):
            Blockchain("x", "TOK", SimulationClock(), confirmation_time=3.0,
                       mempool_delay=3.0)


class TestTransactionLifecycle:
    def test_visibility_then_confirmation(self, chain, secret):
        tx, _contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        assert tx.status is TxStatus.SUBMITTED
        chain.clock.advance_to(1.0)
        assert tx.status is TxStatus.VISIBLE
        assert len(chain.mempool) == 1
        chain.clock.advance_to(3.0)
        assert tx.status is TxStatus.CONFIRMED
        assert len(chain.mempool) == 0

    def test_confirmed_tx_in_block(self, chain, secret):
        tx, _ = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        assert chain.blocks[-1].txids == (tx.txid,)
        assert chain.blocks[-1].timestamp == 3.0

    def test_block_heights_increase(self, chain, secret):
        chain.deploy_htlc("alice", "bob", 1.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.deploy_htlc("alice", "bob", 1.0, new_secret(RandomState(2)).hashlock, 20.0)
        chain.clock.advance_to(6.0)
        assert [b.height for b in chain.blocks] == [0, 1]

    def test_failed_op_fails_tx_without_side_effects(self, chain, secret):
        # claim of a never-deployed (still pending) HTLC fails
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        claim_tx = chain.submit("bob", ClaimOp(contract, secret.preimage))
        # claim confirms at t=3, same moment deploy confirms; deploy was
        # submitted first so it applies first and the claim succeeds --
        # instead test a claim with a WRONG preimage
        chain.clock.advance_to(3.0)
        assert claim_tx.status is TxStatus.CONFIRMED
        # now a second claim on an already-claimed contract must fail
        second = chain.submit("bob", ClaimOp(contract, secret.preimage))
        chain.clock.advance_to(6.0)
        assert second.status is TxStatus.FAILED
        assert "state" in second.failure_reason


class TestHTLCLifecycle:
    def test_deploy_locks_funds(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        assert contract.state is HTLCState.PENDING
        chain.clock.advance_to(3.0)
        assert contract.state is HTLCState.LOCKED
        assert chain.balance("alice") == 8.0
        assert chain.balance(contract.account) == 2.0

    def test_deploy_fails_on_insufficient_funds(self, chain, secret):
        tx, contract = chain.deploy_htlc("alice", "bob", 100.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        assert tx.status is TxStatus.FAILED
        assert contract.state is HTLCState.PENDING

    def test_claim_with_correct_preimage(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)
        chain.clock.advance_to(6.0)
        assert contract.state is HTLCState.CLAIMED
        assert chain.balance("bob") == 2.0
        assert contract.revealed_preimage == secret.preimage

    def test_claim_with_wrong_preimage_fails(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        bad = new_secret(RandomState(99))
        claim_tx = chain.claim_htlc(contract, "bob", bad.preimage)
        chain.clock.advance_to(6.0)
        assert claim_tx.status is TxStatus.FAILED
        assert contract.state is HTLCState.LOCKED
        assert chain.balance("bob") == 0.0

    def test_claim_confirming_after_expiry_fails(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 6.0)
        chain.clock.advance_to(3.0)
        chain.clock.advance_to(5.0)  # claim will confirm at 8 > 6
        claim_tx = chain.claim_htlc(contract, "bob", secret.preimage)
        chain.clock.advance_to(8.0)
        assert claim_tx.status is TxStatus.FAILED
        assert contract.state in (HTLCState.LOCKED, HTLCState.REFUNDED)

    def test_claim_confirming_exactly_at_expiry_succeeds(self, chain, secret):
        # the paper's Eq. (8)/(9) boundary: t5 <= t_b
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 6.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)  # confirms at 6.0
        chain.clock.run_until_idle(20.0)
        assert contract.state is HTLCState.CLAIMED
        assert chain.balance("bob") == 2.0

    def test_auto_refund_after_expiry(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 6.0)
        chain.clock.run_until_idle(20.0)
        assert contract.state is HTLCState.REFUNDED
        assert chain.balance("alice") == 10.0
        # refund lands one confirmation time after expiry
        assert contract.resolved_at == pytest.approx(6.0 + 3.0)

    def test_refund_after_failed_boundary_claim(self, chain):
        # claim with a wrong preimage confirming exactly at expiry: the
        # re-armed refund check must still fire
        good = new_secret(RandomState(1))
        bad = new_secret(RandomState(2))
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, good.hashlock, 6.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", bad.preimage)  # confirms at 6.0, fails
        chain.clock.run_until_idle(20.0)
        assert contract.state is HTLCState.REFUNDED
        assert chain.balance("alice") == 10.0

    def test_supply_conserved_through_lifecycle(self, chain, secret):
        initial = chain.ledger.total_supply()
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)
        chain.clock.run_until_idle(30.0)
        assert chain.ledger.total_supply() == pytest.approx(initial)


class TestMempoolObservation:
    def test_preimage_visible_before_confirmation(self, chain, secret):
        """The paper's step 4: the secret leaks via the mempool at eps."""
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)  # visible at 4, confirms 6
        assert chain.observe_preimage(secret.hashlock) is None
        chain.clock.advance_to(4.0)
        assert chain.observe_preimage(secret.hashlock) == secret.preimage
        assert contract.state is HTLCState.LOCKED  # not yet confirmed

    def test_preimage_visible_after_confirmation(self, chain, secret):
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)
        chain.clock.advance_to(6.0)
        assert chain.observe_preimage(secret.hashlock) == secret.preimage

    def test_unrelated_hashlock_not_observed(self, chain, secret):
        other = new_secret(RandomState(50))
        _tx, contract = chain.deploy_htlc("alice", "bob", 2.0, secret.hashlock, 20.0)
        chain.clock.advance_to(3.0)
        chain.claim_htlc(contract, "bob", secret.preimage)
        chain.clock.advance_to(4.0)
        assert chain.observe_preimage(other.hashlock) is None
