"""Tests for hashlocks and the ledger."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.crypto import Secret, hashlock_of, new_secret, verify_preimage
from repro.chain.errors import InsufficientFunds, UnknownAccount
from repro.chain.ledger import Ledger
from repro.stochastic.rng import RandomState


class TestSecret:
    def test_hashlock_is_sha256(self, rng):
        secret = new_secret(rng)
        assert secret.hashlock == hashlib.sha256(secret.preimage).digest()

    def test_requires_32_bytes(self):
        with pytest.raises(ValueError):
            Secret(preimage=b"short")

    def test_verify_roundtrip(self, rng):
        secret = new_secret(rng)
        assert verify_preimage(secret.preimage, secret.hashlock)

    def test_verify_rejects_wrong_preimage(self, rng):
        secret = new_secret(rng)
        other = new_secret(rng)
        assert not verify_preimage(other.preimage, secret.hashlock)

    def test_hashlock_of(self):
        data = b"x" * 32
        assert hashlock_of(data) == hashlib.sha256(data).digest()

    def test_deterministic_from_seed(self):
        a = new_secret(RandomState(9))
        b = new_secret(RandomState(9))
        assert a.preimage == b.preimage

    def test_repr_hides_preimage(self, rng):
        secret = new_secret(rng)
        assert secret.preimage.hex() not in repr(secret)


class TestLedgerBasics:
    def test_open_and_balance(self):
        ledger = Ledger("TOK")
        ledger.open_account("alice", 5.0)
        assert ledger.balance("alice") == 5.0

    def test_rejects_empty_token(self):
        with pytest.raises(ValueError):
            Ledger("")

    def test_rejects_duplicate_account(self):
        ledger = Ledger("TOK")
        ledger.open_account("alice")
        with pytest.raises(ValueError, match="exists"):
            ledger.open_account("alice")

    def test_rejects_negative_opening_balance(self):
        with pytest.raises(ValueError):
            Ledger("TOK").open_account("alice", -1.0)

    def test_unknown_account(self):
        with pytest.raises(UnknownAccount):
            Ledger("TOK").balance("ghost")

    def test_has_account(self):
        ledger = Ledger("TOK")
        ledger.open_account("alice")
        assert ledger.has_account("alice")
        assert not ledger.has_account("bob")


class TestTransfers:
    @pytest.fixture()
    def ledger(self) -> Ledger:
        ledger = Ledger("TOK")
        ledger.open_account("alice", 10.0)
        ledger.open_account("bob", 1.0)
        return ledger

    def test_transfer_moves_funds(self, ledger):
        ledger.transfer("alice", "bob", 4.0)
        assert ledger.balance("alice") == 6.0
        assert ledger.balance("bob") == 5.0

    def test_insufficient_funds(self, ledger):
        with pytest.raises(InsufficientFunds):
            ledger.transfer("bob", "alice", 2.0)

    def test_insufficient_leaves_state_untouched(self, ledger):
        before = ledger.snapshot()
        with pytest.raises(InsufficientFunds):
            ledger.transfer("bob", "alice", 2.0)
        assert ledger.snapshot() == before

    def test_unknown_sender(self, ledger):
        with pytest.raises(UnknownAccount):
            ledger.transfer("ghost", "bob", 1.0)

    def test_unknown_recipient(self, ledger):
        with pytest.raises(UnknownAccount):
            ledger.transfer("alice", "ghost", 1.0)

    def test_negative_amount_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.transfer("alice", "bob", -1.0)

    def test_full_balance_transfer(self, ledger):
        ledger.transfer("alice", "bob", 10.0)
        assert ledger.balance("alice") == 0.0

    def test_deposit(self, ledger):
        ledger.deposit("bob", 2.5)
        assert ledger.balance("bob") == 3.5

    def test_deposit_unknown_account(self, ledger):
        with pytest.raises(UnknownAccount):
            ledger.deposit("ghost", 1.0)


@settings(max_examples=50, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(
            st.sampled_from(["alice", "bob", "carol"]),
            st.sampled_from(["alice", "bob", "carol"]),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        max_size=20,
    )
)
def test_property_supply_conserved(transfers):
    """No sequence of (possibly failing) transfers changes total supply."""
    ledger = Ledger("TOK")
    for name in ("alice", "bob", "carol"):
        ledger.open_account(name, 10.0)
    initial = ledger.total_supply()
    for sender, recipient, amount in transfers:
        try:
            ledger.transfer(sender, recipient, amount)
        except InsufficientFunds:
            pass
    assert ledger.total_supply() == pytest.approx(initial, abs=1e-9)
    assert all(v >= 0.0 for v in ledger.snapshot().values())
