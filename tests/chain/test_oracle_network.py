"""Tests for the collateral escrow/Oracle and the two-chain network."""

from __future__ import annotations

import pytest

from repro.chain.chain import Blockchain
from repro.chain.errors import ContractStateError
from repro.chain.events import SimulationClock
from repro.chain.network import ALICE, BOB, TOKEN_A, TOKEN_B, TwoChainNetwork
from repro.chain.oracle import CollateralEscrow, DepositOp, EscrowState, Oracle
from repro.core.parameters import SwapParameters


@pytest.fixture()
def setup():
    clock = SimulationClock()
    chain = Blockchain("a", "TOK", clock, confirmation_time=3.0, mempool_delay=1.0)
    chain.open_account("alice", 5.0)
    chain.open_account("bob", 5.0)
    escrow = CollateralEscrow(alice="alice", bob="bob", amount=1.0)
    oracle = Oracle(chain, escrow)
    return chain, escrow, oracle


def fund(chain, escrow):
    chain.submit("alice", DepositOp(escrow, "alice"))
    chain.submit("bob", DepositOp(escrow, "bob"))
    chain.clock.advance_to(3.0)


class TestEscrowDeposits:
    def test_deposits_lock_funds(self, setup):
        chain, escrow, _oracle = setup
        fund(chain, escrow)
        assert escrow.state is EscrowState.ACTIVE
        assert chain.balance("alice") == 4.0
        assert chain.balance(escrow.account) == 2.0

    def test_partial_funding_stays_open(self, setup):
        chain, escrow, _oracle = setup
        chain.submit("alice", DepositOp(escrow, "alice"))
        chain.clock.advance_to(3.0)
        assert escrow.state is EscrowState.OPEN
        assert not escrow.fully_funded

    def test_outsider_cannot_deposit(self, setup):
        chain, escrow, _oracle = setup
        chain.open_account("mallory", 5.0)
        tx = chain.submit("mallory", DepositOp(escrow, "mallory"))
        chain.clock.advance_to(3.0)
        assert tx.status.value == "failed"

    def test_rejects_negative_amount(self):
        with pytest.raises(ContractStateError):
            CollateralEscrow(alice="a", bob="b", amount=-1.0)


class TestOracleSettlement:
    def test_success_returns_both(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.release_bob_deposit()
        oracle.release_alice_deposit()
        chain.clock.run_until_idle(20.0)
        assert chain.balance("alice") == 5.0
        assert chain.balance("bob") == 5.0
        assert escrow.state is EscrowState.SETTLED

    def test_alice_waive_forfeits_to_bob(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.release_bob_deposit()
        oracle.forfeit_alice_to_bob()
        chain.clock.run_until_idle(20.0)
        assert chain.balance("alice") == 4.0
        assert chain.balance("bob") == 6.0

    def test_bob_walk_forfeits_both_to_alice(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.forfeit_bob_to_alice()
        chain.clock.run_until_idle(20.0)
        assert chain.balance("alice") == 6.0
        assert chain.balance("bob") == 4.0

    def test_return_both_on_no_engagement(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.return_both()
        chain.clock.run_until_idle(20.0)
        assert chain.balance("alice") == 5.0
        assert chain.balance("bob") == 5.0

    def test_double_settlement_rejected(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.release_alice_deposit()
        with pytest.raises(ContractStateError):
            oracle.release_alice_deposit()
        with pytest.raises(ContractStateError):
            oracle.forfeit_alice_to_bob()

    def test_forfeit_bob_after_partial_settlement_rejected(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)
        oracle.release_bob_deposit()
        with pytest.raises(ContractStateError):
            oracle.forfeit_bob_to_alice()

    def test_payout_timing(self, setup):
        chain, escrow, oracle = setup
        fund(chain, escrow)  # now = 3
        oracle.release_bob_deposit()
        chain.clock.advance_to(5.9)
        assert chain.balance("bob") == 4.0  # payout not yet confirmed
        chain.clock.advance_to(6.0)
        assert chain.balance("bob") == 5.0  # lands one tau after decision


class TestTwoChainNetwork:
    def test_construction_from_params(self, params):
        net = TwoChainNetwork(params)
        assert net.chain_a.confirmation_time == params.tau_a
        assert net.chain_b.confirmation_time == params.tau_b
        assert net.chain_b.mempool_delay == params.eps_b

    def test_shared_clock(self, params):
        net = TwoChainNetwork(params)
        assert net.chain_a.clock is net.chain_b.clock is net.clock

    def test_fund_agents(self, params):
        net = TwoChainNetwork(params)
        net.fund_agents(pstar=2.0, collateral=0.5)
        balances = net.balances()
        assert balances[ALICE][TOKEN_A] == 2.5
        assert balances[ALICE][TOKEN_B] == 0.0
        assert balances[BOB][TOKEN_A] == 0.5
        assert balances[BOB][TOKEN_B] == 1.0

    def test_advance(self, params):
        net = TwoChainNetwork(params)
        net.advance_to(7.5)
        assert net.clock.now == 7.5
