"""Tests for the discrete-event clock."""

from __future__ import annotations

import pytest

from repro.chain.errors import ClockError
from repro.chain.events import SimulationClock


class TestBasics:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_custom_start(self):
        assert SimulationClock(start=5.0).now == 5.0

    def test_advance(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_by(self):
        clock = SimulationClock()
        clock.advance_by(1.5)
        clock.advance_by(1.5)
        assert clock.now == 3.0

    def test_cannot_rewind(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.0)

    def test_cannot_advance_negative(self):
        with pytest.raises(ClockError):
            SimulationClock().advance_by(-1.0)

    def test_cannot_schedule_in_past(self):
        clock = SimulationClock()
        clock.advance_to(5.0)
        with pytest.raises(ClockError):
            clock.schedule(4.0, lambda: None)


class TestEventOrdering:
    def test_fires_in_time_order(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("b"))
        clock.schedule(1.0, lambda: fired.append("a"))
        clock.schedule(3.0, lambda: fired.append("c"))
        clock.advance_to(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("first"))
        clock.schedule(1.0, lambda: fired.append("second"))
        clock.advance_to(1.0)
        assert fired == ["first", "second"]

    def test_due_events_only(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("early"))
        clock.schedule(5.0, lambda: fired.append("late"))
        clock.advance_to(2.0)
        assert fired == ["early"]
        assert clock.pending_events == 1

    def test_callback_time_visible(self):
        clock = SimulationClock()
        seen = []
        clock.schedule(1.5, lambda: seen.append(clock.now))
        clock.advance_to(4.0)
        assert seen == [1.5]
        assert clock.now == 4.0


class TestCascades:
    def test_callback_schedules_followup_within_advance(self):
        clock = SimulationClock()
        fired = []

        def first():
            fired.append("first")
            clock.schedule(2.0, lambda: fired.append("second"))

        clock.schedule(1.0, first)
        clock.advance_to(3.0)
        assert fired == ["first", "second"]

    def test_followup_beyond_horizon_deferred(self):
        clock = SimulationClock()
        fired = []

        def first():
            clock.schedule(9.0, lambda: fired.append("late"))

        clock.schedule(1.0, first)
        clock.advance_to(2.0)
        assert fired == []
        clock.advance_to(9.0)
        assert fired == ["late"]

    def test_run_until_idle(self):
        clock = SimulationClock()
        fired = []

        def chain(n: int):
            fired.append(n)
            if n < 5:
                clock.schedule(clock.now + 1.0, lambda: chain(n + 1))

        clock.schedule(0.5, lambda: chain(0))
        clock.run_until_idle(horizon=100.0)
        assert fired == [0, 1, 2, 3, 4, 5]
        assert clock.pending_events == 0

    def test_same_time_reschedule_runs_after_queued(self):
        """A callback re-scheduling itself at the current time runs after
        events already queued for that time (the refund-check pattern)."""
        clock = SimulationClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("check"))
        clock.schedule(1.0, lambda: fired.append("claim"))

        def recheck():
            fired.append("recheck-armed")
            clock.schedule(1.0, lambda: fired.append("recheck"))

        clock.schedule(1.0, recheck)
        # replace "check" semantics: order is check, claim, recheck-armed, recheck
        clock.advance_to(1.0)
        assert fired == ["check", "claim", "recheck-armed", "recheck"]
