"""Integration tests: analytics <-> protocol <-> simulation, end to end."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import CrashingAgent, HonestAgent, rational_pair
from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import CollateralBackwardInduction
from repro.core.parameters import SwapParameters
from repro.protocol.collateral_swap import CollateralSwapProtocol
from repro.protocol.messages import Stage, SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.simulation import empirical_success_rate, validate_against_analytic
from repro.simulation.engine import EpisodeConfig, run_episode
from repro.simulation.results import BatchSummary
from repro.stochastic.paths import sample_decision_prices
from repro.stochastic.rng import RandomState


class TestAnalyticVsProtocolEquivalence:
    """The executable protocol must realise exactly the outcome the
    threshold algebra predicts, price path by price path."""

    def test_pathwise_agreement(self, params):
        solver = BackwardInduction(params, 2.0)
        region = solver.bob_t2_region()
        threshold = solver.p3_threshold()
        rng = RandomState(101)
        prices = sample_decision_prices(
            params.process, params.p0, params.grid, rng, 200
        )
        secret_rng = RandomState(202)
        for row in prices:
            alice, bob = rational_pair(params, 2.0)
            record = SwapProtocol(
                params, 2.0, alice, bob, rng=secret_rng
            ).run(row)
            p2, p3 = row[1], row[2]
            if p2 in region and p3 > threshold:
                expected = SwapOutcome.COMPLETED
            elif p2 in region:
                expected = SwapOutcome.ABORTED_AT_T3
            else:
                expected = SwapOutcome.ABORTED_AT_T2
            assert record.outcome is expected, (p2, p3)

    def test_batch_success_rate_matches_eq31(self, params):
        empirical, analytic = validate_against_analytic(
            params, 2.0, n_paths=2_000, seed=7, protocol_level=True
        )
        assert empirical.contains(analytic)

    def test_collateral_batch_matches_eq40(self, params):
        empirical, analytic = validate_against_analytic(
            params, 2.0, n_paths=1_500, seed=8, collateral=0.5, protocol_level=True
        )
        assert empirical.contains(analytic)


class TestAtomicityInvariant:
    """Across random episodes with strategic agents, every outcome is
    all-or-nothing: Table I flows on success, zero flows otherwise."""

    @pytest.mark.parametrize("pstar", [1.7, 2.0, 2.3])
    def test_value_atomicity(self, params, pstar):
        config = EpisodeConfig(params=params, pstar=pstar)
        rng = RandomState(int(pstar * 1000))
        for _ in range(60):
            record = run_episode(config, rng)
            if record.outcome is SwapOutcome.COMPLETED:
                assert record.matches_table1()
            else:
                assert record.is_no_op()

    def test_collateral_episodes_conserve_supply(self, params):
        alice, bob = rational_pair(params, 2.0, collateral=0.3)
        rng = RandomState(55)
        for _ in range(30):
            protocol = CollateralSwapProtocol(
                params, 2.0, 0.3, alice, bob, rng=rng
            )
            supply = protocol.network.chain_a.ledger.total_supply()
            prices = sample_decision_prices(
                params.process, params.p0, params.grid, rng, 1
            )[0]
            protocol.run(prices)
            assert protocol.network.chain_a.ledger.total_supply() == pytest.approx(
                supply
            )


class TestCrashFailureSweep:
    """Crash injection at every stage, verifying the paper's discussion:
    crashes before the reveal are value-atomic; a post-reveal crash is
    the only way an agent loses assets without compensation."""

    def test_crash_matrix(self, params):
        rng = RandomState(77)
        outcomes = {}
        for stage in (Stage.T1_INITIATE, Stage.T2_LOCK, Stage.T4_REDEEM):
            crasher = CrashingAgent(HonestAgent("x"), stage)
            if stage in (Stage.T2_LOCK, Stage.T4_REDEEM):
                alice, bob = HonestAgent("alice"), crasher
            else:
                alice, bob = crasher, HonestAgent("bob")
            record = SwapProtocol(params, 2.0, alice, bob, rng=rng).run(
                [2.0, 2.0, 2.0]
            )
            outcomes[stage] = record
        assert outcomes[Stage.T1_INITIATE].is_no_op()
        assert outcomes[Stage.T2_LOCK].is_no_op()
        forfeited = outcomes[Stage.T4_REDEEM]
        assert forfeited.outcome is SwapOutcome.BOB_FORFEITED
        assert forfeited.balance_change("bob", "TOKEN_B") == pytest.approx(-1.0)

    def test_alice_crash_at_t3(self, params):
        crasher = CrashingAgent(HonestAgent("alice"), Stage.T3_REVEAL)
        record = SwapProtocol(
            params, 2.0, crasher, HonestAgent("bob"), rng=RandomState(78)
        ).run([2.0, 2.0, 2.0])
        assert record.outcome is SwapOutcome.ABORTED_AT_T3
        assert record.is_no_op()


class TestCollateralImprovesOutcomes:
    """Figure 9 at the protocol level: empirical SR rises with Q."""

    def test_empirical_sr_monotone_in_q(self, params):
        rates = []
        for q in (0.0, 0.5):
            result = empirical_success_rate(
                params, 2.0, n_paths=1_500, seed=31, collateral=q,
                protocol_level=True,
            )
            rates.append(result.success_rate)
        assert rates[1] > rates[0]


class TestOutcomeDistribution:
    def test_failure_modes_match_thresholds(self, params):
        """Aborts split between t2 and t3 in proportions the analytic
        region/threshold probabilities predict."""
        solver = BackwardInduction(params, 2.0)
        law_t2 = params.process.law(params.p0, params.tau_a)
        p_bob_stops = 1.0 - solver.bob_t2_region().probability(law_t2)

        config = EpisodeConfig(params=params, pstar=2.0)
        rng = RandomState(313)
        records = [run_episode(config, rng) for _ in range(800)]
        summary = BatchSummary.from_records(records)
        fraction_t2 = summary.outcomes[SwapOutcome.ABORTED_AT_T2] / summary.n_total
        assert fraction_t2 == pytest.approx(p_bob_stops, abs=0.04)


@settings(max_examples=10, deadline=None)
@given(
    pstar=st.floats(min_value=1.6, max_value=2.4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_every_episode_is_atomic(pstar, seed):
    params = SwapParameters.default()
    config = EpisodeConfig(params=params, pstar=pstar)
    record = run_episode(config, RandomState(seed))
    assert record.matches_table1() or record.is_no_op()
