"""Property-based safety arguments across the whole stack."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import AlwaysStopAgent, HonestAgent, rational_pair
from repro.chain.network import TwoChainNetwork
from repro.core.parameters import SwapParameters
from repro.protocol.collateral_swap import CollateralSwapProtocol
from repro.protocol.messages import Stage, SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.simulation.robustness import timing_robustness_sweep
from repro.stochastic.rng import RandomState


@settings(max_examples=12, deadline=None)
@given(
    jitter=st.floats(min_value=0.0, max_value=0.4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_sufficient_padding_prevents_violations(jitter, seed):
    """With wait >= jitter * max(tau) and margin >= 2 * jitter * max(tau),
    a late confirmation can abort the handshake but can never produce an
    uncompensated loss."""
    params = SwapParameters.default()
    worst = jitter * max(params.tau_a, params.tau_b)
    points = timing_robustness_sweep(
        params,
        jitters=(jitter,),
        margins=(2.0 * worst + 0.01,),
        wait_slacks=(worst + 0.01,),
        n_runs=40,
        seed=seed,
    )
    assert points[0].violation_rate == 0.0
    assert points[0].completion_rate == 1.0


@settings(max_examples=10, deadline=None)
@given(
    collateral=st.floats(min_value=0.0, max_value=1.0),
    pstar=st.floats(min_value=1.6, max_value=2.4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_collateral_episodes_conserve_value(collateral, pstar, seed):
    """Collateralised episodes never create or destroy tokens, and the
    sum of both agents' collateral deltas is zero (the Oracle only
    redistributes)."""
    params = SwapParameters.default()
    alice, bob = rational_pair(params, pstar, collateral=collateral)
    protocol = CollateralSwapProtocol(
        params, pstar, collateral, alice, bob, rng=RandomState(seed)
    )
    supply_a = protocol.network.chain_a.ledger.total_supply()
    supply_b = protocol.network.chain_b.ledger.total_supply()
    from repro.stochastic.paths import sample_decision_prices

    prices = sample_decision_prices(
        params.process, params.p0, params.grid, RandomState(seed + 1), 1
    )[0]
    record = protocol.run(prices)
    assert protocol.network.chain_a.ledger.total_supply() == pytest.approx(supply_a)
    assert protocol.network.chain_b.ledger.total_supply() == pytest.approx(supply_b)
    delta_a = record.balance_change("alice", "TOKEN_A") + record.balance_change(
        "bob", "TOKEN_A"
    )
    # the swap itself is zero-sum between the two agents on each chain
    assert delta_a == pytest.approx(0.0, abs=1e-9)


class TestDefectionNeverProfitsFromTheft:
    """No unilateral deviation lets an agent end with BOTH assets while
    the counterparty follows the protocol and the chains are punctual."""

    @pytest.mark.parametrize(
        "alice_cls, bob_cls",
        [
            (lambda: AlwaysStopAgent(Stage.T1_INITIATE), lambda: HonestAgent("b")),
            (lambda: HonestAgent("a"), lambda: AlwaysStopAgent(Stage.T2_LOCK)),
            (lambda: AlwaysStopAgent(Stage.T3_REVEAL), lambda: HonestAgent("b")),
        ],
    )
    def test_no_theft(self, params, alice_cls, bob_cls):
        record = SwapProtocol(
            params, 2.0, alice_cls(), bob_cls(), rng=RandomState(3)
        ).run([2.0, 2.0, 2.0])
        # nobody gains tokens they did not pay for
        assert record.balance_change("alice", "TOKEN_B") <= 1.0 + 1e-9
        assert record.balance_change("bob", "TOKEN_A") <= 2.0 + 1e-9
        gain_alice = (
            record.balance_change("alice", "TOKEN_A")
            + record.balance_change("alice", "TOKEN_B") * 2.0
        )
        gain_bob = (
            record.balance_change("bob", "TOKEN_A")
            + record.balance_change("bob", "TOKEN_B") * 2.0
        )
        # at the flat price nobody profits from a unilateral stop
        assert gain_alice <= 1e-9
        assert gain_bob <= 1e-9
