"""Units for the Prometheus-text and JSON exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import to_json, to_prometheus_text, write_metrics
from repro.obs.metrics import Registry


def _registry_with_traffic() -> Registry:
    r = Registry()
    r.counter(
        "repro_demo_total", help="Demo counter.", labelnames=("tier",)
    ).inc(3, tier="memory")
    r.gauge("repro_workers", help="Demo gauge.").set(4)
    r.histogram(
        "repro_demo_seconds", help="Demo histogram.", buckets=(0.1, 1.0)
    ).observe(0.5)
    return r


class TestPrometheusText:
    def test_help_and_type_headers(self):
        text = to_prometheus_text(_registry_with_traffic())
        assert "# HELP repro_demo_total Demo counter." in text
        assert "# TYPE repro_demo_total counter" in text
        assert "# TYPE repro_workers gauge" in text
        assert "# TYPE repro_demo_seconds histogram" in text

    def test_counter_and_gauge_samples(self):
        text = to_prometheus_text(_registry_with_traffic())
        assert 'repro_demo_total{tier="memory"} 3' in text
        assert "repro_workers 4" in text

    def test_histogram_expansion_is_cumulative(self):
        lines = to_prometheus_text(_registry_with_traffic()).splitlines()
        assert 'repro_demo_seconds_bucket{le="0.1"} 0' in lines
        assert 'repro_demo_seconds_bucket{le="1.0"} 1' in lines
        assert 'repro_demo_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_demo_seconds_sum 0.5" in lines
        assert "repro_demo_seconds_count 1" in lines

    def test_label_values_are_escaped(self):
        r = Registry()
        r.counter("c_total", labelnames=("path",)).inc(path='a"b\\c\nd')
        text = to_prometheus_text(r)
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(Registry()) == ""

    def test_unlabelled_counter_exports_zero_sample(self):
        r = Registry()
        r.counter("c_total")
        assert "c_total 0" in to_prometheus_text(r).splitlines()


class TestJsonExport:
    def test_round_trips_through_json(self):
        payload = json.loads(to_json(_registry_with_traffic()))
        assert payload["repro_demo_total"]["type"] == "counter"
        [sample] = payload["repro_demo_total"]["samples"]
        assert sample["labels"] == {"tier": "memory"}
        assert sample["value"] == 3

    def test_indent_passthrough(self):
        assert "\n" in to_json(_registry_with_traffic(), indent=2)


class TestWriteMetrics:
    def test_writes_prometheus_file(self, tmp_path):
        target = write_metrics(
            tmp_path / "metrics.prom", registry=_registry_with_traffic()
        )
        text = target.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert 'repro_demo_total{tier="memory"} 3' in text

    def test_writes_json_file(self, tmp_path):
        target = write_metrics(
            tmp_path / "metrics.json",
            registry=_registry_with_traffic(),
            format="json",
        )
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert "repro_demo_seconds" in payload

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_metrics(tmp_path / "x", registry=Registry(), format="xml")

    def test_no_temp_files_left_behind(self, tmp_path):
        write_metrics(tmp_path / "metrics.prom", registry=Registry())
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["metrics.prom"]
