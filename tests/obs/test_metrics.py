"""Units for the metric primitives and the registry."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Registry().counter("c_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative_increments(self):
        c = Registry().counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_samples_are_independent(self):
        c = Registry().counter("c_total", labelnames=("tier",))
        c.inc(tier="memory")
        c.inc(3, tier="disk")
        assert c.value(tier="memory") == 1.0
        assert c.value(tier="disk") == 3.0

    def test_wrong_labels_rejected(self):
        c = Registry().counter("c_total", labelnames=("tier",))
        with pytest.raises(ValueError):
            c.inc(wrong="x")
        with pytest.raises(ValueError):
            c.inc()  # missing label


class TestGauge:
    def test_set_inc_dec(self):
        g = Registry().gauge("g")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3.0

    def test_can_go_negative(self):
        g = Registry().gauge("g")
        g.dec(5)
        assert g.value() == -5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Registry().histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        [sample] = h.snapshot()
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)
        # cumulative semantics: le=0.1 -> 1, le=1.0 -> 2 (+Inf via count)
        assert sample["buckets"]["0.1"] == 1
        assert sample["buckets"]["1.0"] == 2

    def test_boundary_value_counts_in_its_bucket(self):
        h = Registry().histogram("h_seconds", buckets=(1.0,))
        h.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        [sample] = h.snapshot()
        assert sample["buckets"]["1.0"] == 1

    def test_count_and_sum_accessors(self):
        h = Registry().histogram("h_seconds", buckets=(1.0,), labelnames=("op",))
        h.observe(0.25, op="read")
        h.observe(0.5, op="read")
        assert h.count(op="read") == 2
        assert h.sum(op="read") == pytest.approx(0.75)
        assert h.count(op="write") == 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = Registry()
        assert r.counter("x_total") is r.counter("x_total")

    def test_kind_mismatch_rejected(self):
        r = Registry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_label_mismatch_rejected(self):
        r = Registry()
        r.counter("x", labelnames=("a",))
        with pytest.raises(ValueError):
            r.counter("x", labelnames=("b",))

    def test_snapshot_is_json_safe(self):
        import json

        r = Registry()
        r.counter("c_total").inc()
        r.gauge("g").set(2)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        json.dumps(r.snapshot())

    def test_reset_drops_instruments(self):
        r = Registry()
        r.counter("c_total").inc()
        r.reset()
        assert r.snapshot() == {}

    def test_concurrent_increments_are_not_lost(self):
        r = Registry()
        c = r.counter("c_total", labelnames=("who",))
        h = r.histogram("h_seconds", buckets=(0.5,))
        n_threads, n_iter = 8, 2_000

        def worker(who: str) -> None:
            for _ in range(n_iter):
                c.inc(who=who)
                c.inc(who="shared")
                h.observe(0.1)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(who="shared") == n_threads * n_iter
        for i in range(n_threads):
            assert c.value(who=f"t{i}") == n_iter
        [sample] = h.snapshot()
        assert sample["count"] == n_threads * n_iter


class TestNullRegistry:
    def test_instruments_discard_everything(self):
        r = NullRegistry()
        c = r.counter("c_total")
        g = r.gauge("g")
        h = r.histogram("h")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert r.snapshot() == {}
        assert r.is_noop

    def test_use_registry_swaps_and_restores(self):
        null = NullRegistry()
        before = get_registry()
        with use_registry(null):
            assert get_registry() is null
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        null = NullRegistry()
        previous = set_registry(null)
        try:
            assert get_registry() is null
        finally:
            set_registry(previous)
