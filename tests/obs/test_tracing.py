"""Units for tracing spans and the structured logger."""

from __future__ import annotations

import json
import threading

from repro.obs.logging import JsonLinesLogger, NullLogger, set_logger
from repro.obs.metrics import Registry
from repro.obs.tracing import SPAN_METRIC, current_span, span


class TestSpan:
    def test_records_duration_into_registry(self):
        r = Registry()
        with span("stage_a", registry=r) as s:
            pass
        assert s.duration is not None and s.duration >= 0.0
        h = r.histogram(SPAN_METRIC, labelnames=("stage",))
        assert h.count(stage="stage_a") == 1
        assert h.sum(stage="stage_a") == s.duration

    def test_nesting_builds_dotted_paths(self):
        r = Registry()
        with span("outer", registry=r) as outer:
            assert current_span() is outer
            with span("inner", registry=r) as inner:
                assert inner.path == "outer.inner"
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert outer.path == "outer"

    def test_metric_label_is_plain_name_not_path(self):
        r = Registry()
        with span("outer", registry=r):
            with span("inner", registry=r):
                pass
        h = r.histogram(SPAN_METRIC, labelnames=("stage",))
        assert h.count(stage="inner") == 1
        assert h.count(stage="outer") == 1

    def test_records_even_when_body_raises(self):
        r = Registry()
        try:
            with span("failing", registry=r):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_span() is None
        h = r.histogram(SPAN_METRIC, labelnames=("stage",))
        assert h.count(stage="failing") == 1

    def test_span_stacks_are_per_thread(self):
        r = Registry()
        paths = {}

        def worker(name: str) -> None:
            with span(name, registry=r) as s:
                paths[name] = s.path

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        with span("main_span", registry=r):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans opened on other threads must not nest under main_span
        assert paths == {f"t{i}": f"t{i}" for i in range(4)}


class TestJsonLinesLogger:
    def test_span_emits_structured_event(self):
        r = Registry()
        logger = JsonLinesLogger()
        previous = set_logger(logger)
        try:
            with span("outer", registry=r):
                with span("inner", registry=r):
                    pass
        finally:
            set_logger(previous)
        events = [json.loads(line) for line in logger.getvalue().splitlines()]
        assert [e["span"] for e in events] == ["outer.inner", "outer"]
        assert all(e["event"] == "span" and e["ok"] for e in events)
        assert all(e["seconds"] >= 0.0 and "ts" in e for e in events)

    def test_unencodable_values_are_stringified(self):
        logger = JsonLinesLogger()
        logger.log("x", value=object())
        [event] = [json.loads(line) for line in logger.getvalue().splitlines()]
        assert event["value"].startswith("<object object")

    def test_null_logger_discards(self):
        NullLogger().log("anything", a=1)  # must not raise

    def test_concurrent_logs_do_not_interleave(self):
        logger = JsonLinesLogger()

        def worker(i: int) -> None:
            for _ in range(200):
                logger.log("tick", who=i, payload="x" * 64)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = logger.getvalue().splitlines()
        assert len(lines) == 800
        for line in lines:
            json.loads(line)  # every line is complete, valid JSON
