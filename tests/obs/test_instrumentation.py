"""End-to-end: the serving stack populates the expected metric families."""

from __future__ import annotations

import threading

import pytest

from repro.core.parameters import SwapParameters
from repro.obs.exporters import to_prometheus_text
from repro.obs.metrics import NullRegistry, Registry, use_registry
from repro.service.api import SwapService
from repro.service.requests import SolveRequest, ValidateRequest


@pytest.fixture()
def registry():
    r = Registry()
    with use_registry(r):
        yield r


def _solve_requests(params, pstars):
    return [SolveRequest(pstar=p, params=params) for p in pstars]


class TestServiceInstrumentation:
    def test_batch_populates_expected_families(self, registry, params):
        service = SwapService(max_workers=1)
        service.run_batch(_solve_requests(params, [1.9, 2.0, 2.0, 2.1]))
        snap = registry.snapshot()
        for family in (
            "repro_batches_total",
            "repro_batch_requests_total",
            "repro_batch_deduped_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_stage_seconds",
            "repro_pool_tasks_total",
            "repro_pool_task_seconds",
            "repro_pool_workers",
            "repro_solver_calls_total",
            "repro_solver_seconds",
        ):
            assert family in snap, f"missing metric family {family}"

    def test_batch_counter_arithmetic(self, registry, params):
        service = SwapService(max_workers=1)
        # 4 requests, one in-batch duplicate -> 3 unique solves
        service.run_batch(_solve_requests(params, [1.9, 2.0, 2.0, 2.1]))
        counters = registry.counter("repro_batch_requests_total")
        assert counters.value() == 4
        assert registry.counter("repro_batch_deduped_total").value() == 1
        solver_calls = registry.counter(
            "repro_solver_calls_total", labelnames=("solver",)
        )
        assert solver_calls.value(solver="swap") == 3

    def test_cache_hits_show_up_on_second_batch(self, registry, params):
        service = SwapService(max_workers=1)
        requests = _solve_requests(params, [2.0, 2.1])
        service.run_batch(requests)
        service.run_batch(requests)
        hits = registry.counter(
            "repro_cache_hits_total", labelnames=("tier",)
        )
        assert hits.value(tier="memory") == 2

    def test_stage_spans_recorded_per_batch(self, registry, params):
        service = SwapService(max_workers=1)
        service.run_batch(_solve_requests(params, [2.0]))
        stage = registry.histogram(
            "repro_stage_seconds", labelnames=("stage",)
        )
        assert stage.count(stage="batch.canonicalise") == 1
        assert stage.count(stage="batch.cache_lookup") == 1
        assert stage.count(stage="batch.execute") == 1

    def test_validate_records_montecarlo_metrics(self, registry, params):
        service = SwapService(max_workers=1)
        request = ValidateRequest(
            pstar=2.0, params=params, n_paths=500, seed=7
        )
        service.run_batch([request])
        paths = registry.counter(
            "repro_mc_paths_total", labelnames=("level",)
        )
        assert paths.value(level="strategy") == 500

    def test_prometheus_export_of_a_served_batch(self, registry, params):
        service = SwapService(max_workers=1)
        service.run_batch(_solve_requests(params, [2.0, 2.0]))
        text = to_prometheus_text(registry)
        assert 'repro_cache_hits_total{tier="memory"} 0' in text
        assert "repro_batches_total 1" in text
        assert 'repro_stage_seconds_bucket{le="+Inf",stage="batch.execute"} 1' in text

    def test_concurrent_batches_keep_counters_consistent(self, registry, params):
        service = SwapService(max_workers=1)
        n_threads, per_batch = 6, 3
        grids = [
            [1.8 + 0.01 * (i * per_batch + j) for j in range(per_batch)]
            for i in range(n_threads)
        ]

        def worker(grid):
            service.run_batch(_solve_requests(params, grid))

        threads = [
            threading.Thread(target=worker, args=(grid,)) for grid in grids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("repro_batches_total").value() == n_threads
        assert (
            registry.counter("repro_batch_requests_total").value()
            == n_threads * per_batch
        )

    def test_null_registry_silences_the_whole_stack(self, params):
        null = NullRegistry()
        with use_registry(null):
            service = SwapService(max_workers=1)
            items = service.run_batch(_solve_requests(params, [2.0]))
        assert items[0].ok
        assert null.snapshot() == {}
