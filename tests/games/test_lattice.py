"""Tests for the lognormal lattice discretisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games.lattice import LatticeTransition, discretize_law
from repro.stochastic.lognormal import LognormalLaw

LAW = LognormalLaw(spot=2.0, mu=0.002, sigma=0.1, tau=4.0)


class TestValidation:
    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            discretize_law(LAW, 1)

    def test_rejects_bad_tail_mass(self):
        with pytest.raises(ValueError):
            discretize_law(LAW, 8, tail_mass=0.6)

    def test_transition_validates_probability_sum(self):
        with pytest.raises(ValueError, match="sum"):
            LatticeTransition(points=(1.0, 2.0), probabilities=(0.4, 0.4),
                              edges=(0.0, 1.5, np.inf))

    def test_transition_validates_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            LatticeTransition(points=(1.0,), probabilities=(0.5, 0.5),
                              edges=(0.0, np.inf))


class TestDiscretisation:
    def test_probabilities_sum_to_one(self):
        lattice = discretize_law(LAW, 32)
        assert sum(lattice.probabilities) == pytest.approx(1.0)

    def test_point_count(self):
        assert len(discretize_law(LAW, 32).points) == 32

    def test_mean_matched_exactly(self):
        # conditional-mean representatives price linear payoffs without bias
        lattice = discretize_law(LAW, 16)
        assert lattice.mean == pytest.approx(LAW.mean(), rel=1e-9)

    def test_points_increasing(self):
        lattice = discretize_law(LAW, 32)
        assert all(a < b for a, b in zip(lattice.points, lattice.points[1:]))

    def test_points_inside_buckets(self):
        lattice = discretize_law(LAW, 16)
        for point, lo, hi in zip(lattice.points, lattice.edges[:-1], lattice.edges[1:]):
            assert lo <= point <= hi

    def test_refinement_improves_cdf_match(self):
        k = 2.2
        exact = float(LAW.cdf(k))

        def lattice_cdf(n: int) -> float:
            lattice = discretize_law(LAW, n)
            return sum(
                p for x, p in zip(lattice.points, lattice.probabilities) if x <= k
            )

        coarse_err = abs(lattice_cdf(8) - exact)
        fine_err = abs(lattice_cdf(256) - exact)
        assert fine_err < coarse_err

    def test_variance_converges(self):
        lattice = discretize_law(LAW, 512)
        points = np.asarray(lattice.points)
        probs = np.asarray(lattice.probabilities)
        lattice_var = float(np.dot(probs, points**2) - lattice.mean**2)
        import math

        s2 = LAW.log_std**2
        exact_var = (math.exp(s2) - 1.0) * LAW.mean() ** 2
        assert lattice_var == pytest.approx(exact_var, rel=0.01)
