"""Cross-check: lattice extensive-form game vs the continuous solver.

This is the independence argument for the reproduction: two solver
implementations that share no code beyond the lognormal law must agree
on the equilibrium.
"""

from __future__ import annotations

import pytest

from repro.core.backward_induction import BackwardInduction
from repro.games.builders import build_swap_game, lattice_equilibrium_summary
from repro.games.tree import count_nodes


@pytest.fixture(scope="module")
def fine_summary():
    from repro.core.parameters import SwapParameters

    params = SwapParameters.default()
    tree = build_swap_game(params, 2.0, n_lattice=128)
    return lattice_equilibrium_summary(tree)


@pytest.fixture(scope="module")
def continuous():
    from repro.core.parameters import SwapParameters

    return BackwardInduction(SwapParameters.default(), 2.0)


class TestStructure:
    def test_node_counts(self, params):
        tree = build_swap_game(params, 2.0, n_lattice=8)
        counts = count_nodes(tree.root)
        # 1 alice_t1 + 8 bob_t2 + 64 alice_t3 decisions
        assert counts["decision"] == 1 + 8 + 64
        # 1 t2 chance + 8 t3 chance
        assert counts["chance"] == 9
        # 1 not-initiated + 8 bob-stop + 64 * 2 alice branches
        assert counts["terminal"] == 1 + 8 + 128

    def test_rejects_bad_pstar(self, params):
        with pytest.raises(ValueError):
            build_swap_game(params, 0.0)


class TestAgreement:
    def test_initiates(self, fine_summary, continuous):
        assert fine_summary.initiated == continuous.alice_initiates()

    def test_alice_root_value(self, fine_summary, continuous):
        assert fine_summary.alice_root_value == pytest.approx(
            continuous.alice_t1_cont(), rel=0.01
        )

    def test_bob_root_value(self, fine_summary, continuous):
        assert fine_summary.bob_root_value == pytest.approx(
            continuous.bob_t1_cont(), rel=0.01
        )

    def test_success_rate(self, fine_summary, continuous):
        assert fine_summary.success_rate == pytest.approx(
            continuous.success_rate(), abs=0.01
        )

    def test_bob_region_endpoints(self, fine_summary, continuous):
        lo, hi = continuous.bob_t2_region().bounds()
        cont_prices = fine_summary.bob_cont_prices
        # lattice endpoints within one bucket of the continuous boundary
        assert cont_prices[0] == pytest.approx(lo, rel=0.08)
        assert cont_prices[-1] == pytest.approx(hi, rel=0.08)

    def test_alice_threshold_bracketed(self, params, continuous):
        # check on a single mid-price branch where the lattice is dense
        tree = build_swap_game(params, 2.0, n_lattice=128)
        summary = lattice_equilibrium_summary(tree)
        thr = continuous.p3_threshold()
        bracket = summary.p3_threshold_bracket
        assert bracket is not None
        assert bracket[0] <= thr <= bracket[1]


class TestConvergence:
    def test_sr_error_shrinks_with_refinement(self, params, continuous):
        exact = continuous.success_rate()
        errors = []
        # start at 64: tiny lattices can be accidentally accurate through
        # error cancellation, which would make the comparison meaningless
        for n in (64, 256):
            summary = lattice_equilibrium_summary(build_swap_game(params, 2.0, n))
            errors.append(abs(summary.success_rate - exact))
        assert errors[-1] < errors[0]
        assert errors[-1] < 5e-3

    def test_alice_stops_at_bad_rate(self, params):
        summary = lattice_equilibrium_summary(build_swap_game(params, 4.0, 32))
        assert not summary.initiated
        # not initiating means Alice keeps P* = 4
        assert summary.alice_root_value == pytest.approx(4.0)
