"""Tests for game-tree node types."""

from __future__ import annotations

import pytest

from repro.games.tree import (
    ChanceNode,
    DecisionNode,
    GameValidationError,
    TerminalNode,
    count_nodes,
    iter_nodes,
    tree_depth,
)


def leaf(a=1.0, b=0.0) -> TerminalNode:
    return TerminalNode({"alice": a, "bob": b})


class TestTerminalNode:
    def test_valid(self):
        node = leaf(2.0, 3.0)
        assert node.payoffs["alice"] == 2.0

    def test_rejects_nonfinite_payoff(self):
        with pytest.raises(GameValidationError):
            TerminalNode({"alice": float("nan")})


class TestDecisionNode:
    def test_valid(self):
        node = DecisionNode(player="alice", actions={"cont": leaf(), "stop": leaf()})
        assert set(node.actions) == {"cont", "stop"}

    def test_rejects_empty_actions(self):
        with pytest.raises(GameValidationError, match="no actions"):
            DecisionNode(player="alice", actions={})

    def test_rejects_empty_player(self):
        with pytest.raises(GameValidationError, match="player"):
            DecisionNode(player="", actions={"cont": leaf()})


class TestChanceNode:
    def test_valid(self):
        node = ChanceNode(((0.5, leaf()), (0.5, leaf())))
        assert len(node.branches) == 2

    def test_rejects_empty(self):
        with pytest.raises(GameValidationError, match="no branches"):
            ChanceNode(())

    def test_rejects_bad_probability_sum(self):
        with pytest.raises(GameValidationError, match="sum"):
            ChanceNode(((0.5, leaf()), (0.2, leaf())))

    def test_rejects_negative_probability(self):
        with pytest.raises(GameValidationError, match="negative"):
            ChanceNode(((-0.5, leaf()), (1.5, leaf())))

    def test_accepts_tiny_rounding(self):
        ChanceNode(((0.5 + 1e-10, leaf()), (0.5, leaf())))


class TestTraversal:
    @staticmethod
    def small_game() -> DecisionNode:
        chance = ChanceNode(((0.3, leaf(1)), (0.7, leaf(2))))
        return DecisionNode(player="alice", actions={"cont": chance, "stop": leaf(0)})

    def test_iter_visits_all(self):
        nodes = list(iter_nodes(self.small_game()))
        assert len(nodes) == 5

    def test_count_nodes(self):
        counts = count_nodes(self.small_game())
        assert counts == {"decision": 1, "chance": 1, "terminal": 3}

    def test_depth(self):
        assert tree_depth(self.small_game()) == 2

    def test_depth_of_leaf_is_zero(self):
        assert tree_depth(leaf()) == 0

    def test_deep_tree_no_recursion_error(self):
        node: object = leaf()
        for _ in range(5000):
            node = DecisionNode(player="p", actions={"only": node})
        assert tree_depth(node) == 5000
        assert count_nodes(node)["decision"] == 5000
