"""Tests for bimatrix games and the t1 engagement game."""

from __future__ import annotations

import pytest

from repro.core.collateral import t1_engagement_game
from repro.games.matrix import BimatrixGame


def prisoners_dilemma() -> BimatrixGame:
    # classic PD: defect strictly dominant
    return BimatrixGame(
        row_payoffs=[[3, 0], [5, 1]],
        col_payoffs=[[3, 5], [0, 1]],
        row_actions=("coop", "defect"),
        col_actions=("coop", "defect"),
    )


def matching_pennies() -> BimatrixGame:
    return BimatrixGame(
        row_payoffs=[[1, -1], [-1, 1]],
        col_payoffs=[[-1, 1], [1, -1]],
        row_actions=("H", "T"),
        col_actions=("H", "T"),
    )


def coordination() -> BimatrixGame:
    return BimatrixGame(
        row_payoffs=[[2, 0], [0, 1]],
        col_payoffs=[[2, 0], [0, 1]],
        row_actions=("A", "B"),
        col_actions=("A", "B"),
    )


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="share a shape"):
            BimatrixGame([[1, 2]], [[1], [2]], ("a",), ("x", "y"))

    def test_action_count_mismatch(self):
        with pytest.raises(ValueError, match="actions"):
            BimatrixGame([[1, 2]], [[1, 2]], ("a", "b"), ("x", "y"))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            BimatrixGame([[float("nan")]], [[1.0]], ("a",), ("x",))


class TestPureEquilibria:
    def test_prisoners_dilemma(self):
        game = prisoners_dilemma()
        equilibria = game.pure_equilibria()
        assert len(equilibria) == 1
        assert (equilibria[0].row_action, equilibria[0].col_action) == (
            "defect", "defect",
        )
        assert equilibria[0].row_payoff == 1.0

    def test_matching_pennies_has_none(self):
        assert matching_pennies().pure_equilibria() == []

    def test_coordination_has_two(self):
        pairs = {
            (eq.row_action, eq.col_action)
            for eq in coordination().pure_equilibria()
        }
        assert pairs == {("A", "A"), ("B", "B")}


class TestDominance:
    def test_pd_dominant_actions(self):
        game = prisoners_dilemma()
        assert game.row_dominant_action() == "defect"
        assert game.col_dominant_action() == "defect"

    def test_coordination_no_dominance(self):
        game = coordination()
        assert game.row_dominant_action() is None
        assert game.col_dominant_action() is None


class TestMixed:
    def test_matching_pennies_mixes_half(self):
        mixed = matching_pennies().mixed_equilibrium_2x2()
        assert mixed is not None
        assert mixed.row_prob == pytest.approx(0.5)
        assert mixed.col_prob == pytest.approx(0.5)
        assert mixed.row_payoff == pytest.approx(0.0)

    def test_coordination_interior_mix(self):
        mixed = coordination().mixed_equilibrium_2x2()
        assert mixed is not None
        assert mixed.row_prob == pytest.approx(1.0 / 3.0)

    def test_requires_2x2(self):
        game = BimatrixGame(
            [[1, 2, 3]], [[1, 2, 3]], ("a",), ("x", "y", "z")
        )
        with pytest.raises(ValueError):
            game.mixed_equilibrium_2x2()

    def test_pd_has_no_interior_mix(self):
        assert prisoners_dilemma().mixed_equilibrium_2x2() is None


class TestEngagementGame:
    def test_trade_equilibrium_at_good_rate(self, params):
        game = t1_engagement_game(params, 2.0, 0.5)
        pairs = {
            (eq.row_action, eq.col_action) for eq in game.pure_equilibria()
        }
        # trade and coordination-failure equilibria coexist
        assert ("engage", "engage") in pairs
        assert ("stay_out", "stay_out") in pairs

    def test_trade_is_payoff_dominant(self, params):
        game = t1_engagement_game(params, 2.0, 0.5)
        equilibria = {
            (eq.row_action, eq.col_action): eq for eq in game.pure_equilibria()
        }
        trade = equilibria[("engage", "engage")]
        no_trade = equilibria[("stay_out", "stay_out")]
        assert trade.row_payoff > no_trade.row_payoff
        assert trade.col_payoff > no_trade.col_payoff

    def test_no_trade_equilibrium_at_bad_rate(self, params):
        game = t1_engagement_game(params, 4.0, 0.5)
        pairs = {
            (eq.row_action, eq.col_action) for eq in game.pure_equilibria()
        }
        assert ("engage", "engage") not in pairs
        assert ("stay_out", "stay_out") in pairs

    def test_payoffs_match_solver(self, params):
        from repro.core.collateral import CollateralBackwardInduction

        game = t1_engagement_game(params, 2.0, 0.5)
        solver = CollateralBackwardInduction(params, 2.0, 0.5)
        assert game.row_payoffs[0, 0] == pytest.approx(solver.alice_t1_cont())
        assert game.col_payoffs[0, 0] == pytest.approx(solver.bob_t1_cont())
        assert game.row_payoffs[1, 1] == pytest.approx(solver.alice_t1_stop())
