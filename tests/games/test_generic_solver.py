"""Tests for generic backward induction."""

from __future__ import annotations

import pytest

from repro.games.solver import solve_game
from repro.games.tree import ChanceNode, DecisionNode, TerminalNode


def leaf(**payoffs) -> TerminalNode:
    return TerminalNode(payoffs)


class TestTerminal:
    def test_reads_payoffs(self):
        solved = solve_game(leaf(alice=3.0, bob=1.0))
        assert solved.root_value("alice") == 3.0
        assert solved.root_value("bob") == 1.0


class TestDecision:
    def test_picks_own_maximum(self):
        game = DecisionNode(
            player="alice",
            actions={
                "bad": leaf(alice=1.0, bob=9.0),
                "good": leaf(alice=5.0, bob=0.0),
            },
        )
        solved = solve_game(game)
        assert solved.action_at(game) == "good"
        assert solved.root_value("alice") == 5.0
        assert solved.root_value("bob") == 0.0

    def test_tie_broken_by_insertion_order(self):
        game = DecisionNode(
            player="alice",
            actions={"first": leaf(alice=1.0), "second": leaf(alice=1.0)},
        )
        assert solve_game(game).action_at(game) == "first"

    def test_missing_payoff_treated_as_zero(self):
        game = DecisionNode(
            player="alice",
            actions={"a": leaf(bob=5.0), "b": leaf(alice=0.5)},
        )
        assert solve_game(game).action_at(game) == "b"


class TestChance:
    def test_expectation(self):
        game = ChanceNode(
            ((0.25, leaf(alice=4.0)), (0.75, leaf(alice=0.0))),
        )
        assert solve_game(game).root_value("alice") == pytest.approx(1.0)

    def test_mixed_players(self):
        game = ChanceNode(
            ((0.5, leaf(alice=2.0, bob=0.0)), (0.5, leaf(alice=0.0, bob=4.0))),
        )
        solved = solve_game(game)
        assert solved.root_value("alice") == pytest.approx(1.0)
        assert solved.root_value("bob") == pytest.approx(2.0)


class TestComposite:
    def test_two_level_game(self):
        """Alice anticipates Bob's best response (subgame perfection)."""
        bob_node = DecisionNode(
            player="bob",
            actions={
                "betray": leaf(alice=0.0, bob=3.0),
                "coop": leaf(alice=2.0, bob=2.0),
            },
        )
        game = DecisionNode(
            player="alice",
            actions={"trust": bob_node, "exit": leaf(alice=1.0, bob=1.0)},
        )
        solved = solve_game(game)
        # Bob would betray, so Alice exits
        assert solved.action_at(bob_node) == "betray"
        assert solved.action_at(game) == "exit"
        assert solved.root_value("alice") == 1.0

    def test_chance_between_decisions(self):
        good = DecisionNode(
            player="bob", actions={"take": leaf(alice=1.0, bob=5.0)}
        )
        bad = DecisionNode(
            player="bob", actions={"take": leaf(alice=1.0, bob=-5.0)}
        )
        chance = ChanceNode(((0.5, good), (0.5, bad)))
        game = DecisionNode(
            player="alice", actions={"play": chance, "pass": leaf(alice=0.9, bob=0.0)}
        )
        solved = solve_game(game)
        assert solved.action_at(game) == "play"
        assert solved.root_value("alice") == pytest.approx(1.0)

    def test_shared_subtree_solved_once(self):
        shared = leaf(alice=1.0)
        game = DecisionNode(player="alice", actions={"a": shared, "b": shared})
        solved = solve_game(game)
        assert solved.root_value("alice") == 1.0

    def test_value_of_internal_node(self):
        inner = ChanceNode(((1.0, leaf(alice=2.5)),))
        game = DecisionNode(player="alice", actions={"go": inner})
        solved = solve_game(game)
        assert solved.value_of(inner)["alice"] == pytest.approx(2.5)

    def test_wide_tree(self):
        branches = tuple((1.0 / 500, leaf(alice=float(i))) for i in range(500))
        game = ChanceNode(branches)
        expected = sum(range(500)) / 500
        assert solve_game(game).root_value("alice") == pytest.approx(expected)
