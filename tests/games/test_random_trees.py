"""Property tests for generic backward induction on random game trees.

Two contracts of :func:`repro.games.solver.solve_game` are pinned here
(satellite of the swap-graph PR, and relied on by its lattice solver):

* **Tie-break is canonical.** When several actions give the moving
  player the same value, ``"stop"`` (:data:`INDIFFERENT_ACTION`) wins
  if present, else the lexicographically smallest label -- the paper's
  best responses require a *strict* improvement to continue.
* **Order invariance.** Solved values and the equilibrium policy are
  exactly stable under permutation of the action insertion order at
  every decision node.

Trees are drawn as plain data ("specs") and materialised into node
objects so the same random game can be rebuilt with a different action
ordering. Payoffs are integer-valued floats so ties occur often and
comparisons are exact.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equilibrium import INDIFFERENT_ACTION
from repro.games.solver import solve_game
from repro.games.tree import ChanceNode, DecisionNode, TerminalNode

PLAYERS = ("alice", "bob", "carol")
LABELS = ("stop", "cont", "lock", "reveal", "abort")

payoff_vectors = st.fixed_dictionaries(
    {player: st.integers(-4, 4).map(float) for player in PLAYERS}
)

terminal_specs = st.tuples(st.just("terminal"), payoff_vectors)


def _decision_specs(children):
    action_entries = st.tuples(
        st.sampled_from(LABELS),
        st.one_of(st.none(), payoff_vectors),  # optional per-action rewards
        children,
    )
    return st.tuples(
        st.just("decision"),
        st.sampled_from(PLAYERS),
        st.lists(
            action_entries, min_size=1, max_size=4, unique_by=lambda e: e[0]
        ),
    )


def _chance_specs(children):
    return st.tuples(
        st.just("chance"), st.lists(children, min_size=1, max_size=3)
    )


tree_specs = st.recursive(
    terminal_specs,
    lambda children: st.one_of(
        _decision_specs(children), _chance_specs(children)
    ),
    max_leaves=25,
)


def materialize(spec, reverse: bool = False):
    """Build the node graph for ``spec``.

    ``reverse`` flips the insertion order of every decision node's
    actions; chance branch order is kept fixed so expectation sums are
    bitwise identical and any value difference is the solver's fault.
    """
    kind = spec[0]
    if kind == "terminal":
        return TerminalNode(payoffs=dict(spec[1]))
    if kind == "decision":
        _kind, player, entries = spec
        items = list(reversed(entries)) if reverse else list(entries)
        actions = {
            label: materialize(child, reverse) for label, _r, child in items
        }
        rewards = {
            label: dict(flows) for label, flows, _c in items if flows is not None
        }
        return DecisionNode(
            player=player, actions=actions, rewards=rewards or None
        )
    _kind, branch_specs = spec
    prob = 1.0 / len(branch_specs)
    return ChanceNode(
        branches=tuple(
            (prob, materialize(child, reverse)) for child in branch_specs
        )
    )


def walk_policies(spec, node_a, node_b, solved_a, solved_b):
    """Yield the equilibrium action pairs of corresponding decision nodes."""
    kind = spec[0]
    if kind == "terminal":
        return
    if kind == "decision":
        yield solved_a.action_at(node_a), solved_b.action_at(node_b)
        for label, _r, child_spec in spec[2]:
            yield from walk_policies(
                child_spec,
                node_a.actions[label],
                node_b.actions[label],
                solved_a,
                solved_b,
            )
        return
    for child_spec, (_pa, child_a), (_pb, child_b) in zip(
        spec[1], node_a.branches, node_b.branches
    ):
        yield from walk_policies(child_spec, child_a, child_b, solved_a, solved_b)


class TestTieBreak:
    @given(
        labels=st.lists(
            st.sampled_from(LABELS), min_size=2, max_size=5, unique=True
        ),
        payoffs=payoff_vectors,
        player=st.sampled_from(PLAYERS),
    )
    @settings(max_examples=60, deadline=None)
    def test_stop_wins_every_tie_it_is_part_of(self, labels, payoffs, player):
        # every action leads to the same payoff vector => total tie
        if INDIFFERENT_ACTION not in labels:
            labels.append(INDIFFERENT_ACTION)
        node = DecisionNode(
            player=player,
            actions={label: TerminalNode(payoffs=payoffs) for label in labels},
        )
        assert solve_game(node).action_at(node) == INDIFFERENT_ACTION

    @given(
        labels=st.lists(
            st.sampled_from([l for l in LABELS if l != INDIFFERENT_ACTION]),
            min_size=2,
            max_size=4,
            unique=True,
        ),
        payoffs=payoff_vectors,
        player=st.sampled_from(PLAYERS),
    )
    @settings(max_examples=60, deadline=None)
    def test_lexicographic_without_stop(self, labels, payoffs, player):
        node = DecisionNode(
            player=player,
            actions={label: TerminalNode(payoffs=payoffs) for label in labels},
        )
        assert solve_game(node).action_at(node) == min(labels)

    @given(payoffs=payoff_vectors, reward=st.integers(1, 3).map(float))
    @settings(max_examples=40, deadline=None)
    def test_strict_improvement_beats_stop(self, payoffs, reward):
        # a strictly better action must displace "stop" -- the tie-break
        # never overrides a real preference
        node = DecisionNode(
            player="alice",
            actions={
                "stop": TerminalNode(payoffs=payoffs),
                "cont": TerminalNode(payoffs=payoffs),
            },
            rewards={"cont": {"alice": reward}},
        )
        solved = solve_game(node)
        assert solved.action_at(node) == "cont"
        assert solved.root_value("alice") == payoffs["alice"] + reward


class TestOrderInvariance:
    @given(spec=tree_specs)
    @settings(max_examples=80, deadline=None)
    def test_values_and_policy_survive_action_permutation(self, spec):
        forward = materialize(spec, reverse=False)
        backward = materialize(spec, reverse=True)
        solved_f = solve_game(forward)
        solved_b = solve_game(backward)
        assert solved_f.value_of(forward) == solved_b.value_of(backward)
        for action_f, action_b in walk_policies(
            spec, forward, backward, solved_f, solved_b
        ):
            assert action_f == action_b

    @given(spec=tree_specs)
    @settings(max_examples=40, deadline=None)
    def test_solving_is_deterministic(self, spec):
        node = materialize(spec)
        assert solve_game(node).value_of(node) == solve_game(node).value_of(node)


class TestConsistency:
    @given(spec=tree_specs)
    @settings(max_examples=60, deadline=None)
    def test_decision_values_are_best_responses(self, spec):
        """At every decision node the solved own-value equals the max
        over actions of (child value + reward), and the policy attains it."""
        root = materialize(spec)
        solved = solve_game(root)
        stack = [root]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, DecisionNode):
                combined = {}
                for action, child in node.actions.items():
                    value = dict(solved.value_of(child))
                    flows = node.rewards.get(action) if node.rewards else None
                    for player, flow in (flows or {}).items():
                        value[player] = value.get(player, 0.0) + flow
                    combined[action] = value.get(node.player, 0.0)
                chosen = solved.action_at(node)
                own = solved.value_of(node)[node.player]
                assert own == max(combined.values())
                assert combined[chosen] == own
                stack.extend(node.actions.values())
            elif isinstance(node, ChanceNode):
                stack.extend(child for _p, child in node.branches)
