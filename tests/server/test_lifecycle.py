"""Lifecycle: admission shedding, graceful drain, signals, metrics flush."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.server.client import RetryPolicy, SwapClient
from tests.server.conftest import GatedService, request_in_thread

SOLVE_BODY = b'{"pstar": 2.0}'


def _post_no_retry(port, path, body=SOLVE_BODY):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method="POST"
    )
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestAdmission:
    def test_queue_full_sheds_429_with_retry_after(self, make_server):
        service = GatedService()
        server = make_server(service=service, queue_depth=1, deadline=None)

        # saturate the single admission slot with a held request
        first = request_in_thread(
            lambda: _post_no_retry(server.port, "/v1/solve")
        )
        assert service.started.wait(timeout=10.0)

        # the burst beyond --queue-depth sheds immediately
        status, headers, raw = _post_no_retry(server.port, "/v1/solve")
        body = json.loads(raw)
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert body["error"]["code"] == "queue_full"
        assert body["error"]["retryable"] is True

        # ...while operational probes bypass the gate entirely
        client = SwapClient(f"http://127.0.0.1:{server.port}")
        assert client.ready() is True

        # the admitted request still completes correctly
        service.release.set()
        first.join(timeout=30.0)
        assert first.error is None
        status, _headers, raw = first.value
        assert status == 200
        assert json.loads(raw)["ok"] is True
        assert server.metrics.rejected.value(reason="queue_full") >= 1

    def test_burst_beyond_depth_serves_rest_correctly(self, make_server):
        """A concurrent burst > queue_depth: some shed, the rest correct."""
        server = make_server(queue_depth=2)
        threads = [
            request_in_thread(
                lambda: _post_no_retry(server.port, "/v1/solve")
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.join(timeout=30.0)
        assert all(thread.error is None for thread in threads)
        statuses = sorted(thread.value[0] for thread in threads)
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 1  # load was served, not refused flat
        for thread in threads:
            status, _headers, raw = thread.value
            body = json.loads(raw)
            if status == 200:
                assert body["result"]["kind"] == "swap_equilibrium"
            else:
                assert body["error"]["code"] == "queue_full"


class TestDrain:
    def test_inflight_request_completes_after_shutdown_begins(
        self, make_server
    ):
        service = GatedService()
        server = make_server(service=service, deadline=None, drain_timeout=10.0)

        inflight = request_in_thread(
            lambda: _post_no_retry(server.port, "/v1/solve")
        )
        assert service.started.wait(timeout=10.0)

        shutdown = request_in_thread(lambda: server.shutdown(drain=True))
        deadline = time.monotonic() + 5.0
        while not server.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.draining

        # release the held batch: the in-flight response must be delivered
        service.release.set()
        inflight.join(timeout=30.0)
        shutdown.join(timeout=30.0)
        assert inflight.error is None
        status, _headers, raw = inflight.value
        assert status == 200
        assert json.loads(raw)["ok"] is True
        assert shutdown.value is True  # drained cleanly

    def test_draining_server_answers_503(self, make_server):
        server = make_server()
        # flip the drain flag while the accept loop still runs: the
        # deterministic window for observing the 503 envelope
        server._draining.set()
        status, _headers, raw = _post_no_retry(server.port, "/v1/solve")
        body = json.loads(raw)
        assert status == 503
        assert body["error"]["code"] == "draining"
        assert body["error"]["retryable"] is True
        client = SwapClient(f"http://127.0.0.1:{server.port}")
        assert client.ready() is False
        assert client.health() is True  # alive, just not accepting work

    def test_drain_timeout_reports_stragglers(self, make_server):
        service = GatedService()
        server = make_server(service=service, deadline=None, drain_timeout=0.2)
        stuck = request_in_thread(
            lambda: _post_no_retry(server.port, "/v1/solve")
        )
        assert service.started.wait(timeout=10.0)
        assert server.shutdown(drain=True) is False  # straggler abandoned
        service.release.set()
        stuck.join(timeout=30.0)

    def test_shutdown_flushes_metrics(self, make_server, tmp_path):
        metrics_path = tmp_path / "final.prom"
        server = make_server(metrics_out=str(metrics_path))
        _post_no_retry(server.port, "/v1/solve")
        assert server.shutdown() is True
        text = metrics_path.read_text(encoding="utf-8")
        assert "repro_http_requests_total" in text
        assert 'route="/v1/solve"' in text

    def test_shutdown_idempotent(self, make_server):
        server = make_server()
        assert server.shutdown() is True
        assert server.shutdown() is True


class TestClientBackoffAgainstServer:
    def test_client_retries_queue_full_until_released(self, make_server):
        service = GatedService()
        server = make_server(service=service, queue_depth=1, deadline=None)
        held = request_in_thread(
            lambda: _post_no_retry(server.port, "/v1/solve")
        )
        assert service.started.wait(timeout=10.0)

        sleeps = []

        def _sleep(seconds: float) -> None:
            sleeps.append(seconds)
            if len(sleeps) == 2:  # free the slot mid-backoff
                service.release.set()
            time.sleep(0.05)

        client = SwapClient(
            f"http://127.0.0.1:{server.port}",
            retry=RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.05),
            sleep=_sleep,
        )
        eq = client.solve(pstar=1.9)
        assert eq.success_rate > 0.0
        assert len(sleeps) >= 1  # saw at least one 429 before succeeding
        held.join(timeout=30.0)


@pytest.mark.slow
class TestSignals:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        metrics_path = tmp_path / "drain.prom"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--metrics-out",
                str(metrics_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            announcement = json.loads(process.stdout.readline())
            assert announcement["event"] == "listening"
            port = announcement["port"]

            client = SwapClient(f"http://127.0.0.1:{port}")
            deadline = time.monotonic() + 10.0
            while not client.ready() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert client.ready()
            assert client.solve(pstar=2.0).success_rate > 0.0

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
            assert "repro_http_requests_total" in metrics_path.read_text(
                encoding="utf-8"
            )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
