"""Client retry discipline: jittered backoff, retry taxonomy, give-up."""

from __future__ import annotations

import json
import random
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server.client import (
    ClientError,
    RetriesExhaustedError,
    RetryPolicy,
    ServerReplyError,
    SwapClient,
)

OK_SOLVE = {
    "ok": True,
    "kind": "solve",
    "key": "v1-stub",
    "cached": False,
    "result": {"kind": "validation"},  # never decoded in these tests
}


class _ScriptedServer:
    """A real HTTP server answering from a fixed script of responses.

    Each entry is ``(status, headers, payload_dict)``; the last entry
    repeats once the script is exhausted.
    """

    def __init__(self, script):
        self.script = list(script)
        self.hits = 0
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def _reply(self):
                length = int(self.headers.get("Content-Length") or 0)
                self.rfile.read(length)
                index = min(outer.hits, len(outer.script) - 1)
                outer.hits += 1
                status, headers, payload = outer.script[index]
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _reply

            def log_message(self, *_args):
                pass

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.httpd.server_address[1]}"

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture()
def scripted():
    servers = []

    def _make(script):
        server = _ScriptedServer(script)
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.close()


def _client(url, max_attempts=4, sleeps=None):
    return SwapClient(
        url,
        timeout=5.0,
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.01, max_delay=0.08),
        sleep=(sleeps.append if sleeps is not None else lambda _s: None),
        rng=random.Random(7),
    )


def _envelope(code, retryable):
    return {
        "ok": False,
        "error": {"code": code, "message": code, "retryable": retryable},
    }


class TestRetryPolicy:
    def test_full_jitter_bounded_by_capped_exponential(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=1.0)
        rng = random.Random(0)
        for attempt in range(8):
            cap = min(1.0, 0.1 * 2 ** attempt)
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt, rng) <= cap

    def test_retry_after_stretches_but_stays_capped(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.5)
        rng = random.Random(1)
        assert policy.delay(0, rng, retry_after=0.3) >= 0.3
        assert policy.delay(0, rng, retry_after=99.0) <= 0.5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)


class TestRetryTaxonomy:
    def test_429_retried_until_success(self, scripted):
        server = scripted(
            [
                (429, {"Retry-After": "0"}, _envelope("queue_full", True)),
                (429, {"Retry-After": "0"}, _envelope("queue_full", True)),
                (200, {}, OK_SOLVE),
            ]
        )
        sleeps = []
        status, raw = _client(server.url, sleeps=sleeps)._request(
            "POST", "/v1/solve", b"{}"
        )
        assert status == 200
        assert json.loads(raw)["ok"] is True
        assert server.hits == 3
        assert len(sleeps) == 2

    def test_503_and_retryable_envelopes_retried(self, scripted):
        server = scripted(
            [
                (503, {}, _envelope("draining", True)),
                (504, {}, _envelope("deadline_exceeded", True)),
                (500, {}, _envelope("worker_crashed", True)),
                (200, {}, OK_SOLVE),
            ]
        )
        status, _raw = _client(server.url)._request("POST", "/v1/solve", b"{}")
        assert status == 200
        assert server.hits == 4

    def test_gives_up_after_retry_cap(self, scripted):
        server = scripted([(429, {"Retry-After": "0"}, _envelope("queue_full", True))])
        sleeps = []
        with pytest.raises(RetriesExhaustedError) as excinfo:
            _client(server.url, max_attempts=3, sleeps=sleeps)._request(
                "POST", "/v1/solve", b"{}"
            )
        assert excinfo.value.attempts == 3
        assert server.hits == 3  # exactly the cap, then stop
        assert len(sleeps) == 2  # no sleep after the final failure
        assert isinstance(excinfo.value.last, ServerReplyError)
        assert excinfo.value.last.status == 429

    def test_deterministic_errors_never_retried(self, scripted):
        for status, code in [
            (400, "invalid_request"),
            (404, "not_found"),
            (413, "body_too_large"),
            (500, "solve_failed"),
        ]:
            server = scripted([(status, {}, _envelope(code, False))])
            sleeps = []
            with pytest.raises(ServerReplyError) as excinfo:
                _client(server.url, sleeps=sleeps)._request(
                    "POST", "/v1/solve", b"{}"
                )
            assert excinfo.value.status == status
            assert excinfo.value.error["code"] == code
            assert server.hits == 1  # one attempt, no retries
            assert sleeps == []

    def test_connection_refused_retried_then_exhausted(self):
        # grab a port that nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = _client(f"http://127.0.0.1:{port}", max_attempts=3, sleeps=sleeps)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client._request("GET", "/healthz")
        assert excinfo.value.attempts == 3
        assert len(sleeps) == 2
        assert isinstance(excinfo.value.last, ClientError)

    def test_garbage_error_body_tolerated(self, scripted):
        server = scripted([(400, {}, {"weird": "shape"})])
        with pytest.raises(ServerReplyError) as excinfo:
            _client(server.url)._request("POST", "/v1/solve", b"{}")
        assert excinfo.value.error["code"] == "unknown"
