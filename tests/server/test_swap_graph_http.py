"""``POST /v1/swap-graph`` over both stacks, plus active health probes.

The swap-graph route must behave exactly like the older result routes:
typed envelopes, cache semantics, byte parity between the threaded
server and the asyncio router. The second half exercises the router's
active ``/readyz`` probe loop -- ejection of a replica that dies
between requests, readmission when it comes back, and the
``repro_router_probe_total`` counter that makes both visible.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.server import RouterServer, ServerConfig
from repro.swapgraph import SwapGraphResult, SwapGraphSpec
from tests.server.conftest import make_client, make_server  # noqa: F401
from tests.server.test_aio_parity import exchange, request_bytes

CYCLE = SwapGraphSpec.cycle(3).to_dict()
GRAPH_BODY = json.dumps(
    {"kind": "swap_graph", "spec": CYCLE, "n_lattice": 5}
).encode()


def wait_until(predicate, timeout: float = 8.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


class TestThreadedRoute:
    def test_client_round_trip(self, make_server, make_client):
        server = make_server()
        client = make_client(server)
        result = client.swap_graph(CYCLE, n_lattice=5)
        assert isinstance(result, SwapGraphResult)
        assert result.equilibrium.initiated
        assert sorted(result.equilibrium.utilities) == ["P0", "P1", "P2"]

    def test_replay_seed_round_trip(self, make_server, make_client):
        server = make_server()
        client = make_client(server)
        result = client.swap_graph(
            CYCLE, n_lattice=5, replay=True, replay_paths=40, seed=77
        )
        assert result.replay is not None
        assert result.replay.seed == 77
        assert result.replay.n_paths == 40

    def test_kind_mismatch_is_rejected(self, make_server):
        server = make_server()
        body = json.dumps({"kind": "solve", "pstar": 2.0}).encode()
        status, _headers, payload = exchange(
            server.port, request_bytes("POST", "/v1/swap-graph", body)
        )
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid_request"

    def test_metrics_expose_swapgraph_families(self, make_server, make_client):
        server = make_server()
        client = make_client(server)
        client.swap_graph(CYCLE, n_lattice=5)
        text = client.metrics()
        assert "repro_swapgraph_solves_total" in text
        assert "repro_swapgraph_requests_total" in text


class TestRouterParity:
    @pytest.fixture()
    def both_stacks(self, make_server):
        threaded = make_server()
        replica = make_server()
        router = RouterServer(
            ServerConfig(port=0), endpoints=[(replica.host, replica.port)]
        ).start()
        yield threaded.port, router.port
        router.shutdown(drain=False)

    def test_swap_graph_byte_parity(self, both_stacks):
        threaded_port, router_port = both_stacks
        raw = request_bytes("POST", "/v1/swap-graph", GRAPH_BODY)
        for expect_cached in (False, True):
            t_status, t_headers, t_body = exchange(threaded_port, raw)
            r_status, r_headers, r_body = exchange(router_port, raw)
            assert (r_status, r_body) == (t_status, t_body)
            assert r_headers.get("content-type") == t_headers.get(
                "content-type"
            )
            assert t_status == 200
            assert json.loads(t_body)["cached"] is expect_cached

    def test_router_counts_swap_graph_requests(self, both_stacks):
        _threaded_port, router_port = both_stacks
        raw = request_bytes("POST", "/v1/swap-graph", GRAPH_BODY)
        status, _headers, _body = exchange(router_port, raw)
        assert status == 200
        m_status, _m_headers, metrics = exchange(
            router_port, request_bytes("GET", "/metrics")
        )
        assert m_status == 200
        text = metrics.decode()
        assert 'repro_swapgraph_requests_total{source="router"}' in text


class TestActiveProbes:
    def test_eject_then_readmit(self, make_server):
        alive = make_server()
        doomed = make_server()
        doomed_port = doomed.port
        router = RouterServer(
            ServerConfig(port=0, probe_interval=0.05, probe_failures=2),
            endpoints=[(alive.host, alive.port), (doomed.host, doomed_port)],
        ).start()
        try:
            probes = router.router_metrics.probes
            assert wait_until(
                lambda: probes.value(replica="replica-0", outcome="ok") >= 1
            )

            doomed.shutdown(drain=False)
            assert wait_until(lambda: len(router.ring) == 1)
            assert probes.value(replica="replica-1", outcome="eject") == 1
            assert probes.value(replica="replica-1", outcome="fail") >= 2

            # requests keep flowing through the surviving replica
            status, _headers, body = exchange(
                router.port, request_bytes("POST", "/v1/swap-graph", GRAPH_BODY)
            )
            assert status == 200
            assert json.loads(body)["ok"] is True

            # resurrect the replica on its old port: the probe loop
            # must readmit it without operator action
            resurrected = make_server(port=doomed_port)
            assert resurrected.port == doomed_port
            assert wait_until(lambda: len(router.ring) == 2)
            assert probes.value(replica="replica-1", outcome="readmit") == 1
        finally:
            router.shutdown(drain=False)

    def test_probe_counter_in_metrics_text(self, make_server):
        replica = make_server()
        router = RouterServer(
            ServerConfig(port=0, probe_interval=0.05),
            endpoints=[(replica.host, replica.port)],
        ).start()
        try:
            probes = router.router_metrics.probes
            assert wait_until(
                lambda: probes.value(replica="replica-0", outcome="ok") >= 2
            )
            status, _headers, body = exchange(
                router.port, request_bytes("GET", "/metrics")
            )
            assert status == 200
            text = body.decode()
            # all outcomes materialised so dashboards see the zeros too
            for outcome in ("ok", "fail", "eject", "readmit"):
                assert (
                    f'repro_router_probe_total{{outcome="{outcome}",'
                    f'replica="replica-0"}}' in text
                )
        finally:
            router.shutdown(drain=False)

    def test_probes_off_by_default(self, make_server):
        replica = make_server()
        router = RouterServer(
            ServerConfig(port=0), endpoints=[(replica.host, replica.port)]
        ).start()
        try:
            # the registry is process-global, so assert on the *delta*
            probes = router.router_metrics.probes

            def total() -> float:
                return sum(
                    probes.value(replica="replica-0", outcome=outcome)
                    for outcome in ("ok", "fail", "eject", "readmit")
                )

            baseline = total()
            time.sleep(0.25)
            assert total() == baseline
        finally:
            router.shutdown(drain=False)
