"""Byte-for-byte parity: asyncio router vs threaded server.

The sharded tier's contract is that clients cannot tell the two front
ends apart on the wire: same envelopes, same status taxonomy, same
headers that matter (``Content-Type``, ``Retry-After``), same body
bytes. This suite drives *raw sockets* (no client-library smoothing)
through a fresh threaded server and a fresh router-over-one-replica --
one replica so both stacks traverse identical cache states -- and
compares every response.

Known, deliberate divergences (asserted nowhere, documented here):
``Server``/``Date`` headers name the responding program, and HTTP
methods beyond GET/POST get the stdlib's HTML 501 from the threaded
server but a typed 405 envelope from the router (the router is
stricter, not looser).
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional, Tuple

import pytest

from repro.server import RouterServer, ServerConfig
from tests.server.conftest import GatedService, make_server  # noqa: F401

PARITY_CONFIG = dict(
    queue_depth=8,
    max_body_bytes=4096,
    deadline=30.0,
    workers=1,
)


def exchange(
    port: int, raw: bytes, timeout: float = 30.0
) -> Tuple[int, Dict[str, str], bytes]:
    """One raw HTTP exchange; ``(status, headers, body)``."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(raw)
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = sock.recv(65536)
            if not chunk:
                raise AssertionError(f"connection closed before headers: {data!r}")
            data += chunk
        head, _sep, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _s, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        want = int(headers.get("content-length", "0"))
        while len(body) < want:
            chunk = sock.recv(65536)
            if not chunk:
                break
            body += chunk
        return status, headers, body


def request_bytes(
    method: str,
    target: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    lines = [f"{method} {target} HTTP/1.1", "Host: parity"]
    sent = dict(headers or {})
    if body is not None and "Content-Length" not in sent:
        sent["Content-Length"] = str(len(body))
    if body is not None:
        sent.setdefault("Content-Type", "application/json")
    lines += [f"{name}: {value}" for name, value in sent.items()]
    lines += ["Connection: close", ""]
    return "\r\n".join(lines).encode("latin-1") + b"\r\n" + (body or b"")


@pytest.fixture()
def both_stacks(make_server):
    """(threaded_port, router_port): identical configs, fresh states."""
    threaded = make_server(**PARITY_CONFIG)
    replica = make_server(**PARITY_CONFIG)
    router = RouterServer(
        ServerConfig(port=0, **PARITY_CONFIG),
        endpoints=[(replica.host, replica.port)],
    ).start()
    yield threaded.port, router.port
    router.shutdown(drain=False)


def assert_parity(ports, raw: bytes, expect_status: Optional[int] = None):
    """Send ``raw`` to both stacks; the responses must agree."""
    threaded_port, router_port = ports
    t_status, t_headers, t_body = exchange(threaded_port, raw)
    r_status, r_headers, r_body = exchange(router_port, raw)
    assert (r_status, r_body) == (t_status, t_body)
    assert r_headers.get("content-type") == t_headers.get("content-type")
    assert r_headers.get("retry-after") == t_headers.get("retry-after")
    if expect_status is not None:
        assert t_status == expect_status
    return t_status, t_body


SOLVE = json.dumps({"pstar": 2.0, "collateral": 0.0}).encode()


class TestHappyPathParity:
    def test_solve_cold_then_cached(self, both_stacks):
        raw = request_bytes("POST", "/v1/solve", SOLVE)
        _status, first = assert_parity(both_stacks, raw, 200)
        assert json.loads(first)["cached"] is False
        _status, second = assert_parity(both_stacks, raw, 200)
        assert json.loads(second)["cached"] is True

    def test_validate(self, both_stacks):
        body = json.dumps(
            {"pstar": 2.0, "n_paths": 500, "seed": 11}
        ).encode()
        raw = request_bytes("POST", "/v1/validate", body)
        _status, reply = assert_parity(both_stacks, raw, 200)
        assert json.loads(reply)["kind"] == "validate"

    def test_sweep(self, both_stacks):
        raw = request_bytes(
            "GET", "/v1/sweep?pstars=1.5,2.0,2.5&collateral=0.0"
        )
        _status, reply = assert_parity(both_stacks, raw, 200)
        assert json.loads(reply)["count"] == 3

    def test_batch(self, both_stacks):
        lines = b'{"pstar": 1.8}\n{"pstar": 2.2}\n'
        raw = request_bytes(
            "POST",
            "/v1/batch",
            lines,
            headers={"Content-Type": "application/x-ndjson"},
        )
        status, reply = assert_parity(both_stacks, raw, 200)
        assert len(reply.splitlines()) == 2

    def test_ops_healthz(self, both_stacks):
        raw = request_bytes("GET", "/healthz")
        assert_parity(both_stacks, raw, 200)


class TestErrorTaxonomyParity:
    def test_unknown_path_404(self, both_stacks):
        _status, body = assert_parity(
            both_stacks, request_bytes("GET", "/nope"), 404
        )
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_wrong_method_405(self, both_stacks):
        _status, body = assert_parity(
            both_stacks, request_bytes("GET", "/v1/solve"), 405
        )
        assert json.loads(body)["error"]["code"] == "method_not_allowed"
        assert_parity(
            both_stacks, request_bytes("POST", "/v1/sweep", b"{}"), 405
        )

    def test_unparseable_json_400(self, both_stacks):
        _status, body = assert_parity(
            both_stacks,
            request_bytes("POST", "/v1/solve", b"not json"),
            400,
        )
        error = json.loads(body)["error"]
        assert error["code"] == "parse_error"
        assert error["retryable"] is False

    def test_invalid_request_400(self, both_stacks):
        raw = request_bytes(
            "POST", "/v1/solve", json.dumps({"pstar": -3.0}).encode()
        )
        _status, body = assert_parity(both_stacks, raw, 400)
        assert json.loads(body)["error"]["code"] == "invalid_request"

    def test_missing_content_length_411(self, both_stacks):
        raw = (
            b"POST /v1/solve HTTP/1.1\r\nHost: parity\r\n"
            b"Content-Type: application/json\r\nConnection: close\r\n\r\n"
        )
        _status, body = assert_parity(both_stacks, raw, 411)
        assert json.loads(body)["error"]["code"] == "length_required"

    def test_chunked_body_411(self, both_stacks):
        raw = (
            b"POST /v1/solve HTTP/1.1\r\nHost: parity\r\n"
            b"Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            b"0\r\n\r\n"
        )
        assert_parity(both_stacks, raw, 411)

    def test_malformed_content_length_411(self, both_stacks):
        raw = (
            b"POST /v1/solve HTTP/1.1\r\nHost: parity\r\n"
            b"Content-Length: banana\r\nConnection: close\r\n\r\n"
        )
        _status, body = assert_parity(both_stacks, raw, 411)
        assert json.loads(body)["error"]["code"] == "length_required"

    def test_body_too_large_413(self, both_stacks):
        huge = b"x" * (PARITY_CONFIG["max_body_bytes"] + 1)
        raw = request_bytes("POST", "/v1/solve", huge)
        _status, body = assert_parity(both_stacks, raw, 413)
        error = json.loads(body)["error"]
        assert error["code"] == "body_too_large"
        assert str(PARITY_CONFIG["max_body_bytes"]) in error["message"]


class TestLoadSheddingParity:
    def test_queue_full_429_bytes_match(self, make_server):
        """Saturate both stacks (depth 1, a gated in-flight request);
        the second request's 429 must match byte-for-byte."""
        import threading
        import urllib.request

        config = dict(PARITY_CONFIG, queue_depth=1)

        def saturated_429(port: int, gate: GatedService):
            raw = request_bytes("POST", "/v1/solve", SOLVE)
            blocker = threading.Thread(
                target=lambda: urllib.request.urlopen(
                    urllib.request.Request(
                        f"http://127.0.0.1:{port}/v1/solve",
                        data=SOLVE,
                        headers={"Content-Type": "application/json"},
                    ),
                    timeout=30,
                ),
                daemon=True,
            )
            blocker.start()
            assert gate.started.wait(timeout=10.0)
            outcome = exchange(port, raw)
            gate.release.set()
            blocker.join(timeout=30.0)
            return outcome

        gate_threaded = GatedService()
        threaded = make_server(service=gate_threaded, **config)
        t_status, t_headers, t_body = saturated_429(
            threaded.port, gate_threaded
        )

        gate_replica = GatedService()
        replica = make_server(service=gate_replica, **config)
        router = RouterServer(
            ServerConfig(port=0, **config),
            endpoints=[(replica.host, replica.port)],
        ).start()
        try:
            r_status, r_headers, r_body = saturated_429(
                router.port, gate_replica
            )
        finally:
            router.shutdown(drain=False)

        assert (t_status, t_body) == (429, r_body) == (r_status, t_body)
        assert t_headers.get("retry-after") == r_headers.get("retry-after") == "1"

    def test_deadline_504_bytes_match(self, make_server):
        config = dict(PARITY_CONFIG, deadline=0.02)
        gate_threaded = GatedService()
        threaded = make_server(service=gate_threaded, **config)
        gate_replica = GatedService()
        replica = make_server(service=gate_replica, **config)
        router = RouterServer(
            ServerConfig(port=0, **config),
            endpoints=[(replica.host, replica.port)],
        ).start()
        raw = request_bytes("POST", "/v1/solve", SOLVE)
        try:
            # never release the gates: both requests must deadline out
            t_status, _h, t_body = exchange(threaded.port, raw)
            r_status, _h, r_body = exchange(router.port, raw)
        finally:
            gate_threaded.release.set()
            gate_replica.release.set()
            router.shutdown(drain=False)
        assert (t_status, t_body) == (504, r_body) == (r_status, t_body)
        error = json.loads(t_body)["error"]
        assert error["code"] == "deadline_exceeded"
        assert error["retryable"] is True
