"""The replica-aware client: discovery, fail-over, breakers, hedging.

Real sockets throughout: replicas are actual threaded servers, the
router (when used) is the actual asyncio front end. Hedging timing is
driven through :class:`HedgePolicy`'s injectable delay derivation, not
sleeps in the product code.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import RouterServer, ServerConfig
from repro.server.client import (
    CircuitOpenError,
    ClientError,
    HedgePolicy,
    RetryPolicy,
    SwapClient,
)
from tests.faults.conftest import counter_value, registry  # noqa: F401
from tests.server.conftest import GatedService, make_server  # noqa: F401

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _urls(*servers) -> list:
    return [f"http://127.0.0.1:{server.port}" for server in servers]


class TestReplicaSets:
    def test_static_replicas_answer_and_rotate(self, make_server):
        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid", replicas=_urls(a, b), retry=FAST_RETRY
        )
        assert client.replica_urls == _urls(a, b)
        payload = {"kind": "solve", "pstar": 2.0, "collateral": 0.0}
        # rotation alternates replicas: the same request is cold on the
        # first two calls (one per replica), cached from the third on
        first = client._json("POST", "/v1/solve", payload)
        second = client._json("POST", "/v1/solve", payload)
        third = client._json("POST", "/v1/solve", payload)
        assert (first["cached"], second["cached"], third["cached"]) == (
            False,
            False,
            True,
        )

    def test_discovery_from_router_readyz(self, make_server):
        a, b = make_server(), make_server()
        router = RouterServer(
            ServerConfig(port=0),
            endpoints=[(a.host, a.port), (b.host, b.port)],
        ).start()
        try:
            client = SwapClient(
                f"http://127.0.0.1:{router.port}",
                discover=True,
                retry=FAST_RETRY,
            )
            assert client.replica_urls == router.replica_urls
            assert client.solve(pstar=2.0).success_rate > 0
            # ops probes still go to the router itself
            assert client.health() is True
        finally:
            router.shutdown(drain=False)

    def test_discovery_against_plain_server_stays_single_endpoint(
        self, make_server
    ):
        server = make_server()
        client = SwapClient(
            f"http://127.0.0.1:{server.port}", discover=True, retry=FAST_RETRY
        )
        assert client.replica_urls == []
        assert client.solve(pstar=2.0).success_rate > 0

    def test_refresh_keeps_surviving_breakers(self, make_server):
        a, b, c = make_server(), make_server(), make_server()
        client = SwapClient("http://unused.invalid", replicas=_urls(a, b))
        survivor = client._endpoints[0]
        survivor.breaker.record_failure()
        client.set_replicas(_urls(a, c))
        assert client._endpoints[0] is survivor  # history preserved
        assert client.replica_urls == _urls(a, c)

    def test_failover_when_one_replica_dies(self, make_server):
        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid", replicas=_urls(a, b), retry=FAST_RETRY
        )
        a.shutdown(drain=False)
        for i in range(6):
            assert client.solve(pstar=1.8 + i * 0.1).success_rate > 0

    def test_all_replicas_down_opens_every_breaker(self, make_server):
        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid", replicas=_urls(a, b), retry=FAST_RETRY
        )
        a.shutdown(drain=False)
        b.shutdown(drain=False)
        with pytest.raises(ClientError):
            for _ in range(4):  # enough logical requests to trip both
                client.solve(pstar=2.0)
        for endpoint in client._endpoints:
            endpoint.breaker.record_failure()  # ensure tripped
        with pytest.raises(CircuitOpenError):
            client.solve(pstar=2.0)

    def test_non_retryable_reply_surfaces_immediately(self, make_server):
        from repro.server.client import ServerReplyError

        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid", replicas=_urls(a, b), retry=FAST_RETRY
        )
        with pytest.raises(ServerReplyError) as excinfo:
            client.solve(pstar=-5.0)
        assert excinfo.value.status == 400
        # a conclusive reply is breaker *success*: the transport worked
        for endpoint in client._endpoints:
            assert endpoint.breaker.state == "closed"


class TestHedging:
    def test_policy_derives_delay_from_p95(self):
        policy = HedgePolicy(quantile=0.95, multiplier=2.0, warmup=4)
        assert policy.delay_from([0.1]) == policy.initial_delay  # warming up
        samples = [0.010] * 95 + [0.500] * 5
        derived = policy.delay_from(samples)
        assert derived == pytest.approx(2.0 * sorted(samples)[94], rel=0.2)

    def test_policy_clamps_to_bounds(self):
        policy = HedgePolicy(warmup=1, min_delay=0.05, max_delay=0.2)
        assert policy.delay_from([1e-9, 1e-9]) == 0.05
        assert policy.delay_from([10.0, 10.0]) == 0.2

    def test_policy_validates(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(multiplier=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(warmup=0)

    def test_slow_primary_loses_to_hedge(self, registry, make_server):
        slow_service = GatedService()
        slow = make_server(service=slow_service)
        fast = make_server()
        client = SwapClient(
            "http://unused.invalid",
            replicas=_urls(slow, fast),
            retry=FAST_RETRY,
            hedge=HedgePolicy(initial_delay=0.05, warmup=10_000),
        )
        client._rotation = 0  # primary = slow replica, hedge = fast one
        try:
            result = client.solve(pstar=2.0)
        finally:
            slow_service.release.set()
        assert result.success_rate > 0
        assert counter_value(registry, "repro_hedge_requests_total") == 1.0
        assert (
            counter_value(registry, "repro_hedge_wins_total", arm="hedge")
            == 1.0
        )

    def test_fast_primary_never_launches_a_hedge(self, registry, make_server):
        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid",
            replicas=_urls(a, b),
            retry=FAST_RETRY,
            hedge=HedgePolicy(initial_delay=30.0, warmup=10_000),
        )
        client.solve(pstar=2.0)
        client.solve(pstar=2.0)
        assert counter_value(registry, "repro_hedge_requests_total") == 0.0

    def test_hedge_needs_two_replicas(self, registry, make_server):
        server = make_server()
        client = SwapClient(
            "http://unused.invalid",
            replicas=_urls(server),
            retry=FAST_RETRY,
            hedge=HedgePolicy(initial_delay=0.0001, warmup=10_000),
        )
        assert client.solve(pstar=2.0).success_rate > 0
        assert counter_value(registry, "repro_hedge_requests_total") == 0.0

    def test_batch_is_never_hedged(self, registry, make_server):
        a, b = make_server(), make_server()
        client = SwapClient(
            "http://unused.invalid",
            replicas=_urls(a, b),
            retry=FAST_RETRY,
            hedge=HedgePolicy(initial_delay=0.0, warmup=10_000),
        )
        records = client.batch([{"pstar": 1.9}, {"pstar": 2.1}])
        assert len(records) == 2
        assert counter_value(registry, "repro_hedge_requests_total") == 0.0

    def test_losing_arm_still_feeds_its_breaker(self, make_server):
        slow_service = GatedService()
        slow = make_server(service=slow_service)
        fast = make_server()
        client = SwapClient(
            "http://unused.invalid",
            replicas=_urls(slow, fast),
            retry=FAST_RETRY,
            hedge=HedgePolicy(initial_delay=0.05, warmup=10_000),
        )
        client._rotation = 0
        slow_endpoint = client._endpoints[0]
        try:
            client.solve(pstar=2.0)
        finally:
            slow_service.release.set()
        # the loser eventually completes fine: breaker stays closed
        deadline = threading.Event()
        deadline.wait(0.5)
        assert slow_endpoint.breaker.state == "closed"
