"""Shared server-test helpers: real sockets, ephemeral ports.

Every test here starts an actual :class:`SwapServer` on port 0 and
talks to it over loopback TCP -- no mocked transports -- so admission,
drain, and error paths are exercised exactly as a deployment sees them.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

import pytest

from repro.server import ServerConfig, SwapServer
from repro.server.client import RetryPolicy, SwapClient
from repro.service.api import SwapService


class GatedService(SwapService):
    """A service whose batches block until the test releases them.

    ``started`` is set when a batch enters ``run_batch``; the batch then
    waits on ``release`` before delegating to the real implementation --
    the deterministic way to hold a request in flight while the test
    saturates the admission gate or begins a drain.
    """

    def __init__(self) -> None:
        super().__init__(max_workers=1)
        self.started = threading.Event()
        self.release = threading.Event()

    def run_batch(self, requests):
        self.started.set()
        assert self.release.wait(timeout=30.0), "test never released the batch"
        return super().run_batch(requests)


@pytest.fixture()
def make_server():
    """Factory: start a server on an ephemeral port, always shut down."""
    servers = []

    def _make(
        service: Optional[SwapService] = None, **config_kwargs
    ) -> SwapServer:
        config_kwargs.setdefault("port", 0)
        server = SwapServer(ServerConfig(**config_kwargs), service=service)
        server.start()
        servers.append(server)
        return server

    yield _make
    for server in servers:
        server.shutdown(drain=False)


@pytest.fixture()
def make_client():
    """A client with fast, deterministic retries against a server."""

    def _make(server: SwapServer, **kwargs) -> SwapClient:
        kwargs.setdefault(
            "retry", RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)
        )
        kwargs.setdefault("timeout", 10.0)
        return SwapClient(f"http://127.0.0.1:{server.port}", **kwargs)

    return _make


def request_in_thread(fn) -> "threading.Thread":
    """Run a client call on a daemon thread, capturing outcome on it."""

    def _run() -> None:
        try:
            thread.value = fn()
        except Exception as exc:  # surfaced by the asserting test
            thread.error = exc

    thread = threading.Thread(target=_run, daemon=True)
    thread.value = None
    thread.error = None
    thread.start()
    return thread
