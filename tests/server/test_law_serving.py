"""Price laws over the wire: solve/validate/sweep, discovery, parity.

The law rides inside the ``params`` payload (or the ``law`` query
parameter on sweeps). These tests pin four contracts: non-default laws
reach the solver and change answers; law-less requests stay
byte-identical to the pre-law wire format (same canonical payload,
same key digest, so caches keep hitting); both discovery endpoints
advertise the registered laws; and a loaded surface refuses to answer
for a law it was not built under.
"""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.service.keys import KEY_VERSION, canonical_payload, request_key
from repro.service.requests import SolveRequest, parse_request
from repro.stochastic.law import LawSpec

JUMPY = "merton:jump_intensity=0.2,jump_mean=-0.15,jump_std=0.15"


def _get(server, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=10.0
    ) as response:
        return response.status, json.loads(response.read())


class TestSolveWithLaw:
    def test_law_changes_the_answer(self, make_server, make_client):
        client = make_client(make_server())
        baseline = client.solve(pstar=2.0)
        jumpy = client.solve(pstar=2.0, law=JUMPY)
        assert abs(jumpy.success_rate - baseline.success_rate) > 1e-3

    def test_matches_in_process_solver(self, make_server, make_client):
        client = make_client(make_server())
        eq = client.solve(pstar=2.0, law=JUMPY)
        params = SwapParameters.default().replace(law=JUMPY)
        expected = BackwardInduction(params, 2.0).success_rate()
        assert eq.success_rate == pytest.approx(expected, abs=1e-12)

    def test_explicit_params_law_wins_over_shorthand(
        self, make_server, make_client
    ):
        client = make_client(make_server())
        via_params = client.solve(
            pstar=2.0, params={"law": JUMPY}, law="regime"
        )
        via_shorthand = client.solve(pstar=2.0, law=JUMPY)
        assert via_params.success_rate == via_shorthand.success_rate

    def test_bad_law_is_a_clean_client_error(self, make_server, make_client):
        from repro.server.client import ClientError

        client = make_client(make_server())
        with pytest.raises(ClientError) as excinfo:
            client.solve(pstar=2.0, law="ghost")
        assert excinfo.value.status == 400

    def test_validate_with_law(self, make_server, make_client):
        client = make_client(make_server())
        outcome = client.validate(
            pstar=2.0, n_paths=4000, seed=3, law=JUMPY
        )
        assert 0.0 <= outcome.empirical.success_rate <= 1.0


class TestSweepWithLaw:
    def test_sweep_law_reaches_the_grid_engine(
        self, make_server, make_client
    ):
        client = make_client(make_server())
        pstars = [1.8, 2.0, 2.2]
        baseline = client.sweep(pstars)
        jumpy = client.sweep(pstars, law=JUMPY)
        a = np.array([row["success_rate"] for row in baseline])
        b = np.array([row["success_rate"] for row in jumpy])
        assert np.max(np.abs(a - b)) > 1e-3

    def test_sweep_bad_law_is_400(self, make_server):
        server = make_server()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/v1/sweep?pstars=2.0&law=ghost")
        assert excinfo.value.code == 400


class TestWireParity:
    """Law-less payloads are byte-identical to the pre-law schema."""

    def test_lognormal_payload_has_no_law_field(self, params):
        request = SolveRequest(pstar=2.0, params=params)
        assert '"law"' not in canonical_payload(request)

    def test_lognormal_key_matches_pre_law_digest(self, params):
        """Same canonical bytes as v4 -- only the version prefix moved."""
        import hashlib

        request = SolveRequest(pstar=2.0, params=params)
        digest = hashlib.sha256(
            canonical_payload(request).encode("utf-8")
        ).hexdigest()
        assert request_key(request) == f"v{KEY_VERSION}-{digest}"
        assert KEY_VERSION == 5

    def test_law_is_part_of_the_key(self, params):
        plain = SolveRequest(pstar=2.0, params=params)
        lawful = SolveRequest(
            pstar=2.0, params=params.replace(law=JUMPY)
        )
        assert request_key(plain) != request_key(lawful)

    def test_parse_request_accepts_law_object(self, params):
        payload = {"kind": "solve", "pstar": 2.0, "params": params.to_dict()}
        payload["params"]["law"] = LawSpec.make("regime").to_dict()
        request = parse_request(payload)
        assert request.params.law.kind == "regime"

    def test_law_survives_request_round_trip(self, params):
        request = SolveRequest(
            pstar=2.0, params=params.replace(law=JUMPY)
        )
        assert parse_request(request.to_dict()) == request


class TestDiscovery:
    def test_version_lists_registered_laws(self, make_server):
        server = make_server()
        _, document = _get(server, "/version")
        assert document["laws"] == {"lognormal": 1, "merton": 1, "regime": 1}

    def test_readyz_lists_registered_laws(self, make_server):
        server = make_server()
        _, document = _get(server, "/readyz")
        assert document["laws"] == {"lognormal": 1, "merton": 1, "regime": 1}

    def test_client_server_info_carries_laws(self, make_server, make_client):
        info = make_client(make_server()).server_info()
        assert info["laws"] == {"lognormal": 1, "merton": 1, "regime": 1}


class TestSurfaceLawGate:
    def test_surface_refuses_other_laws(self, tmp_path, params):
        from repro.surface import AxisSpec, SurfaceSpec
        from repro.surface.builder import build_surface

        axes = (AxisSpec(name="pstar", lo=1.6, hi=2.4, points=5),)
        surface = build_surface(
            SurfaceSpec(axes=axes, params=params), scan_points=128
        )
        on_surface = surface.lookup(params, [2.0], tolerance=1.0)
        assert not on_surface.off_surface
        mismatched = surface.lookup(
            params.replace(law=JUMPY), [2.0], tolerance=1.0
        )
        assert mismatched.off_surface
        assert not mismatched.answered.any()

    def test_surface_info_names_its_law(self, params):
        from repro.surface import AxisSpec, SurfaceSpec
        from repro.surface.builder import build_surface

        axes = (AxisSpec(name="pstar", lo=1.6, hi=2.4, points=3),)
        lawful = params.replace(law=LawSpec.make("regime"))
        surface = build_surface(
            SurfaceSpec(axes=axes, params=lawful), scan_points=64
        )
        assert surface.info()["law"].startswith("regime(")
