"""The router's authenticated admin surface: live resharding.

Runs the real asyncio router over real threaded replicas (static
endpoints, so no subprocess cold starts) and exercises the control
plane end to end: bearer auth, the topology document, url-mode add and
two-phase remove under traffic, conflict races, the
``admin_partition`` chaos kind, client topology re-discovery keyed on
the ``/readyz`` epoch, and the hot-key response cache with its
epoch-wide invalidation.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.faults.injector import build_injector
from repro.server import RouterServer, ServerConfig
from repro.server.client import (
    RetryPolicy,
    ServerReplyError,
    SwapClient,
)
from repro.server.router import routing_key
from tests.faults.conftest import counter_value, registry  # noqa: F401
from tests.server.conftest import make_client, make_server  # noqa: F401

TOKEN = "swordfish"


def _solve_key(pstar: float) -> str:
    body = json.dumps(
        {"kind": "solve", "pstar": pstar, "collateral": 0.0},
        separators=(",", ":"),
    ).encode("utf-8")
    return routing_key("POST", "/v1/solve", body)


def _pstars_homing_on(router, name: str, count: int = 3):
    found = [
        pstar
        for pstar in (round(1.5 + i * 0.05, 2) for i in range(60))
        if router.ring.node_for(_solve_key(pstar)) == name
    ][:count]
    assert found, f"no pstar hashed onto {name} (ring broken?)"
    return found


@pytest.fixture()
def admin_sharded(make_server):
    """A router (admin surface on) over two threaded replicas."""

    routers = []

    def _make(router_config=None, **client_kwargs):
        a = make_server()
        b = make_server()
        config = (
            router_config
            if router_config is not None
            else ServerConfig(admin_token=TOKEN)
        )
        router = RouterServer(
            config, endpoints=[(a.host, a.port), (b.host, b.port)]
        ).start()
        routers.append(router)
        client_kwargs.setdefault(
            "retry", RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        )
        client_kwargs.setdefault("timeout", 30.0)
        client_kwargs.setdefault("admin_token", TOKEN)
        client = SwapClient(
            f"http://127.0.0.1:{router.port}", **client_kwargs
        )
        return router, client

    yield _make
    for router in routers:
        router.shutdown(drain=False)


class TestAdminAuth:
    def test_without_a_configured_token_the_surface_is_disabled(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded(
            router_config=ServerConfig()  # no admin_token
        )
        with pytest.raises(ServerReplyError) as excinfo:
            client.admin_topology()
        assert excinfo.value.status == 403
        assert excinfo.value.error["code"] == "unauthorized"
        assert "disabled" in str(excinfo.value)

    def test_bad_token_is_refused(self, registry, admin_sharded):
        router, client = admin_sharded(admin_token="wrong")
        with pytest.raises(ServerReplyError) as excinfo:
            client.admin_remove("replica-0")
        assert excinfo.value.status == 403
        # ... and the refusal changed nothing
        assert sorted(router.ring.nodes) == ["replica-0", "replica-1"]

    def test_admin_requests_bypass_the_admission_gate(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded()
        # fill the gate to the brim; the control plane must still answer
        for _ in range(router.config.queue_depth):
            assert router.gate.try_enter()
        try:
            assert client.admin_topology()["ok"] is True
        finally:
            for _ in range(router.config.queue_depth):
                router.gate.leave()


class TestTopologyDocument:
    def test_reports_ring_replicas_and_admission(self, registry, admin_sharded):
        router, client = admin_sharded()
        doc = client.admin_topology()
        assert doc["ok"] is True
        assert doc["epoch"] == 1
        assert sorted(doc["ring"]) == ["replica-0", "replica-1"]
        by_name = {entry["name"]: entry for entry in doc["replicas"]}
        assert set(by_name) == {"replica-0", "replica-1"}
        for entry in by_name.values():
            assert entry["url"].startswith("http://127.0.0.1:")
            assert entry["on_ring"] is True
            assert entry["draining"] is False
            # static endpoints are externally managed: no supervisor
            assert "supervisor" not in entry
        assert doc["admission"]["depth"] == router.config.queue_depth


class TestLiveReshard:
    def test_url_add_grows_the_ring_and_takes_traffic(
        self, registry, admin_sharded, make_server
    ):
        router, client = admin_sharded()
        baseline = client.solve(pstar=2.0).success_rate
        third = make_server()
        reply = client.admin_add(
            url=f"http://127.0.0.1:{third.port}", name="replica-2"
        )
        assert reply["ok"] is True
        assert reply["name"] == "replica-2"
        assert reply["epoch"] == 2
        assert sorted(router.ring.nodes) == [
            "replica-0",
            "replica-1",
            "replica-2",
        ]
        # the newcomer's keyslice really routes to it, correctly
        for pstar in _pstars_homing_on(router, "replica-2"):
            assert client.solve(pstar=pstar).success_rate is not None
        assert (
            counter_value(
                registry, "repro_router_requests_total", replica="replica-2"
            )
            >= 3.0
        )
        # the old shards' keys did not move (caches stay hot)
        assert client.solve(pstar=2.0).success_rate == baseline

    def test_duplicate_name_is_a_conflict(
        self, registry, admin_sharded, make_server
    ):
        router, client = admin_sharded()
        third = make_server()
        with pytest.raises(ServerReplyError) as excinfo:
            client.admin_add(
                url=f"http://127.0.0.1:{third.port}", name="replica-0"
            )
        assert excinfo.value.status == 409
        assert excinfo.value.error["code"] == "conflict"

    def test_remove_drains_and_shrinks_the_ring(self, registry, admin_sharded):
        router, client = admin_sharded()
        victim = router.ring.node_for(_solve_key(2.0))
        survivor = next(n for n in router.ring.nodes if n != victim)
        baseline = client.solve(pstar=2.0).success_rate
        reply = client.admin_remove(victim)
        assert reply["ok"] is True
        assert reply["drained"] is True
        assert reply["epoch"] == 2
        assert router.ring.nodes == [survivor]
        # the removed shard's keys re-homed; answers stay correct
        assert client.solve(pstar=2.0).success_rate == baseline
        assert router.ring.node_for(_solve_key(2.0)) == survivor

    def test_unknown_replica_is_an_invalid_request(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded()
        with pytest.raises(ServerReplyError) as excinfo:
            client.admin_remove("replica-99")
        assert excinfo.value.status == 400

    def test_the_last_ring_member_cannot_be_removed(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded()
        client.admin_remove("replica-1")
        with pytest.raises(ServerReplyError) as excinfo:
            client.admin_remove("replica-0")
        assert excinfo.value.status == 409
        assert excinfo.value.error["code"] == "conflict"
        # the fleet still serves
        assert client.solve(pstar=2.0).success_rate is not None


class TestAdminPartition:
    def test_partition_is_typed_retryable_and_heals(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded()
        plan = InjectionPlan(
            faults=(FaultSpec(kind="admin_partition", count=1),), seed=5
        )
        router.faults = build_injector(plan)
        # the first attempt eats the injected 503; the client's retry
        # policy resubmits and the healed surface answers
        doc = client.admin_topology()
        assert doc["ok"] is True
        assert router.faults.injected_total("admin_partition") == 1

    def test_partition_without_retries_is_a_clean_503(
        self, registry, admin_sharded
    ):
        router, client = admin_sharded(
            retry=RetryPolicy(max_attempts=1, base_delay=0.01)
        )
        plan = InjectionPlan(
            faults=(FaultSpec(kind="admin_partition", count=1),), seed=5
        )
        router.faults = build_injector(plan)
        from repro.server.client import RetriesExhaustedError

        with pytest.raises(RetriesExhaustedError):
            client.admin_topology()
        # the data plane was never partitioned
        assert client.solve(pstar=2.0).success_rate is not None


class TestClientRediscovery:
    def test_epoch_change_is_picked_up_without_restart(
        self, registry, admin_sharded, make_server
    ):
        router, client = admin_sharded(
            discover=True, discover_interval=0.05
        )
        client.discover_replicas()
        assert client.topology_epoch == 1
        assert len(client._endpoints) == 2
        third = make_server()
        client.admin_add(url=f"http://127.0.0.1:{third.port}")
        time.sleep(0.06)  # the periodic refresh falls due
        # an ordinary data-plane call notices the new topology en route
        assert client.solve(pstar=2.0).success_rate is not None
        assert client.topology_epoch == 2
        assert len(client._endpoints) == 3

    def test_same_epoch_refresh_changes_nothing(self, registry, admin_sharded):
        router, client = admin_sharded(discover=True)
        client.discover_replicas()
        endpoints = client._endpoints
        client.discover_replicas()  # same epoch: breakers keep history
        assert client._endpoints is endpoints


class TestRouterResponseCache:
    def _cached_router(self, admin_sharded):
        return admin_sharded(
            router_config=ServerConfig(admin_token=TOKEN, router_cache=8)
        )

    def test_identical_requests_hit_after_one_proxy(
        self, registry, admin_sharded
    ):
        router, client = self._cached_router(admin_sharded)
        first = client.solve(pstar=2.0).success_rate
        for _ in range(3):
            assert client.solve(pstar=2.0).success_rate == first
        proxied = sum(
            counter_value(
                registry, "repro_router_requests_total", replica=name
            )
            for name in ("replica-0", "replica-1")
        )
        assert proxied == 1.0  # one miss filled the cache
        events = "repro_router_cache_events_total"
        assert counter_value(registry, events, event="miss") == 1.0
        assert counter_value(registry, events, event="hit") == 3.0

    def test_epoch_change_invalidates_wholesale(
        self, registry, admin_sharded, make_server
    ):
        router, client = self._cached_router(admin_sharded)
        baseline = client.solve(pstar=2.0).success_rate
        assert client.solve(pstar=2.0).success_rate == baseline  # hit
        third = make_server()
        client.admin_add(url=f"http://127.0.0.1:{third.port}")
        events = "repro_router_cache_events_total"
        assert counter_value(registry, events, event="invalidate") == 1.0
        # stale-shard answers can never be served: the next identical
        # request re-proxies on the new topology
        assert client.solve(pstar=2.0).success_rate == baseline
        assert counter_value(registry, events, event="miss") == 2.0

    def test_capacity_evicts_least_recently_used(
        self, registry, admin_sharded
    ):
        router, client = self._cached_router(admin_sharded)
        for i in range(10):  # capacity 8: two evictions
            client.solve(pstar=round(1.5 + i * 0.05, 2))
        events = "repro_router_cache_events_total"
        assert counter_value(registry, events, event="evict") == 2.0
        assert len(router._response_cache) == 8

    def test_cache_off_by_default(self, registry, admin_sharded):
        router, client = admin_sharded()
        for _ in range(3):
            client.solve(pstar=2.0)
        assert (
            counter_value(
                registry, "repro_router_cache_events_total", event="hit"
            )
            == 0.0
        )
        assert len(router._response_cache) == 0
