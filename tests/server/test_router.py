"""The consistent-hash ring and the router's failure handling.

The ring tests pin the two properties sharding relies on: stable,
cross-process key placement (BLAKE2b, not ``hash()``) and *keyslice
stability* -- removing one replica re-homes only the keys it owned.
The RouterServer tests run the real asyncio front end over real
in-process threaded servers and exercise the ``replica_down`` chaos
kind: the router must heal by re-routing, invisibly to the caller.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.server import RouterServer, ServerConfig
from repro.server.router import HashRing, routing_key
from tests.faults.conftest import counter_value, registry  # noqa: F401
from tests.server.conftest import make_client, make_server  # noqa: F401

KEYS = [f"key-{i}" for i in range(500)]


class TestHashRing:
    def test_every_key_lands_on_a_member(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS:
            assert ring.node_for(key) in ("a", "b", "c")

    def test_placement_is_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # insertion order is irrelevant
        assert [first.node_for(k) for k in KEYS] == [
            second.node_for(k) for k in KEYS
        ]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(["a", "b", "c", "d"])
        counts = {name: 0 for name in "abcd"}
        for i in range(4000):
            counts[ring.node_for(f"k{i}")] += 1
        # 64 vnodes keeps shards within a factor ~2 of each other
        assert max(counts.values()) < 2.5 * min(counts.values())

    def test_removal_rehomes_only_the_lost_keyslice(self):
        ring = HashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("b")
        for key, owner in before.items():
            if owner == "b":
                assert ring.node_for(key) in ("a", "c")
            else:
                # the survivors' keyslices are untouched: caches stay hot
                assert ring.node_for(key) == owner

    def test_addition_steals_slivers_without_swapping_survivors(self):
        ring = HashRing(["a", "b"])
        before = {key: ring.node_for(key) for key in KEYS}
        ring.add("c")
        moved = 0
        for key, owner in before.items():
            after = ring.node_for(key)
            if after != owner:
                assert after == "c"  # keys only ever move TO the newcomer
                moved += 1
        assert 0 < moved < len(KEYS) / 2  # a sliver, not a reshuffle

    def test_nodes_for_prefers_distinct_nodes_in_failover_order(self):
        ring = HashRing(["a", "b", "c"])
        for key in KEYS[:50]:
            walk = ring.nodes_for(key)
            assert walk[0] == ring.node_for(key)
            assert sorted(walk) == ["a", "b", "c"]  # all distinct, all present

    def test_duplicate_and_missing_members_are_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.remove("zz")

    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.node_for("k") is None
        assert ring.nodes_for("k") == []


class TestRoutingKey:
    def test_solve_routes_by_canonical_service_key(self):
        spaced = json.dumps({"pstar": 2.0, "collateral": 0.0}).encode()
        dense = b'{"collateral":0.0,"kind":"solve","pstar":2.0}'
        assert routing_key("POST", "/v1/solve", spaced) == routing_key(
            "POST", "/v1/solve", dense
        )

    def test_solve_and_validate_of_same_point_route_apart(self):
        body = b'{"pstar": 2.0}'
        assert routing_key("POST", "/v1/solve", body) != routing_key(
            "POST", "/v1/validate", body
        )

    def test_malformed_bodies_still_route_deterministically(self):
        junk = b"not json at all"
        assert routing_key("POST", "/v1/solve", junk) == routing_key(
            "POST", "/v1/solve", junk
        )

    def test_sweep_routes_by_normalised_query(self):
        a = routing_key("GET", "/v1/sweep?pstars=1.5,2.0&collateral=0.0", b"")
        b = routing_key("GET", "/v1/sweep?collateral=0.0&pstars=1.5,2.0", b"")
        assert a == b

    def test_batch_routes_by_body(self):
        one = routing_key("POST", "/v1/batch", b'{"pstar": 1.5}\n')
        two = routing_key("POST", "/v1/batch", b'{"pstar": 2.5}\n')
        assert one != two


@pytest.fixture()
def sharded(make_server):
    """A router over two real threaded replicas; yields (router, client)."""
    from repro.server.client import RetryPolicy, SwapClient

    def _make(router_config=None, **replica_kwargs):
        a = make_server(**replica_kwargs)
        b = make_server(**replica_kwargs)
        config = router_config if router_config is not None else ServerConfig()
        router = RouterServer(
            config, endpoints=[(a.host, a.port), (b.host, b.port)]
        ).start()
        client = SwapClient(
            f"http://127.0.0.1:{router.port}",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
            timeout=30.0,
        )
        return router, client

    routers = []

    def _tracked(*args, **kwargs):
        router, client = _make(*args, **kwargs)
        routers.append(router)
        return router, client

    yield _tracked
    for router in routers:
        router.shutdown(drain=False)


class TestRouterServer:
    def test_identical_requests_stick_to_one_replica(self, registry, sharded):
        router, client = sharded()
        for _ in range(6):
            client.solve(pstar=2.0)
        counts = [
            counter_value(
                registry, "repro_router_requests_total", replica=name
            )
            for name in ("replica-0", "replica-1")
        ]
        assert sorted(counts) == [0.0, 6.0]  # all six on the home shard

    def test_distinct_keys_spread_across_replicas(self, registry, sharded):
        router, client = sharded()
        for i in range(12):
            client.solve(pstar=1.5 + i * 0.07)
        counts = [
            counter_value(
                registry, "repro_router_requests_total", replica=name
            )
            for name in ("replica-0", "replica-1")
        ]
        assert sum(counts) == 12.0
        assert min(counts) > 0.0  # both shards participate

    def test_replica_down_fault_heals_by_rerouting(self, registry, sharded):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="replica_down", count=3),), seed=7
        )
        from repro.faults.injector import build_injector

        router, client = sharded()
        router.faults = build_injector(plan)
        baseline = client.solve(pstar=2.0).success_rate
        for _ in range(6):
            assert client.solve(pstar=2.0).success_rate == baseline
        assert (
            counter_value(
                registry, "repro_router_reroutes_total", reason="replica_down"
            )
            == 3.0
        )
        # healing was invisible: every request got the right answer
        assert router.faults.injected_total("replica_down") == 3

    def test_dead_replica_fails_over_and_trips_its_breaker(
        self, registry, sharded, make_server
    ):
        router, client = sharded()
        # replace one replica's endpoint with a dead port
        victim = router._links["replica-0"]
        live = router._links["replica-1"]
        victim.host, victim.port = "127.0.0.1", _claim_dead_port()
        victim.close_all()
        # pick pstars whose home shard IS the dead replica: the test is
        # deterministic, not a coin-flip over the keyspace
        doomed = [
            pstar
            for pstar in (round(1.5 + i * 0.05, 2) for i in range(40))
            if router.ring.node_for(_solve_key(pstar)) == "replica-0"
        ][:5]
        assert doomed, "no pstar hashed onto replica-0 (ring broken?)"
        for pstar in doomed:
            assert client.solve(pstar=pstar).success_rate is not None
        # every request answered; the dead shard's traffic re-routed
        assert (
            counter_value(registry, "repro_router_rejected_total", reason="no_replica")
            == 0.0
        )
        reroutes = counter_value(
            registry, "repro_router_reroutes_total", reason="connect_failed"
        ) + counter_value(
            registry, "repro_router_reroutes_total", reason="circuit_open"
        )
        assert reroutes == float(len(doomed))
        assert live.breaker.state == "closed"

    def test_all_replicas_dead_is_typed_no_replica(self, registry):
        config = ServerConfig(port=0)
        dead = _claim_dead_port()
        router = RouterServer(
            config, endpoints=[("127.0.0.1", dead), ("127.0.0.1", dead)]
        ).start()
        try:
            from repro.server.client import RetryPolicy, SwapClient
            from repro.server.client import ClientError

            client = SwapClient(
                f"http://127.0.0.1:{router.port}",
                retry=RetryPolicy(max_attempts=1, base_delay=0.01),
            )
            with pytest.raises(ClientError) as excinfo:
                client.solve(pstar=2.0)
            assert "no_replica" in str(excinfo.value)
            assert (
                counter_value(
                    registry, "repro_router_rejected_total", reason="no_replica"
                )
                > 0.0
            )
        finally:
            router.shutdown(drain=False)

    def test_readyz_publishes_the_replica_topology(self, sharded):
        router, client = sharded()
        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{router.port}/readyz", timeout=10
        ) as response:
            document = json.loads(response.read())
        assert [entry["name"] for entry in document["replicas"]] == [
            "replica-0",
            "replica-1",
        ]
        assert document["replicas"][0]["url"].startswith("http://127.0.0.1:")

    def test_drain_rejects_api_but_answers_health(self, sharded):
        router, client = sharded()
        router._draining.set()
        import urllib.error
        import urllib.request

        with urllib.request.urlopen(
            f"http://127.0.0.1:{router.port}/healthz", timeout=10
        ) as response:
            assert response.status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                urllib.request.Request(
                    f"http://127.0.0.1:{router.port}/v1/solve",
                    data=b'{"pstar": 2.0}',
                    headers={"Content-Type": "application/json"},
                ),
                timeout=10,
            )
        assert excinfo.value.code == 503
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "draining"
        assert body["error"]["retryable"] is True


def _solve_key(pstar: float) -> str:
    """The routing key of the client's ``solve(pstar=...)`` request."""
    body = json.dumps(
        {"kind": "solve", "pstar": pstar, "collateral": 0.0},
        separators=(",", ":"),
    ).encode("utf-8")
    return routing_key("POST", "/v1/solve", body)


def _claim_dead_port() -> int:
    """A loopback port that is bound to nothing (refuses connections)."""
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
