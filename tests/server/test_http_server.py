"""Route behaviour over real sockets: payloads, envelopes, statuses."""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

from repro.api import solve as solve_inprocess
from repro.service.api import SwapService
from repro.service.jsonl import serve_lines
from repro.service.keys import KEY_VERSION


def _post_raw(server, path, body: bytes, content_type="application/json"):
    """POST without the client's retries; (status, parsed-or-bytes)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=body, method="POST"
    )
    request.add_header("Content-Type", content_type)
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestSolveValidate:
    def test_solve_matches_in_process(self, make_server, make_client, params):
        server = make_server()
        eq = make_client(server).solve(pstar=2.0)
        reference = solve_inprocess(params, 2.0)
        assert eq == reference
        assert eq.success_rate == reference.success_rate

    def test_validate_roundtrip_seeded(self, make_server, make_client):
        server = make_server()
        outcome = make_client(server).validate(pstar=2.0, n_paths=2000, seed=7)
        assert outcome.seed_used == 7
        assert 0.0 <= outcome.empirical.success_rate <= 1.0

    def test_solve_response_shape(self, make_server):
        server = make_server()
        status, raw = _post_raw(server, "/v1/solve", b'{"pstar": 2.0}')
        assert status == 200
        body = json.loads(raw)
        assert body["ok"] is True
        assert body["kind"] == "solve"
        assert body["key"].startswith(f"v{KEY_VERSION}-")
        assert body["result"]["kind"] == "swap_equilibrium"

    def test_kind_mismatch_rejected(self, make_server):
        server = make_server()
        status, raw = _post_raw(
            server, "/v1/solve", b'{"kind": "validate", "pstar": 2.0}'
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "invalid_request"

    def test_invalid_pstar_envelope(self, make_server):
        server = make_server()
        status, raw = _post_raw(server, "/v1/solve", b'{"pstar": -1.0}')
        body = json.loads(raw)
        assert status == 400
        assert body["ok"] is False
        assert body["error"]["code"] == "invalid_request"
        assert body["error"]["retryable"] is False

    def test_unparseable_body(self, make_server):
        server = make_server()
        status, raw = _post_raw(server, "/v1/solve", b"not json")
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "parse_error"


class TestBatch:
    LINES = [
        '{"kind": "solve", "pstar": 2.0}',
        '{"kind": "solve", "pstar": 2.0}',
        '{"kind": "solve", "pstar": -3.0}',
        "junk line",
    ]

    def test_matches_cli_wire_format(self, make_server):
        server = make_server()
        status, raw = _post_raw(
            server,
            "/v1/batch",
            "\n".join(self.LINES).encode("utf-8"),
            content_type="application/x-ndjson",
        )
        assert status == 200
        records = [json.loads(line) for line in raw.decode().splitlines()]
        _ok, reference = serve_lines(SwapService(), self.LINES)
        # identical record structure to the CLI path (cached flags and
        # floats included: both sides dedupe and serialise identically)
        assert [r["ok"] for r in records] == [r["ok"] for r in reference]
        assert records[0]["key"] == records[1]["key"]
        assert records[0]["result"] == records[1]["result"]
        assert records[2]["error"]["code"] == "invalid_request"
        assert records[3]["error"]["code"] == "parse_error"
        assert records[0]["result"] == reference[0]["result"]

    def test_client_batch_helper(self, make_server, make_client):
        server = make_server()
        records = make_client(server).batch(
            [{"kind": "solve", "pstar": 2.0}, {"kind": "solve", "pstar": 1.8}]
        )
        assert [r["ok"] for r in records] == [True, True]
        assert records[0]["result"]["success_rate"] != records[1]["result"][
            "success_rate"
        ]


class TestSweep:
    def test_sweep_matches_service(self, make_server, make_client, params):
        server = make_server()
        points = make_client(server).sweep([1.8, 2.0, 2.2])
        reference = SwapService().sweep([1.8, 2.0, 2.2], params=params)
        assert [p["success_rate"] for p in points] == [
            item.unwrap().success_rate for item in reference
        ]

    def test_missing_pstars_rejected(self, make_server):
        server = make_server()
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/v1/sweep", timeout=10.0
            )
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert json.loads(exc.read())["error"]["code"] == "invalid_request"


class TestOperational:
    def test_health_ready_version(self, make_server, make_client):
        server = make_server()
        client = make_client(server)
        assert client.health() is True
        assert client.ready() is True
        version = client.version()
        assert version["key_version"] >= 1
        assert version["server"] == "repro-swaps"

    def test_metrics_exports_http_families(self, make_server, make_client):
        server = make_server()
        client = make_client(server)
        client.solve(pstar=2.0)
        text = client.metrics()
        assert (
            'repro_http_requests_total{method="POST",route="/v1/solve",status="200"}'
            in text
        )
        assert "repro_http_request_seconds_bucket" in text
        assert 'repro_http_rejected_total{reason="queue_full"}' in text

    def test_unknown_route_404(self, make_server):
        server = make_server()
        status, raw = _post_raw(server, "/v1/frobnicate", b"{}")
        assert status == 404
        assert json.loads(raw)["error"]["code"] == "not_found"

    def test_wrong_method_405(self, make_server):
        server = make_server()
        status, raw = _post_raw(server, "/healthz", b"{}")
        assert status == 405
        assert json.loads(raw)["error"]["code"] == "method_not_allowed"


class TestLimits:
    def test_oversized_body_413_without_reading(self, make_server):
        server = make_server(max_body_bytes=64)
        payload = b'{"pstar": 2.0, "pad": "' + b"x" * 4096 + b'"}'
        status, raw = _post_raw(server, "/v1/solve", payload)
        assert status == 413
        body = json.loads(raw)
        assert body["error"]["code"] == "body_too_large"
        assert body["error"]["retryable"] is False

    def test_missing_content_length_411(self, make_server):
        server = make_server()
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10.0)
        try:
            conn.putrequest("POST", "/v1/solve", skip_accept_encoding=True)
            conn.endheaders()  # no Content-Length on purpose
            response = conn.getresponse()
            assert response.status == 411
            assert json.loads(response.read())["error"]["code"] == (
                "length_required"
            )
        finally:
            conn.close()


class TestDeadline:
    def test_slow_request_504_retryable(self, make_server):
        from tests.server.conftest import GatedService

        service = GatedService()
        server = make_server(service=service, deadline=0.2)
        status, raw = _post_raw(server, "/v1/solve", b'{"pstar": 2.0}')
        body = json.loads(raw)
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert body["error"]["retryable"] is True
        service.release.set()  # let the abandoned worker finish
