"""Replica supervision: restart policy, flap parking, self-healing.

The policy half runs :class:`ReplicaSupervisor` against a fake clock
(backoff bands, deterministic jitter, the flap detector) with no
subprocesses. The integration half runs the real sharded tier with
owned replica subprocesses and pins the self-healing contract: a
``kill -9`` is detected, the replica is restarted with its announce
handshake replayed, and it rejoins the ring only after ``/readyz``
passes -- all while the survivor keeps answering. The
``replica_crash_loop`` chaos kind proves a replica that dies on every
boot ends up *parked*, not restarted forever.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.faults.injector import build_injector
from repro.server import RouterServer, ServerConfig
from repro.server.replica import ReplicaSupervisor
from tests.faults.conftest import counter_value, registry  # noqa: F401
from tests.server.conftest import request_in_thread


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_supervisor(clock, **kwargs) -> ReplicaSupervisor:
    kwargs.setdefault("backoff", 1.0)
    kwargs.setdefault("cap", 100.0)
    kwargs.setdefault("flap_limit", 10)
    kwargs.setdefault("flap_window", 1000.0)
    return ReplicaSupervisor(clock=clock, **kwargs)


class TestBackoffPolicy:
    def test_delays_grow_exponentially_in_jitter_bands(self):
        clock = FakeClock()
        sup = make_supervisor(clock)
        # jitter is [0.5, 1.0)x, so successive bands never overlap
        for low, high in ((0.5, 1.0), (1.0, 2.0), (2.0, 4.0)):
            delay = sup.note_failure("replica-0")
            assert low <= delay < high
            sup.note_restarted("replica-0")
            clock.advance(delay + 0.1)

    def test_backoff_is_capped(self):
        clock = FakeClock()
        sup = make_supervisor(clock, cap=2.0)
        for _ in range(6):
            delay = sup.note_failure("replica-0")
            sup.note_restarted("replica-0")
        assert delay <= 2.0

    def test_jitter_is_deterministic_per_replica_and_death(self):
        # a replayed chaos run must back off identically
        first = make_supervisor(FakeClock(), seed=7)
        second = make_supervisor(FakeClock(), seed=7)
        for _ in range(3):
            assert first.note_failure("replica-0") == second.note_failure(
                "replica-0"
            )
        # ... but different replicas do not respawn in lockstep
        third = make_supervisor(FakeClock(), seed=7)
        assert third.note_failure("replica-1") != first.backoff_of("replica-0")

    def test_pending_becomes_due_when_the_backoff_elapses(self):
        clock = FakeClock()
        sup = make_supervisor(clock)
        delay = sup.note_failure("replica-0")
        assert sup.pending("replica-0")
        assert not sup.due("replica-0")
        clock.advance(delay)
        assert sup.due("replica-0")
        sup.note_restarted("replica-0")
        assert not sup.pending("replica-0")
        assert sup.backoff_of("replica-0") == 0.0

    def test_unknown_replicas_are_quiet(self):
        sup = make_supervisor(FakeClock())
        assert not sup.pending("ghost")
        assert not sup.due("ghost")
        assert not sup.parked("ghost")

    def test_restart_without_a_replica_set_is_an_error(self):
        sup = make_supervisor(FakeClock())
        with pytest.raises(RuntimeError):
            sup.restart("replica-0")


class TestFlapDetector:
    def test_flap_limit_deaths_inside_the_window_parks(self):
        clock = FakeClock()
        sup = make_supervisor(clock, flap_limit=3, flap_window=60.0)
        assert sup.note_failure("replica-0") is not None
        assert sup.note_failure("replica-0") is not None
        assert sup.note_failure("replica-0") is None  # parked
        assert sup.parked("replica-0")
        assert not sup.pending("replica-0")  # no restart will fire

    def test_announce_then_die_loops_still_park(self):
        # note_restarted must NOT reset the death window: a binary that
        # boots, announces, then segfaults would otherwise loop forever
        clock = FakeClock()
        sup = make_supervisor(clock, flap_limit=3, flap_window=60.0)
        for expected_parked in (False, False, True):
            sup.note_failure("replica-0")
            sup.note_restarted("replica-0")
            assert sup.parked("replica-0") is expected_parked
            clock.advance(1.0)

    def test_slow_deaths_outside_the_window_never_park(self):
        clock = FakeClock()
        sup = make_supervisor(clock, flap_limit=3, flap_window=10.0)
        for _ in range(6):
            assert sup.note_failure("replica-0") is not None
            sup.note_restarted("replica-0")
            clock.advance(11.0)  # each death ages out before the next
        assert not sup.parked("replica-0")

    def test_unpark_forgives_the_flap_history(self):
        clock = FakeClock()
        sup = make_supervisor(clock, flap_limit=2, flap_window=60.0)
        sup.note_failure("replica-0")
        sup.note_failure("replica-0")
        assert sup.parked("replica-0")
        sup.unpark("replica-0")
        assert not sup.parked("replica-0")
        # the slate is clean: the next death schedules a first-death delay
        delay = sup.note_failure("replica-0")
        assert 0.5 <= delay < 1.0

    def test_forget_clears_every_trace(self):
        clock = FakeClock()
        sup = make_supervisor(clock, flap_limit=2, flap_window=60.0)
        sup.note_failure("replica-0")
        sup.note_failure("replica-0")
        sup.forget("replica-0")
        assert sup.state("replica-0") == {
            "deaths": 0,
            "backoff": 0.0,
            "pending": False,
            "parked": False,
        }

    def test_state_reports_the_operator_view(self):
        clock = FakeClock()
        sup = make_supervisor(clock)
        delay = sup.note_failure("replica-0")
        state = sup.state("replica-0")
        assert state["deaths"] == 1
        assert state["backoff"] == round(delay, 4)
        assert state["pending"] is True
        assert state["parked"] is False


def _owned_router(registry, **overrides) -> RouterServer:
    """A router that owns two real replica subprocesses."""
    overrides.setdefault("replicas", 2)
    overrides.setdefault("probe_interval", 0.1)
    overrides.setdefault("probe_failures", 2)
    overrides.setdefault("restart_backoff", 0.05)
    overrides.setdefault("restart_backoff_cap", 0.2)
    return RouterServer(ServerConfig(port=0, **overrides)).start()


def _wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(message)


@pytest.mark.slow
class TestSelfHealing:
    def test_kill9_restart_replays_announce_and_readmits(self, registry):
        """The full heal: probe eject -> supervised restart (fresh pid,
        fresh announce) -> /readyz-gated readmission to the ring."""
        router = _owned_router(registry)
        try:
            from repro.server.client import RetryPolicy, SwapClient

            client = SwapClient(
                f"http://127.0.0.1:{router.port}",
                retry=RetryPolicy(max_attempts=4, base_delay=0.05),
                timeout=30.0,
            )
            baseline = client.solve(pstar=2.0).success_rate
            victim = router._replica_set.process("replica-0")
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)

            # the survivor answers throughout the outage
            for _ in range(3):
                assert client.solve(pstar=2.0).success_rate == baseline

            def healed() -> bool:
                fresh = router._replica_set.process("replica-0")
                return (
                    fresh.alive
                    and fresh.pid != old_pid
                    and "replica-0" in router.ring.nodes
                )

            _wait_for(healed, 10.0, "replica-0 was never restored")
            assert (
                counter_value(
                    registry,
                    "repro_supervisor_restarts_total",
                    replica="replica-0",
                )
                == 1.0
            )
            # the ordering left its trail: the probe ejected the dead
            # replica before the supervisor readmitted the fresh one
            assert (
                counter_value(
                    registry,
                    "repro_router_probe_total",
                    replica="replica-0",
                    outcome="eject",
                )
                >= 1.0
            )
            assert (
                counter_value(
                    registry,
                    "repro_router_probe_total",
                    replica="replica-0",
                    outcome="readmit",
                )
                >= 1.0
            )
            # the healed replica serves its keyslice again
            assert client.solve(pstar=2.0).success_rate == baseline
        finally:
            router.shutdown(drain=False)

    def test_crash_loop_parks_instead_of_restarting_forever(self, registry):
        """``replica_crash_loop``: every supervised respawn is killed
        before it can announce; the flap detector must park."""
        router = _owned_router(registry, flap_limit=2, flap_window=60.0)
        try:
            plan = InjectionPlan(
                faults=(FaultSpec(kind="replica_crash_loop", count=4),),
                seed=3,
            )
            router._supervisor._faults = build_injector(plan)
            victim = router._replica_set.process("replica-1")
            os.kill(victim.pid, signal.SIGKILL)

            _wait_for(
                lambda: router._supervisor.parked("replica-1"),
                15.0,
                "crash-looping replica was never parked",
            )
            assert (
                counter_value(
                    registry,
                    "repro_supervisor_restart_failures_total",
                    replica="replica-1",
                )
                >= 1.0
            )
            assert "replica-1" not in router.ring.nodes
            # parked means *stopped restarting*, not broken service:
            from repro.server.client import RetryPolicy, SwapClient

            client = SwapClient(
                f"http://127.0.0.1:{router.port}",
                retry=RetryPolicy(max_attempts=4, base_delay=0.05),
                timeout=30.0,
            )
            assert client.solve(pstar=2.0).success_rate is not None
        finally:
            router.shutdown(drain=False)

    def test_sigterm_drain_races_a_live_reshard(self, registry):
        """A drain shutdown issued while an admin remove is mid-flight:
        both must complete -- no deadlock, no crash."""
        router = _owned_router(registry, admin_token="race", drain_timeout=2.0)
        try:
            from repro.server.client import ClientError, RetryPolicy, SwapClient

            client = SwapClient(
                f"http://127.0.0.1:{router.port}",
                retry=RetryPolicy(max_attempts=1, base_delay=0.01),
                timeout=10.0,
                admin_token="race",
            )
            assert client.solve(pstar=2.0).success_rate is not None
            remover = request_in_thread(
                lambda: client.admin_remove("replica-1")
            )
            time.sleep(0.05)  # let the remove enter its drain
            started = time.monotonic()
            router.shutdown(drain=True)
            assert time.monotonic() - started < 30.0  # no deadlock
            remover.join(timeout=20.0)
            assert not remover.is_alive(), "admin remove hung over the drain"
            # the remove either finished before the drain won the race
            # or was cut off by it -- a typed client error, never a hang
            if remover.error is not None:
                assert isinstance(remover.error, ClientError)
            else:
                assert remover.value.get("ok") is True
        finally:
            router.shutdown(drain=False)
