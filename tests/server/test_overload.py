"""The cost-aware admission gate and its overload behaviour.

Unit tests drive :class:`CostAwareGate` with a fake clock (weights,
CoDel-style shedding, deadline fast-reject); the integration test runs
a real threaded server at 2x its capacity and pins the PR's overload
contract: admitted requests keep their p99 under the deadline, excess
load is shed as fast retryable 429s, and **no request ever sees a
504** -- the gate sheds before deadlines blow, not after.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server.overload import ROUTE_WEIGHTS, CostAwareGate, route_weight
from repro.service.api import SwapService
from tests.faults.conftest import counter_value, registry  # noqa: F401
from tests.server.conftest import make_client, make_server  # noqa: F401


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRouteWeights:
    def test_swap_graph_costs_most(self):
        assert ROUTE_WEIGHTS["/v1/swap-graph"] > ROUTE_WEIGHTS["/v1/validate"]
        assert ROUTE_WEIGHTS["/v1/validate"] > ROUTE_WEIGHTS["/v1/solve"]

    def test_unknown_routes_cost_one_solve_unit(self):
        assert route_weight("/nowhere") == 1.0

    def test_surface_sweeps_are_nearly_free(self):
        plain = route_weight("/v1/sweep", "/v1/sweep?pstars=2.0")
        surfaced = route_weight(
            "/v1/sweep", "/v1/sweep?pstars=2.0&tolerance=1e-3"
        )
        assert surfaced < plain == ROUTE_WEIGHTS["/v1/sweep"]


class TestCostAdmission:
    def test_capacity_is_solve_units_not_request_count(self):
        gate = CostAwareGate(4)
        # one validate (weight 4) fills the same capacity 4 solves would
        assert gate.admit("/v1/validate") is None
        assert gate.admit("/v1/solve") == "queue_full"
        gate.leave(route_weight("/v1/validate"))
        for _ in range(4):
            assert gate.admit("/v1/solve") is None
        assert gate.admit("/v1/solve") == "queue_full"

    def test_oversized_request_admitted_when_gate_is_empty(self):
        # a lone swap-graph (weight 8 > depth 4) must never be unservable
        gate = CostAwareGate(4)
        assert gate.admit("/v1/swap-graph") is None
        assert gate.admit("/v1/solve") == "queue_full"

    def test_try_enter_keeps_the_static_gate_contract(self):
        gate = CostAwareGate(2)
        assert gate.try_enter()
        assert gate.try_enter()
        assert not gate.try_enter()
        gate.leave()
        assert gate.try_enter()

    def test_leave_drains_to_idle_for_shutdown(self):
        gate = CostAwareGate(4)
        gate.admit("/v1/validate")
        assert not gate.wait_idle(timeout=0.0)
        gate.leave(route_weight("/v1/validate"))
        assert gate.wait_idle(timeout=0.0)
        assert gate.inflight_cost == 0.0


class TestDeadlineFastReject:
    def test_burnt_budget_is_rejected_immediately(self):
        gate = CostAwareGate(4)
        assert gate.admit("/v1/solve", budget=0.0) == "deadline"

    def test_cold_gate_never_guesses(self):
        gate = CostAwareGate(4)
        # no latency history yet: a tiny (positive) budget is admitted
        assert gate.admit("/v1/solve", budget=1e-6) is None

    def test_doomed_budget_rejected_after_warmup(self):
        gate = CostAwareGate(16, warmup=4)
        for _ in range(4):
            gate.observe("/v1/solve", 0.2)
        assert gate.admit("/v1/solve", budget=0.01) == "deadline"
        # a budget comfortably above the observed latency still passes
        assert gate.admit("/v1/solve", budget=1.0) is None

    def test_routes_keep_separate_latency_histories(self):
        gate = CostAwareGate(16, warmup=2)
        for _ in range(4):
            gate.observe("/v1/swap-graph", 2.0)
        # the slow route's history must not doom the fast route
        assert gate.admit("/v1/solve", budget=0.05) is None
        assert gate.admit("/v1/swap-graph", budget=0.05) == "deadline"


class TestCoDelShedding:
    def _hot_gate(self, clock) -> CostAwareGate:
        gate = CostAwareGate(8, target=0.05, hold=0.25, clock=clock)
        for _ in range(32):
            gate.observe("/v1/solve", 0.2)  # p95 far above target
        return gate

    def test_sustained_high_p95_halves_capacity(self):
        clock = FakeClock()
        gate = self._hot_gate(clock)
        assert not gate.overloaded  # the hold hasn't elapsed yet
        clock.advance(0.3)
        gate.observe("/v1/solve", 0.2)
        assert gate.overloaded
        # effective capacity is now 4 solve-units: admit 4, shed the 5th
        for _ in range(4):
            assert gate.admit("/v1/solve") is None
        assert gate.admit("/v1/solve") == "overload"

    def test_one_slow_request_does_not_shed(self):
        clock = FakeClock()
        gate = CostAwareGate(8, target=0.05, hold=0.25, clock=clock)
        gate.observe("/v1/solve", 5.0)
        clock.advance(1.0)
        for _ in range(32):
            gate.observe("/v1/solve", 0.001)
        assert not gate.overloaded

    def test_recovery_restores_full_capacity(self):
        clock = FakeClock()
        gate = self._hot_gate(clock)
        clock.advance(0.3)
        gate.observe("/v1/solve", 0.2)
        assert gate.overloaded
        for _ in range(300):  # flush the window with fast samples
            gate.observe("/v1/solve", 0.001)
        assert not gate.overloaded
        for _ in range(8):
            assert gate.admit("/v1/solve") is None

    def test_snapshot_reports_operator_view(self):
        gate = CostAwareGate(8, target=0.05)
        gate.admit("/v1/validate")
        snap = gate.snapshot()
        assert snap["depth"] == 8
        assert snap["inflight"] == 1
        assert snap["cost"] == 4.0
        assert snap["target"] == 0.05
        assert snap["overloaded"] is False


class _FixedDelayService(SwapService):
    """Every batch costs a fixed wall-clock delay (plus a cached solve)."""

    def __init__(self, delay: float) -> None:
        super().__init__(max_workers=1)
        self.delay = delay

    def run_batch(self, requests):
        time.sleep(self.delay)
        return super().run_batch(requests)


@pytest.mark.slow
class TestOverloadAtTwiceCapacity:
    def test_sheds_fast_429s_never_504s(self, registry, make_server):
        """2x capacity: p99 of admitted requests stays under the
        deadline; the excess sheds as immediate retryable 429s."""
        delay = 0.06
        deadline = 1.0
        server = make_server(
            service=_FixedDelayService(delay),
            queue_depth=4,
            deadline=deadline,
            overload_target=delay / 2.0,  # the service can never meet it
        )
        base = f"http://127.0.0.1:{server.port}"
        body = json.dumps({"kind": "solve", "pstar": 2.0}).encode()
        urllib.request.urlopen(  # warm the solve cache: delay dominates
            urllib.request.Request(
                base + "/v1/solve",
                data=body,
                headers={"Content-Type": "application/json"},
            ),
            timeout=30,
        )

        statuses, ok_latencies, lock = [], [], threading.Lock()

        def worker() -> None:
            for _ in range(6):
                request = urllib.request.Request(
                    base + "/v1/solve",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                t0 = time.perf_counter()
                try:
                    with urllib.request.urlopen(request, timeout=30) as reply:
                        status = reply.status
                        reply.read()
                except urllib.error.HTTPError as exc:
                    status = exc.code
                    exc.read()
                elapsed = time.perf_counter() - t0
                with lock:
                    statuses.append(status)
                    if status == 200:
                        ok_latencies.append(elapsed)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # the whole contract: successes and fast sheds, nothing else
        assert set(statuses) <= {200, 429}, statuses
        assert statuses.count(200) > 0
        assert statuses.count(429) > 0  # 2x capacity really did shed
        ordered = sorted(ok_latencies)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        assert p99 < deadline
        rejected = "repro_http_rejected_total"
        assert counter_value(registry, rejected, reason="deadline") == 0.0
        total_shed = counter_value(
            registry, rejected, reason="queue_full"
        ) + counter_value(registry, rejected, reason="overload")
        assert total_shed == statuses.count(429)

    def test_mean_latency_stays_bounded_while_shedding(self):
        """CoDel's point: shedding keeps the *admitted* experience
        fast instead of letting queues smear everyone toward timeout."""
        clock = FakeClock()
        gate = CostAwareGate(4, target=0.05, hold=0.1, clock=clock)
        # three long-running requests pin the gate near capacity ...
        for _ in range(3):
            assert gate.admit("/v1/solve") is None
        admitted, shed = 0, 0
        for _ in range(40):
            outcome = gate.admit("/v1/solve")
            if outcome is None:
                gate.observe("/v1/solve", 0.2)  # ... and latency is awful
                gate.leave()
                admitted += 1
            else:
                shed += 1
            clock.advance(0.05)
        # the hold elapsed under sustained bad p95: the gate halved its
        # capacity and the pinned requests alone now exceed it
        assert gate.overloaded
        assert admitted > 0 and shed > 0

    def test_p95_tracks_the_sliding_window(self):
        gate = CostAwareGate(8)
        for value in (0.01, 0.02, 0.03, 0.5):
            for _ in range(8):
                gate.observe("/v1/solve", value)
        assert gate.p95 == pytest.approx(0.5)
        assert statistics.median([gate.p95]) > 0.0
