"""The surface tier over the wire: probes, sweeps, client helpers.

Real sockets like the rest of the server suite. The artifact is warmed
once per module (a tiny 1-D grid) and served by a ``SwapServer`` whose
config points at it -- the exact deployment shape of
``repro-swaps serve --surface``.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core.parameters import SwapParameters
from repro.service.keys import KEY_VERSION
from repro.surface import AxisSpec, SurfaceSpec, warm_surface


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    spec = SurfaceSpec(
        axes=(AxisSpec("pstar", 1.6, 2.4, 17),),
        params=SwapParameters.default(),
        default_tolerance=1e-2,
    )
    path = tmp_path_factory.mktemp("http-surface") / "line.srf"
    warm_surface(spec, path)
    return str(path)


@pytest.fixture()
def surface_server(make_server, artifact_path):
    return make_server(surface=artifact_path, tolerance=1e-2)


def get_json(server, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=10.0
    ) as response:
        return json.loads(response.read().decode("utf-8"))


class TestProbes:
    def test_readyz_reports_the_artifact(self, surface_server, artifact_path):
        body = get_json(surface_server, "/readyz")
        assert body["status"] == "ready"
        surface = body["surface"]
        assert surface["path"] == artifact_path
        assert surface["axes"][0]["name"] == "pstar"
        assert len(surface["checksum"]) == 64

    def test_version_reports_surface_and_key_schema(self, surface_server):
        body = get_json(surface_server, "/version")
        assert body["key_version"] == KEY_VERSION
        assert body["surface"]["key_version"] == KEY_VERSION
        assert body["surface"]["points"] == 17

    def test_surfaceless_server_reports_null(self, make_server):
        server = make_server()
        assert get_json(server, "/readyz")["surface"] is None
        assert get_json(server, "/version")["surface"] is None


class TestSweepOverTheWire:
    def test_tolerance_param_routes_to_the_surface(self, surface_server):
        body = get_json(
            surface_server, "/v1/sweep?pstars=1.8,2.0&tolerance=1e-2"
        )
        assert body["ok"] and body["count"] == 2
        for point in body["results"]:
            assert point["source"] == "surface"
            assert 0.0 < point["bound"] <= 1e-2
            assert 0.0 <= point["success_rate"] <= 1.0

    def test_off_surface_points_fall_through_exactly(self, surface_server):
        body = get_json(
            surface_server, "/v1/sweep?pstars=3.5&tolerance=1e-2"
        )
        point = body["results"][0]
        assert point["source"] == "engine"
        assert "bound" not in point  # exact answers carry no bound

    def test_no_tolerance_means_exact_despite_config_default(self, make_server, artifact_path):
        # config surface_tolerance applies; the default config (None)
        # keeps tolerance-less sweeps exact even with a surface loaded
        server = make_server(surface=artifact_path)
        point = get_json(server, "/v1/sweep?pstars=2.0")["results"][0]
        assert point["source"] == "engine"

    def test_config_tolerance_is_the_default_grant(self, surface_server):
        point = get_json(surface_server, "/v1/sweep?pstars=2.0")["results"][0]
        assert point["source"] == "surface"

    def test_explicit_zero_tolerance_overrides_config(self, surface_server):
        point = get_json(
            surface_server, "/v1/sweep?pstars=2.0&tolerance=0"
        )["results"][0]
        assert point["source"] == "engine"

    def test_surface_metrics_visible_on_metrics_endpoint(self, surface_server):
        get_json(surface_server, "/v1/sweep?pstars=2.0&tolerance=1e-2")
        url = f"http://127.0.0.1:{surface_server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            text = response.read().decode("utf-8")
        assert "repro_surface_hits_total" in text
        assert 'repro_surface_loads_total{outcome="ok"}' in text


class TestClientHelpers:
    def test_sweep_passes_tolerance(self, surface_server, make_client):
        client = make_client(surface_server)
        points = client.sweep([1.8, 2.0], tolerance=1e-2)
        assert [p["source"] for p in points] == ["surface", "surface"]

    def test_server_info_summarises_version_document(
        self, surface_server, make_client
    ):
        info = make_client(surface_server).server_info()
        assert info["server"] == "repro-swaps"
        assert info["key_version"] == KEY_VERSION
        assert info["surface"]["points"] == 17

    def test_server_info_without_surface(self, make_server, make_client):
        info = make_client(make_server()).server_info()
        assert info["surface"] is None
