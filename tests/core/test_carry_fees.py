"""Tests for the carry (staking-yield) and transaction-fee extensions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_induction import BackwardInduction
from repro.core.carry import CarryBackwardInduction
from repro.core.fees import FeeBackwardInduction
from repro.core.parameters import SwapParameters


class TestCarryReduction:
    """Zero yields reproduce the basic model exactly."""

    @pytest.fixture(scope="class")
    def pair(self):
        params = SwapParameters.default()
        return BackwardInduction(params, 2.0), CarryBackwardInduction(params, 2.0)

    def test_threshold(self, pair):
        base, carry = pair
        assert carry.p3_threshold() == pytest.approx(base.p3_threshold(), rel=1e-12)

    def test_t2_utilities(self, pair):
        base, carry = pair
        grid = np.linspace(0.5, 4.0, 11)
        assert np.allclose(carry.alice_t2_cont(grid), base.alice_t2_cont(grid))
        assert np.allclose(carry.bob_t2_cont(grid), base.bob_t2_cont(grid))
        assert np.allclose(carry.bob_t2_stop(grid), base.bob_t2_stop(grid))

    def test_t1_and_sr(self, pair):
        base, carry = pair
        assert carry.alice_t1_cont() == pytest.approx(base.alice_t1_cont())
        assert carry.bob_t1_cont() == pytest.approx(base.bob_t1_cont())
        assert carry.success_rate() == pytest.approx(base.success_rate())


class TestCarryEconomics:
    def test_token_b_yield_narrows_bob_region(self, params):
        """Staking Token_b competes with swapping it away."""
        plain = CarryBackwardInduction(params, 2.0).bob_t2_region().total_length()
        yielding = (
            CarryBackwardInduction(params, 2.0, yield_b=0.004)
            .bob_t2_region()
            .total_length()
        )
        assert yielding < plain

    def test_token_b_yield_lowers_sr(self, params):
        rates = [
            CarryBackwardInduction(params, 2.0, yield_b=q).success_rate()
            for q in (0.0, 0.002, 0.005)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_token_a_yield_raises_sr(self, params):
        rates = [
            CarryBackwardInduction(params, 2.0, yield_a=q).success_rate()
            for q in (0.0, 0.002, 0.005)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_token_b_yield_lowers_alice_threshold(self, params):
        """Early receipt of Token_b earns more staking time."""
        plain = CarryBackwardInduction(params, 2.0).p3_threshold()
        yielding = CarryBackwardInduction(params, 2.0, yield_b=0.005).p3_threshold()
        assert yielding < plain

    def test_stop_values_include_full_carry(self, params):
        import math

        model = CarryBackwardInduction(params, 2.0, yield_a=0.003, yield_b=0.001)
        t_end = max(params.grid.t7, params.grid.t8)
        assert model.alice_t1_stop() == pytest.approx(2.0 * math.exp(0.003 * t_end))
        assert model.bob_t1_stop() == pytest.approx(
            params.p0 * math.exp(0.001 * t_end)
        )

    def test_rejects_nonfinite_yields(self, params):
        with pytest.raises(ValueError):
            CarryBackwardInduction(params, 2.0, yield_a=float("nan"))


class TestFeeReduction:
    """Zero fees reproduce the basic model exactly."""

    @pytest.fixture(scope="class")
    def pair(self):
        params = SwapParameters.default()
        return BackwardInduction(params, 2.0), FeeBackwardInduction(params, 2.0)

    def test_threshold(self, pair):
        base, fee = pair
        assert fee.p3_threshold() == pytest.approx(base.p3_threshold(), rel=1e-12)

    def test_t2_utilities(self, pair):
        base, fee = pair
        grid = np.linspace(0.5, 4.0, 11)
        assert np.allclose(fee.alice_t2_cont(grid), base.alice_t2_cont(grid))
        assert np.allclose(fee.bob_t2_cont(grid), base.bob_t2_cont(grid))

    def test_t1_and_sr(self, pair):
        base, fee = pair
        assert fee.alice_t1_cont() == pytest.approx(base.alice_t1_cont())
        assert fee.success_rate() == pytest.approx(base.success_rate())


class TestFeeEconomics:
    def test_fees_lower_sr(self, params):
        rates = [
            FeeBackwardInduction(params, 2.0, fee_a=f, fee_b=f / 4).success_rate()
            for f in (0.0, 0.02, 0.08)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_fees_shrink_bob_region(self, params):
        plain = FeeBackwardInduction(params, 2.0).bob_t2_region().total_length()
        taxed = (
            FeeBackwardInduction(params, 2.0, fee_a=0.05, fee_b=0.02)
            .bob_t2_region()
            .total_length()
        )
        assert taxed < plain

    def test_large_fees_block_initiation(self, params):
        model = FeeBackwardInduction(params, 2.0, fee_a=0.15, fee_b=0.05)
        assert model.alice_t1_cont() < model.alice_t1_stop()

    def test_fee_validation(self, params):
        with pytest.raises(ValueError, match="non-negative"):
            FeeBackwardInduction(params, 2.0, fee_a=-0.1)
        with pytest.raises(ValueError, match="notional"):
            FeeBackwardInduction(params, 2.0, fee_a=2.5)
        with pytest.raises(ValueError, match="notional"):
            FeeBackwardInduction(params, 2.0, fee_b=1.0)

    def test_claim_fee_shifts_threshold(self, params):
        """A Chain_b claim fee makes revealing less attractive."""
        base = FeeBackwardInduction(params, 2.0).p3_threshold()
        taxed = FeeBackwardInduction(params, 2.0, fee_b=0.05).p3_threshold()
        assert taxed > base

    def test_refund_fee_lowers_threshold(self, params):
        """A Chain_a refund fee makes waiving less attractive."""
        base = FeeBackwardInduction(params, 2.0).p3_threshold()
        taxed = FeeBackwardInduction(params, 2.0, fee_a=0.1).p3_threshold()
        assert taxed < base


class TestFeesVsCollateral:
    def test_fees_hurt_collateral_helps(self, params):
        """Fees tax continuation; collateral taxes defection."""
        from repro.core.collateral import collateral_success_rate

        base = BackwardInduction(params, 2.0).success_rate()
        with_fees = FeeBackwardInduction(
            params, 2.0, fee_a=0.05, fee_b=0.02
        ).success_rate()
        with_collateral = collateral_success_rate(params, 2.0, 0.05)
        assert with_fees < base < with_collateral


@settings(max_examples=10, deadline=None)
@given(
    fee_a=st.floats(min_value=0.0, max_value=0.3),
    fee_b=st.floats(min_value=0.0, max_value=0.3),
)
def test_property_fees_never_raise_sr(fee_a, fee_b):
    params = SwapParameters.default()
    base = BackwardInduction(params, 2.0).success_rate()
    taxed = FeeBackwardInduction(params, 2.0, fee_a=fee_a, fee_b=fee_b).success_rate()
    assert taxed <= base + 1e-9
