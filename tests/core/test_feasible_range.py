"""Tests for the feasible ranges (Eqs. (24), (29)-(30))."""

from __future__ import annotations

import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.feasible_range import (
    alice_t1_advantage,
    bob_t1_advantage,
    bob_t2_range,
    feasible_pstar_range,
    feasible_pstar_region,
)


class TestBobT2Range:
    def test_matches_solver_region(self, params):
        assert bob_t2_range(params, 2.0) == pytest.approx(
            BackwardInduction(params, 2.0).bob_t2_region().bounds()
        )

    def test_none_when_degenerate(self, params):
        assert bob_t2_range(params.replace(alpha_a=0.0, alpha_b=0.0), 2.0) is None


class TestEquation29:
    """The paper's headline numeric result: P* feasible in (1.5, 2.5)."""

    def test_lower_bound_matches_paper(self, params):
        bounds = feasible_pstar_range(params)
        assert bounds is not None
        # paper reports 1.5 (2 significant figures)
        assert bounds[0] == pytest.approx(1.5, abs=0.05)

    def test_upper_bound_matches_paper(self, params):
        bounds = feasible_pstar_range(params)
        assert bounds is not None
        assert bounds[1] == pytest.approx(2.5, abs=0.05)

    def test_spot_price_inside_range(self, params):
        bounds = feasible_pstar_range(params)
        assert bounds[0] < params.p0 <= bounds[1]

    def test_advantage_sign_flips_at_bounds(self, params):
        lo, hi = feasible_pstar_range(params)
        assert alice_t1_advantage(params, lo * 0.98) < 0.0
        assert alice_t1_advantage(params, (lo + hi) / 2.0) > 0.0
        assert alice_t1_advantage(params, hi * 1.02) < 0.0


class TestComparativeStatics:
    """Section III-F's statements about the viable range of P*."""

    def test_higher_alpha_widens_range(self, params):
        lo1, hi1 = feasible_pstar_range(params.replace(alpha_a=0.25, alpha_b=0.25))
        lo2, hi2 = feasible_pstar_range(params.replace(alpha_a=0.5, alpha_b=0.5))
        assert (hi2 - lo2) > (hi1 - lo1)

    def test_tiny_alpha_kills_range(self, params):
        # "when alpha is too small ... the swap would never be initiated"
        assert feasible_pstar_range(params.replace(alpha_a=0.2, alpha_b=0.2)) is None

    def test_long_confirmation_kills_range(self, params):
        assert feasible_pstar_range(params.replace(tau_a=6.0)) is None

    def test_higher_r_narrows_range(self, params):
        lo1, hi1 = feasible_pstar_range(params)
        bounds = feasible_pstar_range(params.replace(r_a=0.015, r_b=0.015))
        assert bounds is not None
        lo2, hi2 = bounds
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_huge_r_kills_range(self, params):
        # "when r is too high, no feasible value for P* can be found"
        assert feasible_pstar_range(params.replace(r_a=0.02, r_b=0.02)) is None

    def test_longer_confirmation_narrows_range(self, params):
        lo1, hi1 = feasible_pstar_range(params)
        lo2, hi2 = feasible_pstar_range(params.replace(tau_a=5.0))
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_high_volatility_kills_range(self, params):
        assert feasible_pstar_range(params.replace(sigma=0.25)) is None


class TestJointRegion:
    def test_bob_also_has_a_region(self, params):
        ranges = feasible_pstar_region(params)
        assert not ranges.bob.is_empty

    def test_joint_is_intersection(self, params):
        ranges = feasible_pstar_region(params)
        joint = ranges.joint
        assert joint.total_length() <= ranges.alice.total_length() + 1e-12
        assert joint.total_length() <= ranges.bob.total_length() + 1e-12

    def test_reference_rate_in_joint_region(self, params):
        assert 2.0 in feasible_pstar_region(params).joint

    def test_bob_advantage_positive_at_reference(self, params):
        assert bob_t1_advantage(params, 2.0) > 0.0

    def test_alice_bounds_helper(self, params):
        ranges = feasible_pstar_region(params)
        assert ranges.alice_bounds() == pytest.approx(feasible_pstar_range(params))
