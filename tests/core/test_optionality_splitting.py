"""Tests for the option-value decomposition and the exit planner."""

from __future__ import annotations

import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.optionality import (
    CommittedAliceSolver,
    CommittedBobSolver,
    optionality_report,
)
from repro.core.splitting import plan_full_exit


class TestCommittedSolvers:
    def test_committed_alice_threshold_zero(self, params):
        assert CommittedAliceSolver(params, 2.0).p3_threshold() == 0.0

    def test_committed_alice_sr_is_region_mass(self, params):
        solver = CommittedAliceSolver(params, 2.0)
        law = params.process.law(params.p0, params.tau_a)
        assert solver.success_rate() == pytest.approx(
            solver.bob_t2_region().probability(law)
        )

    def test_committed_bob_region_everything(self, params):
        region = CommittedBobSolver(params, 2.0).bob_t2_region()
        assert 0.001 in region
        assert 1e5 in region

    def test_committed_bob_sr_is_reveal_probability(self, params):
        solver = CommittedBobSolver(params, 2.0)
        base = BackwardInduction(params, 2.0)
        # SR = P(P_t3 > threshold) unconditionally
        law2 = params.process.law(params.p0, params.tau_a)
        del law2
        assert solver.success_rate() > base.success_rate()


class TestOptionalityReport:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.core.parameters import SwapParameters

        return optionality_report(SwapParameters.default(), 2.0)

    def test_equilibrium_values_match_base(self, report, params):
        base = BackwardInduction(params, 2.0)
        assert report.alice_equilibrium == pytest.approx(base.alice_t1_cont())
        assert report.bob_equilibrium == pytest.approx(base.bob_t1_cont())
        assert report.sr_equilibrium == pytest.approx(base.success_rate())

    def test_both_options_valuable_at_reference_rate(self, report):
        assert report.alice_option_value > 0.0
        assert report.bob_option_value > 0.0

    def test_options_hurt_the_counterparty(self, report):
        # each agent would pay to have the other commit
        assert report.alice_option_cost_to_bob > 0.0
        assert report.bob_option_cost_to_alice > 0.0

    def test_commitment_raises_sr(self, report):
        # removing either option removes a failure mode
        assert report.sr_committed_alice > report.sr_equilibrium
        assert report.sr_committed_bob > report.sr_equilibrium

    def test_option_owners_flip_with_pstar(self, params):
        """High P* favours Alice's option (she can waive an expensive
        promise); low P* favours Bob's (he can keep a rallying token)."""
        low = optionality_report(params, 1.7)
        high = optionality_report(params, 2.3)
        assert high.alice_option_value > low.alice_option_value
        assert low.bob_option_value > high.bob_option_value

    def test_describe(self, report):
        text = report.describe()
        assert "Alice option value" in text
        assert "SR" in text


class TestExitPlanner:
    def test_no_collateral_single_round(self, params):
        plan = plan_full_exit(params, 2.0, wealth=10.0, collateral_ratio=0.0)
        assert plan.n_rounds == 1
        assert plan.moved_fraction == pytest.approx(1.0)

    def test_rounds_grow_with_collateral_ratio(self, params):
        counts = [
            plan_full_exit(params, 2.0, 10.0, c).n_rounds for c in (0.25, 0.5, 1.0)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_geometric_remainder(self, params):
        plan = plan_full_exit(params, 2.0, wealth=8.0, collateral_ratio=1.0)
        # with ratio 1, each round moves half of the remainder
        assert plan.rounds[0].notional == pytest.approx(4.0)
        assert plan.rounds[0].remaining_after == pytest.approx(4.0)
        assert plan.rounds[1].notional == pytest.approx(2.0)

    def test_per_round_sr_scale_invariant(self, params):
        plan = plan_full_exit(params, 2.0, wealth=16.0, collateral_ratio=0.5)
        rates = [round_plan.success_rate for round_plan in plan.rounds]
        assert all(r == pytest.approx(rates[0]) for r in rates)

    def test_collateral_vs_rounds_tradeoff(self, params):
        """Heavier collateral: more rounds and time, better joint success."""
        light = plan_full_exit(params, 2.0, 10.0, 0.25)
        heavy = plan_full_exit(params, 2.0, 10.0, 1.0)
        assert heavy.total_time > light.total_time
        assert (
            heavy.all_rounds_succeed_probability
            > light.all_rounds_succeed_probability
        )

    def test_round_duration_matches_timeline(self, params):
        plan = plan_full_exit(params, 2.0, 10.0, 0.5)
        assert plan.round_duration == max(params.grid.t7, params.grid.t8)

    def test_target_fraction_respected(self, params):
        plan = plan_full_exit(
            params, 2.0, 10.0, 1.0, target_fraction=0.9
        )
        assert plan.moved_fraction >= 0.9

    def test_validation(self, params):
        with pytest.raises(ValueError):
            plan_full_exit(params, 2.0, wealth=0.0, collateral_ratio=0.5)
        with pytest.raises(ValueError):
            plan_full_exit(params, 2.0, wealth=1.0, collateral_ratio=-0.5)
        with pytest.raises(ValueError):
            plan_full_exit(params, 2.0, wealth=1.0, collateral_ratio=0.5,
                           target_fraction=1.5)

    def test_describe(self, params):
        assert "rounds" in plan_full_exit(params, 2.0, 10.0, 0.5).describe()
