"""Tests for the basic-game backward induction (Eqs. (14)-(31)).

The closed-form stage utilities are checked against the paper's
formulas term by term, against brute-force quadrature, and for the
comparative-statics directions Section III-E derives.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.stochastic.lognormal import LognormalLaw
from repro.stochastic.quadrature import expectation_above, expectation_below

PSTARS = st.floats(min_value=1.0, max_value=4.0)


class TestConstruction:
    def test_rejects_bad_pstar(self, params):
        with pytest.raises(ValueError, match="pstar"):
            BackwardInduction(params, pstar=0.0)


class TestStageT3:
    """Eqs. (14)-(19)."""

    def test_alice_cont_formula(self, params, solver):
        # Eq. (14): (1 + alpha) E(P, tau_b) e^{-r tau_b}
        p3 = 1.8
        expected = (
            1.3 * p3 * math.exp(0.002 * 4.0) * math.exp(-0.01 * 4.0)
        )
        assert solver.alice_t3_cont(p3) == pytest.approx(expected, rel=1e-12)

    def test_alice_cont_linear_in_price(self, solver):
        assert solver.alice_t3_cont(2.0) == pytest.approx(
            2.0 * solver.alice_t3_cont(1.0), rel=1e-12
        )

    def test_alice_stop_formula(self, params, solver):
        # Eq. (16): P* e^{-r (eps_b + 2 tau_a)}
        expected = 2.0 * math.exp(-0.01 * (1.0 + 6.0))
        assert solver.alice_t3_stop() == pytest.approx(expected, rel=1e-12)

    def test_bob_cont_formula(self, params, solver):
        # Eq. (15): (1 + alpha) P* e^{-r (eps_b + tau_a)}
        expected = 1.3 * 2.0 * math.exp(-0.01 * 4.0)
        assert solver.bob_t3_cont() == pytest.approx(expected, rel=1e-12)

    def test_bob_stop_formula(self, params, solver):
        # Eq. (17): E(P, 2 tau_b) e^{-2 r tau_b}
        p3 = 2.2
        expected = p3 * math.exp(2 * 0.002 * 4.0) * math.exp(-2 * 0.01 * 4.0)
        assert solver.bob_t3_stop(p3) == pytest.approx(expected, rel=1e-12)

    def test_threshold_eq18(self, params, solver):
        # Eq. (18) evaluated explicitly
        expected = (
            math.exp((0.01 - 0.002) * 4.0 - 0.01 * (1.0 + 6.0)) * 2.0 / 1.3
        )
        assert solver.p3_threshold() == pytest.approx(expected, rel=1e-12)

    def test_threshold_equates_utilities(self, solver):
        k = solver.p3_threshold()
        assert solver.alice_t3_cont(k) == pytest.approx(
            solver.alice_t3_stop(), rel=1e-12
        )

    def test_threshold_increases_with_pstar(self, params):
        # stated under Eq. (18): "P3 increases with P*"
        thresholds = [
            BackwardInduction(params, k).p3_threshold() for k in (1.5, 2.0, 2.5)
        ]
        assert thresholds[0] < thresholds[1] < thresholds[2]

    def test_threshold_decreases_with_alpha(self, params):
        base = BackwardInduction(params, 2.0).p3_threshold()
        generous = BackwardInduction(
            params.replace(alpha_a=0.6), 2.0
        ).p3_threshold()
        assert generous < base

    def test_alice_value_is_max(self, solver):
        for p3 in (0.5, solver.p3_threshold(), 3.0):
            assert solver.alice_t3_value(p3) == pytest.approx(
                max(float(solver.alice_t3_cont(p3)), solver.alice_t3_stop())
            )

    def test_bob_value_follows_alice_policy(self, solver):
        thr = solver.p3_threshold()
        assert solver.bob_t3_value(thr * 1.01) == pytest.approx(solver.bob_t3_cont())
        assert solver.bob_t3_value(thr * 0.99) == pytest.approx(
            float(solver.bob_t3_stop(thr * 0.99))
        )


class TestStageT2:
    """Eqs. (20)-(24)."""

    def test_alice_cont_matches_quadrature(self, params, solver):
        # brute-force Eq. (20) with generic quadrature
        p2 = 2.1
        law = LognormalLaw(spot=p2, mu=params.mu, sigma=params.sigma, tau=params.tau_b)
        thr = solver.p3_threshold()
        upper = expectation_above(law, lambda x: solver.alice_t3_cont(x), thr)
        lower = float(law.cdf(thr)) * solver.alice_t3_stop()
        expected = (upper + lower) * math.exp(-params.alice.r * params.tau_b)
        assert float(solver.alice_t2_cont(p2)) == pytest.approx(expected, rel=1e-9)

    def test_bob_cont_matches_quadrature(self, params, solver):
        p2 = 1.7
        law = LognormalLaw(spot=p2, mu=params.mu, sigma=params.sigma, tau=params.tau_b)
        thr = solver.p3_threshold()
        upper = float(law.survival(thr)) * solver.bob_t3_cont()
        lower = expectation_below(law, lambda x: solver.bob_t3_stop(x), thr)
        expected = (upper + lower) * math.exp(-params.bob.r * params.tau_b)
        assert float(solver.bob_t2_cont(p2)) == pytest.approx(expected, rel=1e-9)

    def test_alice_stop_formula(self, params, solver):
        # Eq. (22)
        expected = 2.0 * math.exp(-0.01 * (4.0 + 1.0 + 6.0))
        assert solver.alice_t2_stop() == pytest.approx(expected, rel=1e-12)

    def test_bob_stop_is_price(self, solver):
        assert solver.bob_t2_stop(1.234) == 1.234

    def test_region_is_single_interval(self, solver):
        region = solver.bob_t2_region()
        assert len(region) == 1

    def test_region_brackets_equilibrium_price(self, solver):
        lo, hi = solver.bob_t2_region().bounds()
        assert lo < 2.0 < hi

    def test_region_boundary_is_indifference(self, solver):
        lo, hi = solver.bob_t2_region().bounds()
        assert float(solver.bob_t2_advantage(lo)) == pytest.approx(0.0, abs=1e-8)
        assert float(solver.bob_t2_advantage(hi)) == pytest.approx(0.0, abs=1e-8)

    def test_region_cached(self, solver):
        assert solver.bob_t2_region() is solver.bob_t2_region()

    def test_region_widens_with_alpha_b(self, params):
        # Section III-E3: "the lower alpha_B, the narrower the feasible range"
        narrow = BackwardInduction(params.replace(alpha_b=0.15), 2.0).bob_t2_region()
        wide = BackwardInduction(params.replace(alpha_b=0.45), 2.0).bob_t2_region()
        assert wide.total_length() > narrow.total_length()

    def test_region_empty_for_tiny_alpha_b(self, params):
        # "when alpha_B is sufficiently small ... the swap always fails"
        region = BackwardInduction(
            params.replace(alpha_b=0.0, alpha_a=0.0), 2.0
        ).bob_t2_region()
        assert region.is_empty

    def test_region_shifts_up_with_pstar(self, params):
        # Figure 4: "this range expands and shifts to the higher end with larger P*"
        low = BackwardInduction(params, 1.6).bob_t2_region().bounds()
        high = BackwardInduction(params, 2.4).bob_t2_region().bounds()
        assert high[0] > low[0]
        assert high[1] > low[1]


class TestStageT1:
    """Eqs. (25)-(30)."""

    def test_alice_stop_is_pstar(self, solver):
        assert solver.alice_t1_stop() == 2.0

    def test_bob_stop_is_spot(self, params, solver):
        assert solver.bob_t1_stop() == params.p0

    def test_alice_cont_between_bounds(self, solver):
        # expected discounted value must lie between the worst and best branch
        cont = solver.alice_t1_cont()
        assert 0.0 < cont
        # at P*=2 (inside the feasible range) Alice strictly prefers cont
        assert cont > solver.alice_t1_stop()

    def test_alice_initiates_at_reference_rate(self, solver):
        assert solver.alice_initiates()

    def test_alice_declines_extreme_rates(self, params):
        assert not BackwardInduction(params, 1.2).alice_initiates()
        assert not BackwardInduction(params, 3.5).alice_initiates()

    def test_bob_agrees_at_reference_rate(self, solver):
        assert solver.bob_would_agree()

    def test_alice_cont_matches_quadrature(self, params, solver):
        # brute-force Eq. (25)
        law = LognormalLaw(
            spot=params.p0, mu=params.mu, sigma=params.sigma, tau=params.tau_a
        )
        lo, hi = solver.bob_t2_region().bounds()
        from repro.stochastic.quadrature import expectation_on_interval

        inside = expectation_on_interval(
            law, lambda x: solver.alice_t2_cont(x), lo, hi
        )
        outside = (1.0 - law.probability_between(lo, hi)) * solver.alice_t2_stop()
        expected = (inside + outside) * math.exp(-params.alice.r * params.tau_a)
        assert solver.alice_t1_cont() == pytest.approx(expected, rel=1e-9)

    def test_bob_cont_matches_quadrature(self, params, solver):
        # brute-force Eq. (26): stop branches integrate the identity payoff
        law = LognormalLaw(
            spot=params.p0, mu=params.mu, sigma=params.sigma, tau=params.tau_a
        )
        lo, hi = solver.bob_t2_region().bounds()
        from repro.stochastic.quadrature import (
            expectation_above,
            expectation_below,
            expectation_on_interval,
        )

        inside = expectation_on_interval(law, lambda x: solver.bob_t2_cont(x), lo, hi)
        below = expectation_below(law, lambda x: x, lo)
        above = expectation_above(law, lambda x: x, hi)
        expected = (inside + below + above) * math.exp(-params.bob.r * params.tau_a)
        assert solver.bob_t1_cont() == pytest.approx(expected, rel=1e-9)


class TestSuccessRate:
    """Eq. (31)."""

    def test_probability_bounds(self, solver):
        assert 0.0 <= solver.success_rate() <= 1.0

    def test_zero_when_region_empty(self, params):
        solver = BackwardInduction(params.replace(alpha_a=0.0, alpha_b=0.0), 2.0)
        assert solver.success_rate() == 0.0

    def test_matches_direct_double_integral(self, params, solver):
        # brute-force Eq. (31) with nested generic quadrature
        law = LognormalLaw(
            spot=params.p0, mu=params.mu, sigma=params.sigma, tau=params.tau_a
        )
        lo, hi = solver.bob_t2_region().bounds()
        thr = solver.p3_threshold()
        from repro.stochastic.quadrature import expectation_on_interval

        def alice_survives(x: np.ndarray) -> np.ndarray:
            out = []
            for spot in np.atleast_1d(x):
                inner = LognormalLaw(
                    spot=float(spot), mu=params.mu, sigma=params.sigma,
                    tau=params.tau_b,
                )
                out.append(float(inner.survival(thr)))
            return np.asarray(out)

        expected = expectation_on_interval(law, alice_survives, lo, hi)
        assert solver.success_rate() == pytest.approx(expected, rel=1e-9)

    def test_dominated_by_region_mass(self, params, solver):
        # SR can never exceed P(P_t2 in Bob's region)
        law = LognormalLaw(
            spot=params.p0, mu=params.mu, sigma=params.sigma, tau=params.tau_a
        )
        assert solver.success_rate() <= solver.bob_t2_region().probability(law)


@settings(max_examples=25, deadline=None)
@given(pstar=PSTARS)
def test_property_t3_threshold_positive(pstar):
    solver = BackwardInduction(SwapParameters.default(), pstar)
    assert solver.p3_threshold() > 0.0


@settings(max_examples=25, deadline=None)
@given(pstar=PSTARS)
def test_property_success_rate_in_unit_interval(pstar):
    solver = BackwardInduction(SwapParameters.default(), pstar)
    assert 0.0 <= solver.success_rate() <= 1.0


@settings(max_examples=15, deadline=None)
@given(pstar=PSTARS, scale=st.floats(min_value=0.5, max_value=2.0))
def test_property_scale_invariance(pstar, scale):
    """Scaling (p0, P*) together rescales all value quantities linearly.

    The game is homogeneous of degree one in the numeraire: thresholds
    and utilities scale, probabilities (SR) are invariant.
    """
    base = SwapParameters.default()
    scaled = base.replace(p0=base.p0 * scale)
    a = BackwardInduction(base, pstar)
    b = BackwardInduction(scaled, pstar * scale)
    assert b.p3_threshold() == pytest.approx(scale * a.p3_threshold(), rel=1e-9)
    assert b.success_rate() == pytest.approx(a.success_rate(), abs=1e-6)
    assert b.alice_t1_cont() == pytest.approx(scale * a.alice_t1_cont(), rel=1e-6)
