"""Tests for the premium-mechanism baseline (Han et al. style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import collateral_success_rate
from repro.core.premium import PremiumBackwardInduction, solve_premium_game


class TestConstruction:
    def test_rejects_negative_premium(self, params):
        with pytest.raises(ValueError, match="premium"):
            PremiumBackwardInduction(params, 2.0, -0.2)


class TestReductionToBasicModel:
    def test_zero_premium_matches_basic(self, params):
        basic = BackwardInduction(params, 2.0)
        premium = PremiumBackwardInduction(params, 2.0, 0.0)
        assert premium.p3_threshold() == pytest.approx(basic.p3_threshold())
        grid = np.linspace(0.5, 4.0, 9)
        assert np.allclose(premium.bob_t2_cont(grid), basic.bob_t2_cont(grid))
        assert premium.alice_t1_cont() == pytest.approx(basic.alice_t1_cont())
        assert premium.success_rate() == pytest.approx(basic.success_rate())


class TestDiscipliningAlice:
    def test_threshold_decreases_with_premium(self, params):
        thresholds = [
            PremiumBackwardInduction(params, 2.0, w).p3_threshold()
            for w in (0.0, 0.3, 0.8)
        ]
        assert thresholds[0] > thresholds[1] > thresholds[2]

    def test_threshold_clamps_at_zero(self, params):
        assert PremiumBackwardInduction(params, 2.0, 10.0).p3_threshold() == 0.0

    def test_sr_increases_with_premium(self, params):
        rates = [
            PremiumBackwardInduction(params, 2.0, w).success_rate()
            for w in (0.0, 0.3, 0.8)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_bob_cont_gains_from_forfeit(self, params):
        basic = BackwardInduction(params, 2.0)
        premium = PremiumBackwardInduction(params, 2.0, 0.5)
        grid = np.linspace(0.3, 4.0, 9)
        assert np.all(premium.bob_t2_cont(grid) >= basic.bob_t2_cont(grid) - 1e-12)


class TestAsymmetryVsCollateral:
    """The premium leaves Bob's upper defection intact; symmetric
    collateral dominates at equal stake."""

    @pytest.mark.parametrize("stake", [0.2, 0.5, 1.0])
    def test_collateral_dominates_premium(self, params, stake):
        sr_premium = PremiumBackwardInduction(params, 2.0, stake).success_rate()
        sr_collateral = collateral_success_rate(params, 2.0, stake)
        assert sr_collateral > sr_premium

    def test_premium_cannot_reach_certainty(self, params):
        # even a huge premium leaves Bob's t2 walk-away intact
        assert PremiumBackwardInduction(params, 2.0, 10.0).success_rate() < 0.999

    def test_bob_region_upper_bound_persists(self, params):
        region = PremiumBackwardInduction(params, 2.0, 5.0).bob_t2_region()
        lo, hi = region.bounds()
        assert hi < 1e3  # finite upper defection boundary remains


class TestEquilibriumObject:
    def test_solve_premium_game_consistency(self, params):
        eq = solve_premium_game(params, 2.0, 0.4)
        raw = PremiumBackwardInduction(params, 2.0, 0.4)
        assert eq.success_rate == pytest.approx(raw.success_rate())
        assert eq.premium == 0.4
        assert eq.initiated == (eq.alice_t1.advantage > 0.0)

    def test_alice_stop_includes_premium(self, params):
        raw = PremiumBackwardInduction(params, 2.0, 0.4)
        assert raw.alice_t1_stop() == pytest.approx(2.4)

    def test_unconditional_rate(self, params):
        eq = solve_premium_game(params, 2.0, 0.4)
        assert eq.unconditional_success_rate == eq.success_rate
