"""Vectorised grid engine vs the scalar backward induction.

The parity contract of :mod:`repro.core.engine`: for any parameter
draw, any collateral level, and any ``P*`` grid, ``solve_grid`` must
agree with the per-point scalar solvers to ``1e-9`` on every reported
quantity -- thresholds, region endpoints, ``t1`` utilities, success
rates -- and on every boolean flag. The only tolerated differences come
from batched bisection vs Brent at the region roots (~1e-12) and from
dot-product association order (~1 ulp).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import CollateralBackwardInduction
from repro.core.engine import solve_grid
from repro.core.feasible_range import feasible_pstar_range
from repro.core.parameters import SwapParameters
from repro.core.success_rate import success_rate_curve
from repro.stochastic.lognormal import LognormalLaw

TOL = 1e-9

# Spans the feasible window under most draws plus clearly-infeasible
# rates on both sides (0.3 far below, 8.0 far above the spot).
PSTARS = (0.3, 1.2, 1.6, 2.0, 2.4, 3.0, 8.0)


def _scalar_solver(params, pstar, collateral):
    if collateral > 0.0:
        return CollateralBackwardInduction(params, pstar, collateral)
    return BackwardInduction(params, pstar)


def _assert_region_endpoints_are_roots(params, scalar, engine_region, pstar, k3):
    """Every engine endpoint must be a ``t2``-indifference point of the
    *scalar* advantage (or a scan-window boundary).

    Where Bob's advantage has a clean sign change both solvers land on
    the same root to ~1e-12 and endpoint positions compare directly (the
    deterministic suite pins that). But far below the feasible window
    the advantage underflows to an exactly-zero plateau spanning decades
    of price; the root *position* is then not identifiable -- any point
    of the plateau is a valid endpoint -- so the contract degrades to
    the root *property*: the scalar advantage at the engine's endpoint
    is indifference-level. (SR and the t1 utilities are integrals and
    stay pinned at 1e-9 regardless.)
    """
    scan_lo = 1e-6 * min(pstar, params.p0)
    scan_hi = 1e4 * max(pstar, params.p0, k3)
    scale = max(abs(pstar), params.p0)
    for lo, hi in engine_region.intervals:
        for x in (lo, hi):
            if abs(x - scan_lo) <= 1e-9 * scan_lo or abs(x - scan_hi) <= 1e-9 * scan_hi:
                continue
            advantage = scalar.bob_t2_cont(float(x)) - float(x)
            assert abs(advantage) <= TOL * scale, (pstar, x, advantage)


def _assert_grid_matches_scalar(params, pstars, collateral, regions="exact"):
    grid = solve_grid(params, pstars, collateral=collateral)
    for i, pstar in enumerate(pstars):
        scalar = _scalar_solver(params, pstar, collateral)
        approx = lambda v: pytest.approx(v, rel=TOL, abs=TOL)

        assert grid.p3_threshold[i] == approx(scalar.p3_threshold())

        region = scalar.bob_t2_region()
        engine_region = grid.t2_regions[i]
        if regions == "exact":
            assert len(engine_region.intervals) == len(region.intervals)
            for (glo, ghi), (slo, shi) in zip(
                engine_region.intervals, region.intervals
            ):
                assert glo == approx(slo)
                assert ghi == approx(shi)
        else:
            _assert_region_endpoints_are_roots(
                params, scalar, engine_region, pstar, float(grid.p3_threshold[i])
            )

        assert grid.alice_t1_cont[i] == approx(scalar.alice_t1_cont())
        assert grid.alice_t1_stop[i] == approx(scalar.alice_t1_stop())
        assert grid.bob_t1_cont[i] == approx(scalar.bob_t1_cont())
        assert grid.bob_t1_stop[i] == approx(scalar.bob_t1_stop())
        assert grid.success_rate[i] == approx(scalar.success_rate())

        # flag parity: strict-advantage initiation on both paths
        assert bool(grid.alice_initiates[i]) == (
            scalar.alice_t1_cont() - scalar.alice_t1_stop() > 0.0
        )
        assert bool(grid.bob_would_agree[i]) == (
            scalar.bob_t1_cont() - scalar.bob_t1_stop() > 0.0
        )

        assert np.isfinite(grid.success_rate[i])
        assert 0.0 <= grid.success_rate[i] <= 1.0 + TOL


# alpha floors at 0.05: with a zero margin Bob's t2 advantage is <= 0
# with equality in the limit, and the sign-change scan picks up
# floating-point noise slivers (~1e-7 wide) whose exact positions differ
# between the vectorised and scalar evaluation orders -- parity on noise
# is meaningless. The exact-zero-margin case is covered deterministically
# in TestDeterministicParity.test_no_trade_region_is_empty_everywhere.
parameter_draws = st.fixed_dictionaries(
    {
        "alpha_a": st.floats(0.05, 1.0),
        "alpha_b": st.floats(0.05, 1.0),
        "r_a": st.floats(1e-4, 0.05),
        "r_b": st.floats(1e-4, 0.05),
        "tau_a": st.floats(0.5, 12.0),
        "tau_b": st.floats(1.0, 16.0),
        "mu": st.floats(-0.02, 0.02),
        "sigma": st.floats(1e-3, 0.35),
        "p0": st.floats(0.5, 5.0),
    }
)


class TestRandomisedParity:
    @settings(max_examples=25, deadline=None)
    @given(draw=parameter_draws, collateral=st.sampled_from([0.0, 0.2, 1.0]))
    def test_grid_matches_scalar(self, draw, collateral):
        # keep the Chain_b write strictly inside Bob's HTLC window
        draw["eps_b"] = 0.25 * draw.pop("tau_b")
        draw["tau_b"] = 4.0 * draw["eps_b"]
        params = SwapParameters.default().replace(**draw)
        pstars = [k * params.p0 / 2.0 for k in PSTARS]
        # random draws include deep out-of-window rates where the root
        # position is not identifiable (flat-zero advantage plateaus),
        # so regions are held to the root property instead of endpoint
        # positions (see _assert_region_endpoints_are_roots); the
        # deterministic suite below pins exact endpoints.
        _assert_grid_matches_scalar(params, pstars, collateral, regions="roots")


class TestDeterministicParity:
    @pytest.mark.parametrize("collateral", [0.0, 0.2, 1.0])
    def test_table_iii_defaults(self, params, collateral):
        _assert_grid_matches_scalar(params, list(PSTARS), collateral)

    def test_near_zero_volatility(self, params):
        quiet = params.replace(sigma=1e-3)
        _assert_grid_matches_scalar(quiet, list(PSTARS), 0.0)

    def test_long_timelocks(self, params):
        slow = params.replace(tau_a=24.0, tau_b=36.0, eps_b=6.0)
        _assert_grid_matches_scalar(slow, list(PSTARS), 0.0)

    def test_no_trade_region_is_empty_everywhere(self, params):
        # near-zero margins: Bob never locks, success must be exactly 0
        hostile = params.replace(alpha_a=0.0, alpha_b=0.0, r_a=0.05, r_b=0.05)
        grid = solve_grid(params=hostile, pstars=list(PSTARS))
        for i, pstar in enumerate(PSTARS):
            scalar = BackwardInduction(hostile, pstar)
            assert scalar.bob_t2_region().is_empty == grid.t2_regions[i].is_empty
            if grid.t2_regions[i].is_empty:
                assert grid.success_rate[i] == 0.0

    def test_single_point_grid(self, params):
        _assert_grid_matches_scalar(params, [2.0], 0.0)

    def test_rejects_bad_grids(self, params):
        with pytest.raises(ValueError):
            solve_grid(params, [])
        with pytest.raises(ValueError):
            solve_grid(params, [2.0, float("nan")])
        with pytest.raises(ValueError):
            solve_grid(params, [2.0, -1.0])
        with pytest.raises(ValueError):
            solve_grid(params, [2.0], collateral=-0.5)


class TestFeasibilityBoundary:
    """Satellite of the engine refactor: the feasibility convention.

    A ``P*`` exactly on an Eq. (29) endpoint is an indifference root,
    and the tie-breaking convention has an indifferent Alice stop --
    so endpoints are *infeasible* (open-interior convention), matching
    the strict inequalities of ``BobStrategy.decide_t2``.
    """

    def test_endpoints_are_infeasible_interior_is_feasible(self, params):
        lo, hi = feasible_pstar_range(params)
        mid = 0.5 * (lo + hi)
        points = success_rate_curve(params, [lo, mid, hi])
        assert not points[0].feasible
        assert points[1].feasible
        assert not points[2].feasible

    def test_restriction_nans_exactly_the_endpoints(self, params):
        lo, hi = feasible_pstar_range(params)
        mid = 0.5 * (lo + hi)
        points = success_rate_curve(
            params, [lo, mid, hi], restrict_to_feasible=True
        )
        assert np.isnan(points[0].rate)
        assert not np.isnan(points[1].rate)
        assert np.isnan(points[2].rate)

    def test_just_inside_counts_as_feasible(self, params):
        lo, hi = feasible_pstar_range(params)
        eps = 1e-6 * (hi - lo)
        points = success_rate_curve(params, [lo + eps, hi - eps])
        assert points[0].feasible
        assert points[1].feasible
