"""Tests for the Section IV collateral extension (Eqs. (32)-(40))."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_induction import BackwardInduction
from repro.core.collateral import (
    CollateralBackwardInduction,
    collateral_success_rate,
    feasible_pstar_region_with_collateral,
    solve_collateral_game,
)
from repro.core.parameters import SwapParameters

QS = st.floats(min_value=0.0, max_value=2.0)
PSTARS = st.floats(min_value=1.2, max_value=3.5)


class TestConstruction:
    def test_rejects_negative_collateral(self, params):
        with pytest.raises(ValueError, match="collateral"):
            CollateralBackwardInduction(params, 2.0, -0.1)


class TestReductionToBasicModel:
    """Q = 0 must reproduce the Section III game exactly."""

    @pytest.fixture(scope="class")
    def pair(self):
        params = SwapParameters.default()
        return (
            BackwardInduction(params, 2.0),
            CollateralBackwardInduction(params, 2.0, 0.0),
        )

    def test_threshold(self, pair):
        basic, collateral = pair
        assert collateral.p3_threshold() == pytest.approx(
            basic.p3_threshold(), rel=1e-12
        )

    def test_t2_utilities(self, pair):
        basic, collateral = pair
        grid = np.linspace(0.5, 4.0, 17)
        assert np.allclose(collateral.alice_t2_cont(grid), basic.alice_t2_cont(grid))
        assert np.allclose(collateral.bob_t2_cont(grid), basic.bob_t2_cont(grid))

    def test_t2_region(self, pair):
        basic, collateral = pair
        assert collateral.bob_t2_region().bounds() == pytest.approx(
            basic.bob_t2_region().bounds(), rel=1e-9
        )

    def test_t1_utilities(self, pair):
        basic, collateral = pair
        assert collateral.alice_t1_cont() == pytest.approx(basic.alice_t1_cont())
        assert collateral.bob_t1_cont() == pytest.approx(basic.bob_t1_cont())
        assert collateral.alice_t1_stop() == basic.alice_t1_stop()
        assert collateral.bob_t1_stop() == basic.bob_t1_stop()

    def test_success_rate(self, pair):
        basic, collateral = pair
        assert collateral.success_rate() == pytest.approx(basic.success_rate())


class TestThresholdEq34:
    def test_formula(self, params):
        solver = CollateralBackwardInduction(params, 2.0, 0.3)
        stop_value = 2.0 * math.exp(-0.01 * 7.0)
        deposit_value = 0.3 * math.exp(-0.01 * 4.0)
        expected = (
            math.exp((0.01 - 0.002) * 4.0) * (stop_value - deposit_value) / 1.3
        )
        assert solver.p3_threshold() == pytest.approx(expected, rel=1e-12)

    def test_decreases_with_q(self, params):
        thresholds = [
            CollateralBackwardInduction(params, 2.0, q).p3_threshold()
            for q in (0.0, 0.3, 0.6, 1.0)
        ]
        assert all(a > b for a, b in zip(thresholds, thresholds[1:]))

    def test_clamps_at_zero_for_large_q(self, params):
        solver = CollateralBackwardInduction(params, 2.0, 5.0)
        assert solver.p3_threshold() == 0.0

    def test_zero_threshold_means_alice_always_continues(self, params):
        # with threshold 0 the cdf branch vanishes in the t2 pieces
        solver = CollateralBackwardInduction(params, 2.0, 5.0)
        cdf, survival, partial_below = solver._t2_law_pieces(np.array([2.0]))
        assert cdf[0] == 0.0
        assert survival[0] == 1.0
        assert partial_below[0] == 0.0


class TestBobT2Collateralised:
    def test_cont_utility_exceeds_basic(self, params):
        # extra deposit flows can only help Bob's cont branch
        basic = BackwardInduction(params, 2.0)
        coll = CollateralBackwardInduction(params, 2.0, 0.5)
        grid = np.linspace(0.2, 4.0, 15)
        assert np.all(coll.bob_t2_cont(grid) > basic.bob_t2_cont(grid))

    def test_region_extends_to_low_prices(self, params):
        # Section IV intuition 2: at P_t2 near zero Bob prefers cont
        region = CollateralBackwardInduction(params, 2.0, 0.5).bob_t2_region()
        assert float(region.bounds()[0]) < 1e-3

    def test_region_expands_with_q(self, params):
        # Figure 7: collateral expands the feasible Token_b price range
        law_independent_lengths = []
        for q in (0.0, 0.2, 0.5):
            region = CollateralBackwardInduction(params, 2.0, q).bob_t2_region()
            law_independent_lengths.append(region.bounds()[1])
        assert law_independent_lengths[0] < law_independent_lengths[1]
        assert law_independent_lengths[1] < law_independent_lengths[2]

    def test_odd_root_structure(self, params):
        # U_cont - U_stop has an odd number of sign changes (1 or 3)
        for q in (0.1, 0.3, 0.8):
            solver = CollateralBackwardInduction(params, 2.0, q)
            region = solver.bob_t2_region()
            # region starts at the scan edge (Bob continues near 0), so the
            # number of finite indifference points is odd
            assert len(region) in (1, 2)  # 1 root -> 1 piece; 3 roots -> 2 pieces


class TestSuccessRateEq40:
    def test_increases_with_q(self, params):
        # Figure 9's headline claim
        rates = [collateral_success_rate(params, 2.0, q) for q in (0.0, 0.2, 0.5, 1.0)]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_saturates_at_one(self, params):
        assert collateral_success_rate(params, 2.0, 5.0) == pytest.approx(1.0, abs=1e-6)

    def test_at_different_rates(self, params):
        for k in (1.7, 2.0, 2.3):
            assert collateral_success_rate(params, k, 0.5) > collateral_success_rate(
                params, k, 0.0
            )


class TestT1Collateralised:
    def test_stop_values_include_deposit(self, params):
        solver = CollateralBackwardInduction(params, 2.0, 0.4)
        assert solver.alice_t1_stop() == pytest.approx(2.4)
        assert solver.bob_t1_stop() == pytest.approx(params.p0 + 0.4)

    def test_alice_t2_stop_value_includes_both_deposits(self, params):
        solver = CollateralBackwardInduction(params, 2.0, 0.4)
        extra = solver.alice_t2_stop_value() - solver.alice_t2_stop()
        expected = 2 * 0.4 * math.exp(-0.01 * (4.0 + 3.0))
        assert extra == pytest.approx(expected, rel=1e-12)

    def test_engagement_at_reference_rate(self, params):
        eq = solve_collateral_game(params, 2.0, 0.5)
        assert eq.alice_engages
        assert eq.bob_engages
        assert eq.engaged

    def test_feasible_regions_nonempty(self, params):
        alice, bob = feasible_pstar_region_with_collateral(params, 0.5)
        assert not alice.is_empty
        assert not bob.is_empty
        assert 2.0 in alice.intersect(bob)


class TestEquilibriumObject:
    def test_unconditional_rate_zero_when_not_engaged(self, params):
        # an absurd rate: nobody engages
        eq = solve_collateral_game(params, 30.0, 0.1)
        assert not eq.engaged
        assert eq.unconditional_success_rate == 0.0

    def test_fields_consistent(self, params):
        eq = solve_collateral_game(params, 2.0, 0.5)
        solver = CollateralBackwardInduction(params, 2.0, 0.5)
        assert eq.success_rate == pytest.approx(solver.success_rate())
        assert eq.p3_threshold == pytest.approx(solver.p3_threshold())
        assert eq.alice_strategy.p3_threshold == eq.p3_threshold


@settings(max_examples=20, deadline=None)
@given(q=QS, pstar=PSTARS)
def test_property_sr_monotone_in_q(q, pstar):
    """Adding collateral never hurts the success rate."""
    params = SwapParameters.default()
    low = collateral_success_rate(params, pstar, q)
    high = collateral_success_rate(params, pstar, q + 0.25)
    assert high >= low - 1e-9


@settings(max_examples=20, deadline=None)
@given(q=QS, pstar=PSTARS)
def test_property_threshold_never_negative(q, pstar):
    solver = CollateralBackwardInduction(SwapParameters.default(), pstar, q)
    assert solver.p3_threshold() >= 0.0
