"""Degenerate laws reproduce the lognormal answers at every layer.

A Merton law with ``jump_intensity = 0`` and a regime law with equal
state volatilities build the *same* step kernel as the default
lognormal law, so the scalar solver, the vectorised grid engine, the
surface builder, and the swap-graph lattice must all return the
baseline answers to well under the 1e-9 acceptance tolerance. A second
group pins the converse: genuinely non-degenerate laws move the
equilibrium, so the plumbing cannot be silently ignoring ``law``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.engine import solve_grid
from repro.core.parameters import SwapParameters
from repro.stochastic.law import LOGNORMAL, LawSpec
from repro.surface import AxisSpec, SurfaceSpec
from repro.surface.builder import build_surface
from repro.swapgraph import SwapGraphSpec, solve_swap_graph

# the Figure 6 P* grid (success rate against the strike ratio)
PSTARS = [1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6]

DEGENERATE = [
    LawSpec.make("merton", jump_intensity=0.0, jump_mean=-0.3, jump_std=0.2),
    # the regime law ignores the ambient sigma; matching the default
    # parameters' sigma=0.1 makes the collapse land on the same GBM
    LawSpec.make("regime", sigma_calm=0.1, sigma_turbulent=0.1),
]

IDS = [spec.kind for spec in DEGENERATE]


@pytest.fixture(scope="module")
def base() -> SwapParameters:
    return SwapParameters.default()


class TestDegenerateParity:
    @pytest.mark.parametrize("law", DEGENERATE, ids=IDS)
    def test_scalar_solver(self, base, law):
        for pstar in PSTARS:
            expected = BackwardInduction(base, pstar).success_rate()
            got = BackwardInduction(base.replace(law=law), pstar).success_rate()
            assert got == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("law", DEGENERATE, ids=IDS)
    @pytest.mark.parametrize("collateral", [0.0, 0.5])
    def test_grid_engine(self, base, law, collateral):
        expected = solve_grid(base, PSTARS, collateral=collateral)
        got = solve_grid(base.replace(law=law), PSTARS, collateral=collateral)
        np.testing.assert_allclose(
            got.success_rate, expected.success_rate, atol=1e-9
        )
        np.testing.assert_allclose(
            got.p3_threshold, expected.p3_threshold, atol=1e-9
        )

    @pytest.mark.parametrize("law", DEGENERATE, ids=IDS)
    def test_surface_builder(self, base, law):
        axes = (AxisSpec(name="pstar", lo=1.6, hi=2.4, points=5),)
        baseline = build_surface(
            SurfaceSpec(axes=axes, params=base), scan_points=128
        )
        degenerate = build_surface(
            SurfaceSpec(axes=axes, params=base.replace(law=law)),
            scan_points=128,
        )
        np.testing.assert_allclose(
            degenerate.values, baseline.values, atol=1e-9
        )

    @pytest.mark.parametrize("law", DEGENERATE, ids=IDS)
    def test_swap_graph_lattice(self, base, law):
        spec = SwapGraphSpec.two_party(base, pstar=2.0)
        # force lattice mode for the baseline too: a non-lognormal law
        # (even a degenerate one) never takes the closed-form shortcut,
        # so the apples-to-apples comparison is lattice vs lattice
        expected = solve_swap_graph(spec, n_lattice=9)
        got = solve_swap_graph(spec.replace(law=law), n_lattice=9)
        assert got.mode == expected.mode == "lattice"
        assert got.success_rate == pytest.approx(
            expected.success_rate, abs=1e-9
        )
        for name, utility in expected.utilities.items():
            assert got.utilities[name] == pytest.approx(utility, abs=1e-9)


class TestLawsActuallyBite:
    """Non-degenerate laws change the answers -- law is not ignored."""

    def test_merton_jump_risk_lowers_success(self, base):
        jumpy = base.replace(
            law=LawSpec.make(
                "merton", jump_intensity=0.2, jump_mean=-0.15, jump_std=0.15
            )
        )
        baseline = solve_grid(base, PSTARS).success_rate
        shocked = solve_grid(jumpy, PSTARS).success_rate
        assert np.max(np.abs(shocked - baseline)) > 1e-3

    def test_regime_turbulence_changes_thresholds(self, base):
        stormy = base.replace(law=LawSpec.make("regime"))
        a = BackwardInduction(base, 2.0)
        b = BackwardInduction(stormy, 2.0)
        assert abs(a.success_rate() - b.success_rate()) > 1e-3

    def test_degenerate_spec_is_still_not_the_default_law(self, base):
        """Kind survives on the parameters even when the kernel collapses."""
        params = base.replace(law="merton:jump_intensity=0")
        assert params.law.kind == "merton"
        assert params.law != LOGNORMAL
        assert "law" in params.to_dict()

    def test_lognormal_params_serialise_without_law(self, base):
        assert "law" not in base.to_dict()
        assert SwapParameters.from_dict(base.to_dict()) == base

    def test_law_round_trips_through_params_dict(self, base):
        params = base.replace(law=LawSpec.make("regime", sigma_turbulent=0.3))
        assert SwapParameters.from_dict(params.to_dict()) == params
