"""Tests for the incomplete-information (Bayesian) swap game."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backward_induction import BackwardInduction
from repro.core.bayesian import BayesianSwapGame, TypeDistribution, information_value
from repro.core.parameters import SwapParameters


class TestTypeDistribution:
    def test_point(self):
        dist = TypeDistribution.point(0.3)
        assert dist.values == (0.3,)
        assert dist.mean == 0.3

    def test_uniform(self):
        dist = TypeDistribution.uniform([0.1, 0.3, 0.5])
        assert dist.mean == pytest.approx(0.3)
        assert all(p == pytest.approx(1 / 3) for p in dist.probabilities)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="sum"):
            TypeDistribution(values=(0.1, 0.2), probabilities=(0.5, 0.2))
        with pytest.raises(ValueError, match="non-negative"):
            TypeDistribution(values=(0.1, 0.2), probabilities=(-0.5, 1.5))
        with pytest.raises(ValueError, match="length"):
            TypeDistribution(values=(0.1,), probabilities=(0.5, 0.5))
        with pytest.raises(ValueError, match="at least one"):
            TypeDistribution(values=(), probabilities=())
        with pytest.raises(ValueError, match="at least one"):
            TypeDistribution.uniform([])

    def test_items(self):
        dist = TypeDistribution.uniform([0.2, 0.4])
        assert dist.items() == [(0.2, 0.5), (0.4, 0.5)]


class TestCompleteInformationReduction:
    """Point-mass beliefs at the true types reproduce Section III exactly."""

    @pytest.fixture(scope="class")
    def games(self):
        params = SwapParameters.default()
        bayes = BayesianSwapGame(
            params, 2.0,
            TypeDistribution.point(params.alice.alpha),
            TypeDistribution.point(params.bob.alpha),
        )
        return bayes, BackwardInduction(params, 2.0)

    def test_bob_region(self, games):
        bayes, base = games
        assert bayes.bob_t2_region().bounds() == pytest.approx(
            base.bob_t2_region().bounds(), rel=1e-9
        )

    def test_alice_t1(self, games):
        bayes, base = games
        assert bayes.alice_t1_cont() == pytest.approx(base.alice_t1_cont())
        assert bayes.alice_initiates() == base.alice_initiates()

    def test_success_rates(self, games):
        bayes, base = games
        assert bayes.realised_success_rate() == pytest.approx(base.success_rate())
        assert bayes.ex_ante_success_rate() == pytest.approx(base.success_rate())


class TestUncertaintyEffects:
    @pytest.fixture(scope="class")
    def game(self):
        params = SwapParameters.default()
        belief = TypeDistribution.uniform([0.1, 0.3, 0.5])
        return BayesianSwapGame(params, 2.0, belief, belief)

    def test_bob_region_is_belief_mixture(self, game, params):
        """Bob's region under uncertainty differs from any single-type one."""
        mixed = game.bob_t2_region().bounds()
        pure = BackwardInduction(params, 2.0).bob_t2_region().bounds()
        assert mixed != pytest.approx(pure)

    def test_realised_sr_below_complete_info(self, game, params):
        """Uncertainty cannot help coordination at the true (symmetric)
        types: Bob hedges against low-alpha Alices and trims his region."""
        complete = BackwardInduction(params, 2.0).success_rate()
        assert game.realised_success_rate() < complete

    def test_ex_ante_sr_below_realised(self, game):
        """The ex-ante rate also averages over *bad* type draws."""
        assert game.ex_ante_success_rate() < game.realised_success_rate()

    def test_still_initiates_at_reference(self, game):
        assert game.alice_initiates()

    def test_pessimistic_belief_blocks_initiation(self, params):
        belief_bad_bob = TypeDistribution.uniform([0.0, 0.05])
        game = BayesianSwapGame(
            params, 2.0,
            TypeDistribution.point(params.alice.alpha),
            belief_bad_bob,
        )
        # Alice expects Bob to walk away almost surely -> she stays out
        assert not game.alice_initiates()

    def test_per_type_regions_cached(self, game):
        assert game.bob_t2_region() is game.bob_t2_region()


class TestInformationValue:
    def test_gap_nonnegative_for_symmetric_uncertainty(self, params):
        belief = TypeDistribution.uniform([0.15, 0.3, 0.45])
        complete, incomplete = information_value(params, 2.0, belief, belief)
        assert complete >= incomplete

    def test_zero_gap_with_point_beliefs(self, params):
        point_a = TypeDistribution.point(params.alice.alpha)
        point_b = TypeDistribution.point(params.bob.alpha)
        complete, incomplete = information_value(params, 2.0, point_a, point_b)
        assert complete == pytest.approx(incomplete)

    def test_wider_uncertainty_bigger_gap(self, params):
        narrow = TypeDistribution.uniform([0.25, 0.35])
        wide = TypeDistribution.uniform([0.05, 0.55])
        _c1, sr_narrow = information_value(params, 2.0, narrow, narrow)
        _c2, sr_wide = information_value(params, 2.0, wide, wide)
        assert sr_wide < sr_narrow


class TestValidation:
    def test_rejects_bad_pstar(self, params):
        with pytest.raises(ValueError):
            BayesianSwapGame(
                params, 0.0,
                TypeDistribution.point(0.3), TypeDistribution.point(0.3),
            )


@settings(max_examples=8, deadline=None)
@given(alpha=st.floats(min_value=0.2, max_value=0.5))
def test_property_point_beliefs_reduce_to_complete_info(alpha):
    params = SwapParameters.default().replace(alpha_a=alpha, alpha_b=alpha)
    game = BayesianSwapGame(
        params, 2.0, TypeDistribution.point(alpha), TypeDistribution.point(alpha)
    )
    base = BackwardInduction(params, 2.0)
    assert game.realised_success_rate() == pytest.approx(base.success_rate(), abs=1e-9)
