"""Tests for parameter objects (Table III)."""

from __future__ import annotations

import pytest

from repro.core.parameters import AgentParameters, SwapParameters


class TestAgentParameters:
    def test_valid(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        assert agent.alpha == 0.3

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            AgentParameters(alpha=-0.1, r=0.01)

    def test_rejects_zero_r(self):
        # the paper requires r > 0
        with pytest.raises(ValueError, match="r must"):
            AgentParameters(alpha=0.3, r=0.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            AgentParameters(alpha=float("nan"), r=0.01)

    def test_discount(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        assert agent.discount(0.0) == 1.0
        assert agent.discount(100.0) == pytest.approx(0.36787944117, rel=1e-9)

    def test_discount_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            AgentParameters(alpha=0.3, r=0.01).discount(-1.0)

    def test_frozen(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        with pytest.raises(AttributeError):
            agent.alpha = 0.5  # type: ignore[misc]


class TestTableIIIDefaults:
    """Every value in the paper's Table III."""

    def test_alpha(self, params):
        assert params.alice.alpha == 0.3
        assert params.bob.alpha == 0.3

    def test_r(self, params):
        assert params.alice.r == 0.01
        assert params.bob.r == 0.01

    def test_tau(self, params):
        assert params.tau_a == 3.0
        assert params.tau_b == 4.0

    def test_eps_b(self, params):
        assert params.eps_b == 1.0

    def test_p0(self, params):
        assert params.p0 == 2.0

    def test_price_process(self, params):
        assert params.mu == 0.002
        assert params.sigma == 0.1


class TestValidation:
    def test_rejects_eps_b_violating_eq3(self):
        with pytest.raises(ValueError, match="eps_b"):
            SwapParameters.default().replace(eps_b=4.5)

    def test_rejects_bad_p0(self):
        with pytest.raises(ValueError, match="p0"):
            SwapParameters.default().replace(p0=0.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            SwapParameters.default().replace(sigma=-0.1)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError, match="tau_a"):
            SwapParameters.default().replace(tau_a=0.0)


class TestReplace:
    def test_plain_field(self, params):
        assert params.replace(sigma=0.2).sigma == 0.2

    def test_agent_shorthand(self, params):
        modified = params.replace(alpha_a=0.5, r_b=0.02)
        assert modified.alice.alpha == 0.5
        assert modified.bob.r == 0.02
        # untouched fields preserved
        assert modified.alice.r == params.alice.r
        assert modified.bob.alpha == params.bob.alpha

    def test_original_untouched(self, params):
        params.replace(sigma=0.4)
        assert params.sigma == 0.1

    def test_combined(self, params):
        modified = params.replace(tau_a=5.0, alpha_b=0.7)
        assert modified.tau_a == 5.0
        assert modified.bob.alpha == 0.7


class TestDerived:
    def test_process(self, params):
        assert params.process.mu == params.mu
        assert params.process.sigma == params.sigma

    def test_grid(self, params):
        grid = params.grid
        assert grid.t2 == params.tau_a
        assert grid.t3 == params.tau_a + params.tau_b

    def test_as_dict_roundtrip(self, params):
        flat = params.as_dict()
        assert flat["alpha_a"] == 0.3
        assert flat["sigma"] == 0.1
        assert len(flat) == 10
