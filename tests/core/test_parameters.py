"""Tests for parameter objects (Table III)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import AgentParameters, SwapParameters


class TestAgentParameters:
    def test_valid(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        assert agent.alpha == 0.3

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            AgentParameters(alpha=-0.1, r=0.01)

    def test_rejects_zero_r(self):
        # the paper requires r > 0
        with pytest.raises(ValueError, match="r must"):
            AgentParameters(alpha=0.3, r=0.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            AgentParameters(alpha=float("nan"), r=0.01)

    def test_discount(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        assert agent.discount(0.0) == 1.0
        assert agent.discount(100.0) == pytest.approx(0.36787944117, rel=1e-9)

    def test_discount_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            AgentParameters(alpha=0.3, r=0.01).discount(-1.0)

    def test_frozen(self):
        agent = AgentParameters(alpha=0.3, r=0.01)
        with pytest.raises(AttributeError):
            agent.alpha = 0.5  # type: ignore[misc]


class TestTableIIIDefaults:
    """Every value in the paper's Table III."""

    def test_alpha(self, params):
        assert params.alice.alpha == 0.3
        assert params.bob.alpha == 0.3

    def test_r(self, params):
        assert params.alice.r == 0.01
        assert params.bob.r == 0.01

    def test_tau(self, params):
        assert params.tau_a == 3.0
        assert params.tau_b == 4.0

    def test_eps_b(self, params):
        assert params.eps_b == 1.0

    def test_p0(self, params):
        assert params.p0 == 2.0

    def test_price_process(self, params):
        assert params.mu == 0.002
        assert params.sigma == 0.1


class TestValidation:
    def test_rejects_eps_b_violating_eq3(self):
        with pytest.raises(ValueError, match="eps_b"):
            SwapParameters.default().replace(eps_b=4.5)

    def test_rejects_bad_p0(self):
        with pytest.raises(ValueError, match="p0"):
            SwapParameters.default().replace(p0=0.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            SwapParameters.default().replace(sigma=-0.1)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError, match="tau_a"):
            SwapParameters.default().replace(tau_a=0.0)


class TestReplace:
    def test_plain_field(self, params):
        assert params.replace(sigma=0.2).sigma == 0.2

    def test_agent_shorthand(self, params):
        modified = params.replace(alpha_a=0.5, r_b=0.02)
        assert modified.alice.alpha == 0.5
        assert modified.bob.r == 0.02
        # untouched fields preserved
        assert modified.alice.r == params.alice.r
        assert modified.bob.alpha == params.bob.alpha

    def test_original_untouched(self, params):
        params.replace(sigma=0.4)
        assert params.sigma == 0.1

    def test_combined(self, params):
        modified = params.replace(tau_a=5.0, alpha_b=0.7)
        assert modified.tau_a == 5.0
        assert modified.bob.alpha == 0.7


class TestDerived:
    def test_process(self, params):
        assert params.process.mu == params.mu
        assert params.process.sigma == params.sigma

    def test_grid(self, params):
        grid = params.grid
        assert grid.t2 == params.tau_a
        assert grid.t3 == params.tau_a + params.tau_b

    def test_as_dict_roundtrip(self, params):
        flat = params.as_dict()
        assert flat["alpha_a"] == 0.3
        assert flat["sigma"] == 0.1
        assert len(flat) == 10


class TestSerialization:
    def test_agent_roundtrip(self):
        agent = AgentParameters(alpha=0.31, r=0.0125)
        assert AgentParameters.from_dict(agent.to_dict()) == agent

    def test_nested_roundtrip_exact(self, params):
        rebuilt = SwapParameters.from_dict(params.to_dict())
        assert rebuilt == params

    def test_json_roundtrip_bit_for_bit(self, params):
        import json

        wonky = params.replace(sigma=0.1 + 1e-16, mu=1.0 / 3.0)
        payload = json.loads(json.dumps(wonky.to_dict()))
        rebuilt = SwapParameters.from_dict(payload)
        for key, value in wonky.as_dict().items():
            assert rebuilt.as_dict()[key] == value

    def test_flat_overrides_accepted(self):
        rebuilt = SwapParameters.from_dict({"sigma": 0.15, "alpha_a": 0.5})
        assert rebuilt.sigma == 0.15
        assert rebuilt.alice.alpha == 0.5
        assert rebuilt.tau_b == SwapParameters.default().tau_b

    def test_flat_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            SwapParameters.from_dict({"sigma_b": 0.15})

    @given(
        alpha_a=st.floats(0.0, 2.0, allow_nan=False),
        alpha_b=st.floats(0.0, 2.0, allow_nan=False),
        r_a=st.floats(1e-6, 0.5, allow_nan=False),
        r_b=st.floats(1e-6, 0.5, allow_nan=False),
        tau_a=st.floats(0.1, 50.0),
        p0=st.floats(0.01, 100.0),
        mu=st.floats(-0.5, 0.5, allow_nan=False),
        sigma=st.floats(1e-3, 2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(
        self, alpha_a, alpha_b, r_a, r_b, tau_a, p0, mu, sigma
    ):
        import json

        params = SwapParameters(
            alice=AgentParameters(alpha=alpha_a, r=r_a),
            bob=AgentParameters(alpha=alpha_b, r=r_b),
            tau_a=tau_a,
            tau_b=4.0,
            eps_b=1.0,
            p0=p0,
            mu=mu,
            sigma=sigma,
        )
        rebuilt = SwapParameters.from_dict(
            json.loads(json.dumps(params.to_dict()))
        )
        assert rebuilt == params
