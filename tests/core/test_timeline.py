"""Tests for the swap timeline (Eq. (12)/(13), Figure 2)."""

from __future__ import annotations

import pytest

from repro.core.timeline import SwapTimeline, TimelineViolation, idealized_timeline


def make_timeline(**overrides) -> SwapTimeline:
    fields = dict(
        tau_a=3.0, tau_b=4.0, eps_b=1.0,
        t0=0.0, t1=0.0, t2=3.0, t3=7.0, t4=8.0,
        t_a=11.0, t_b=11.0,
    )
    fields.update(overrides)
    return SwapTimeline(**fields)


class TestIdealizedTimeline:
    def test_matches_eq13(self, params):
        tl = idealized_timeline(params)
        assert tl.t1 == tl.t0
        assert tl.t2 == tl.t1 + params.tau_a
        assert tl.t3 == tl.t2 + params.tau_b
        assert tl.t4 == tl.t3 + params.eps_b
        assert tl.t5 == tl.t3 + params.tau_b == tl.t_b
        assert tl.t6 == tl.t4 + params.tau_a == tl.t_a
        assert tl.t7 == tl.t_b + params.tau_b
        assert tl.t8 == tl.t_a + params.tau_a

    def test_is_idealized_flag(self, params):
        assert idealized_timeline(params).is_idealized

    def test_start_offset_shifts_everything(self, params):
        tl = idealized_timeline(params, start=10.0)
        assert tl.t0 == 10.0
        assert tl.t8 == 10.0 + 14.0

    def test_validates(self, params):
        idealized_timeline(params).validate()


class TestConstraintChecking:
    def test_valid_with_waiting_time(self):
        # Figure 2(a): arbitrary waiting is allowed as long as Eq. (12) holds
        tl = make_timeline(t1=1.0, t2=5.0, t3=10.0, t4=11.5, t_a=16.0, t_b=14.5)
        assert tl.is_valid
        assert not tl.is_idealized

    def test_violation_t2_too_early(self):
        tl = make_timeline(t2=2.0)  # < t1 + tau_a
        assert not tl.is_valid
        with pytest.raises(TimelineViolation, match="Eq. 5"):
            tl.validate()

    def test_violation_t3_too_early(self):
        tl = make_timeline(t3=6.0)
        with pytest.raises(TimelineViolation, match="Eq. 6"):
            tl.validate()

    def test_violation_t4_before_mempool_visibility(self):
        tl = make_timeline(t4=7.5)
        with pytest.raises(TimelineViolation, match="Eq. 7"):
            tl.validate()

    def test_violation_expiry_too_tight_on_b(self):
        tl = make_timeline(t_b=10.0)  # t5 = t3 + tau_b = 11 > t_b
        with pytest.raises(TimelineViolation, match="Eq. 8"):
            tl.validate()

    def test_violation_expiry_too_tight_on_a(self):
        tl = make_timeline(t_a=10.0)
        with pytest.raises(TimelineViolation, match="Eq. 9"):
            tl.validate()

    def test_violation_t1_before_agreement(self):
        tl = make_timeline(t0=2.0, t1=1.0, t2=4.0, t3=8.0, t4=9.0, t_a=12.0, t_b=12.0)
        with pytest.raises(TimelineViolation, match="Eq. 4"):
            tl.validate()

    def test_report_lists_all_constraints(self):
        report = make_timeline().constraint_report()
        assert len(report) == 9
        assert all(ok for _name, ok in report)


class TestLockTimes:
    def test_alice_lock_time(self, params):
        tl = idealized_timeline(params)
        # Alice's Token_a is at risk from t1 until the refund at t8
        assert tl.total_lock_time_alice() == tl.t8 - tl.t1 == 14.0

    def test_bob_lock_time(self, params):
        tl = idealized_timeline(params)
        assert tl.total_lock_time_bob() == tl.t7 - tl.t2 == 12.0
