"""Tests for SR(P*) (Eq. (31)) and the Figure 6 comparative statics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.feasible_range import feasible_pstar_range
from repro.core.success_rate import (
    max_success_rate,
    success_rate,
    success_rate_curve,
)


class TestSuccessRateFunction:
    def test_matches_solver(self, params, solver):
        assert success_rate(params, 2.0) == pytest.approx(solver.success_rate())

    def test_bounded(self, params):
        for k in (1.6, 2.0, 2.4):
            assert 0.0 <= success_rate(params, k) <= 1.0


class TestConcavity:
    """"Irrespective of the parameter values, the SR <- P* curve is
    always concave, with the SR-maximizing point residing between
    P̲* and P̄*." (Section III-F)
    """

    def test_concave_on_feasible_range(self, params):
        lo, hi = feasible_pstar_range(params)
        grid = np.linspace(lo * 1.01, hi * 0.99, 15)
        rates = np.array([success_rate(params, float(k)) for k in grid])
        second_diff = np.diff(rates, 2)
        assert np.all(second_diff < 1e-6)

    def test_interior_maximum(self, params):
        lo, hi = feasible_pstar_range(params)
        k_opt, rate_opt = max_success_rate(params)
        assert lo < k_opt < hi
        # strictly better than the endpoints
        assert rate_opt > success_rate(params, lo * 1.001)
        assert rate_opt > success_rate(params, hi * 0.999)

    def test_max_beats_grid(self, params):
        _k_opt, rate_opt = max_success_rate(params)
        lo, hi = feasible_pstar_range(params)
        for k in np.linspace(lo * 1.01, hi * 0.99, 21):
            assert rate_opt >= success_rate(params, float(k)) - 1e-9

    def test_max_none_when_infeasible(self, params):
        assert max_success_rate(params.replace(alpha_a=0.01, alpha_b=0.01)) is None


class TestFigure6Statics:
    """The paper's Section III-F claims, at the optimally chosen P*."""

    @staticmethod
    def best(params) -> float:
        located = max_success_rate(params)
        return located[1] if located else 0.0

    def test_higher_alpha_a_raises_sr(self, params):
        assert self.best(params.replace(alpha_a=0.5)) > self.best(params)

    def test_higher_alpha_b_raises_sr(self, params):
        assert self.best(params.replace(alpha_b=0.5)) > self.best(params)

    def test_lower_alpha_lowers_sr(self, params):
        assert self.best(params.replace(alpha_a=0.15)) < self.best(params)

    def test_shorter_tau_a_raises_sr(self, params):
        # Section III-F3: "lower tau_a or tau_b increases SR"
        assert self.best(params.replace(tau_a=1.0)) > self.best(params)

    def test_shorter_tau_b_raises_sr(self, params):
        fast = params.replace(tau_b=2.0)  # eps_b = 1 < 2 still valid
        assert self.best(fast) > self.best(params)

    def test_longer_tau_lowers_sr(self, params):
        assert self.best(params.replace(tau_a=6.0)) < self.best(params)

    def test_upward_trend_raises_sr(self, params):
        # Section III-F4: "higher degree of upward price trend increases SR"
        assert self.best(params.replace(mu=0.01)) > self.best(params)

    def test_downward_trend_lowers_sr(self, params):
        assert self.best(params.replace(mu=-0.005)) < self.best(params)

    def test_higher_volatility_lowers_max_sr(self, params):
        # Section III-F4: "higher volatility reduces maximum SR"
        assert self.best(params.replace(sigma=0.15)) < self.best(params)

    def test_lower_volatility_raises_max_sr(self, params):
        assert self.best(params.replace(sigma=0.05)) > self.best(params)

    def test_impatience_lowers_sr(self, params):
        assert self.best(params.replace(r_a=0.03, r_b=0.03)) < self.best(params)


class TestCurve:
    def test_curve_length(self, params):
        points = success_rate_curve(params, [1.8, 2.0, 2.2])
        assert len(points) == 3

    def test_curve_tags_feasibility(self, params):
        points = success_rate_curve(params, [1.0, 2.0, 3.0])
        assert [pt.feasible for pt in points] == [False, True, False]

    def test_restrict_to_feasible_inserts_nan(self, params):
        points = success_rate_curve(params, [1.0, 2.0], restrict_to_feasible=True)
        assert math.isnan(points[0].rate)
        assert not math.isnan(points[1].rate)

    def test_curve_values_match_pointwise(self, params):
        points = success_rate_curve(params, [2.0])
        assert points[0].rate == pytest.approx(success_rate(params, 2.0))
