"""Tests for utility primitives (Eq. (2))."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import AgentParameters
from repro.core.utility import UtilityComponents, discounted_value, utility_term

AGENT = AgentParameters(alpha=0.3, r=0.01)


class TestDiscountedValue:
    def test_no_horizon_no_discount(self):
        assert discounted_value(5.0, 0.01, 0.0) == 5.0

    def test_formula(self):
        assert discounted_value(5.0, 0.01, 10.0) == pytest.approx(
            5.0 * math.exp(-0.1)
        )

    def test_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            discounted_value(5.0, 0.01, -1.0)

    def test_rejects_nonfinite_value(self):
        with pytest.raises(ValueError):
            discounted_value(float("inf"), 0.01, 1.0)


class TestUtilityTerm:
    def test_success_earns_premium(self):
        # Eq. (2): (1 + alpha S) V e^{-rT} with S = 1
        expected = 1.3 * 2.0 * math.exp(-0.01 * 4.0)
        assert utility_term(AGENT, 2.0, 4.0, success=True) == pytest.approx(expected)

    def test_failure_no_premium(self):
        expected = 2.0 * math.exp(-0.01 * 4.0)
        assert utility_term(AGENT, 2.0, 4.0, success=False) == pytest.approx(expected)

    def test_premium_ratio(self):
        win = utility_term(AGENT, 1.0, 1.0, success=True)
        lose = utility_term(AGENT, 1.0, 1.0, success=False)
        assert win / lose == pytest.approx(1.3)


class TestUtilityComponents:
    def test_total(self):
        parts = UtilityComponents(base=1.0, premium=0.3, collateral=0.2)
        assert parts.total == pytest.approx(1.5)

    def test_addition(self):
        a = UtilityComponents(base=1.0, premium=0.1)
        b = UtilityComponents(base=2.0, collateral=0.5)
        combined = a + b
        assert combined.base == 3.0
        assert combined.premium == 0.1
        assert combined.collateral == 0.5

    def test_defaults_zero(self):
        assert UtilityComponents(base=1.0).total == 1.0
