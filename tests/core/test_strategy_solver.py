"""Tests for strategy objects, the solver facade and the equilibrium record."""

from __future__ import annotations

import pytest

from repro.core.backward_induction import BackwardInduction
from repro.core.equilibrium import StageUtilities
from repro.core.solver import solve_swap_game
from repro.core.strategy import Action, equilibrium_strategies
from repro.stochastic.rootfind import IntervalUnion


class TestAction:
    def test_values(self):
        assert Action.CONT.value == "cont"
        assert Action.STOP.value == "stop"


class TestStrategies:
    def test_alice_threshold_behaviour(self, params):
        alice, _bob = equilibrium_strategies(params, 2.0)
        thr = alice.p3_threshold
        assert alice.decide_t3(thr * 1.001) is Action.CONT
        assert alice.decide_t3(thr * 0.999) is Action.STOP
        assert alice.decide_t3(thr) is Action.STOP  # Eq. (19): stop at equality

    def test_alice_initiates_at_reference(self, params):
        alice, _bob = equilibrium_strategies(params, 2.0)
        assert alice.decide_t1() is Action.CONT

    def test_alice_declines_bad_rate(self, params):
        alice, _bob = equilibrium_strategies(params, 4.0)
        assert alice.decide_t1() is Action.STOP

    def test_bob_region_behaviour(self, params):
        _alice, bob = equilibrium_strategies(params, 2.0)
        lo, hi = bob.t2_region.bounds()
        mid = (lo + hi) / 2.0
        assert bob.decide_t2(mid) is Action.CONT
        assert bob.decide_t2(lo * 0.9) is Action.STOP
        assert bob.decide_t2(hi * 1.1) is Action.STOP

    def test_bob_always_redeems(self, params):
        _alice, bob = equilibrium_strategies(params, 2.0)
        assert bob.decide_t4() is Action.CONT


class TestStageUtilities:
    def test_best_action(self):
        assert StageUtilities(cont=2.0, stop=1.0).best_action == "cont"
        assert StageUtilities(cont=1.0, stop=2.0).best_action == "stop"

    def test_advantage(self):
        assert StageUtilities(cont=2.0, stop=0.5).advantage == 1.5


class TestSolveSwapGame:
    def test_consistency_with_raw_solver(self, params):
        eq = solve_swap_game(params, 2.0)
        raw = BackwardInduction(params, 2.0)
        assert eq.p3_threshold == pytest.approx(raw.p3_threshold())
        assert eq.success_rate == pytest.approx(raw.success_rate())
        assert eq.alice_t1.cont == pytest.approx(raw.alice_t1_cont())
        assert eq.bob_t1.cont == pytest.approx(raw.bob_t1_cont())

    def test_initiated_flag(self, params):
        assert solve_swap_game(params, 2.0).initiated
        assert not solve_swap_game(params, 4.0).initiated

    def test_unconditional_rate(self, params):
        good = solve_swap_game(params, 2.0)
        assert good.unconditional_success_rate == good.success_rate
        bad = solve_swap_game(params, 4.0)
        assert bad.unconditional_success_rate == 0.0

    def test_bob_t2_bounds_none_when_empty(self, params):
        eq = solve_swap_game(params.replace(alpha_a=0.0, alpha_b=0.0), 2.0)
        assert eq.bob_t2_bounds is None

    def test_strategies_embedded(self, params):
        eq = solve_swap_game(params, 2.0)
        assert eq.alice_strategy.initiate_at_t1 == eq.initiated
        assert eq.alice_strategy.p3_threshold == eq.p3_threshold
        assert eq.bob_strategy.t2_region == eq.bob_t2_region

    def test_summary_renders(self, params):
        text = solve_swap_game(params, 2.0).summary()
        assert "Success rate" in text
        assert "initiates" in text

    def test_summary_mentions_empty_region(self, params):
        text = solve_swap_game(params.replace(alpha_a=0.0, alpha_b=0.0), 2.0).summary()
        assert "empty" in text
