"""The indifference tie-breaking contract, tested once, in one place.

Convention (:data:`repro.core.equilibrium.INDIFFERENT_ACTION`): an
agent with ``U(cont) == U(stop)`` **stops**, at every decision point --
``best_action``, Alice's ``t3`` threshold, Bob's ``t2`` region
boundary, and the vectorised Monte Carlo counts all agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.backward_induction import BackwardInduction
from repro.core.equilibrium import INDIFFERENT_ACTION, StageUtilities
from repro.core.strategy import Action, AliceStrategy, BobStrategy
from repro.stochastic.rootfind import IntervalUnion


class TestConvention:
    def test_constant_is_stop(self):
        assert INDIFFERENT_ACTION == "stop"

    def test_best_action_tie_is_stop(self):
        tied = StageUtilities(cont=1.2345, stop=1.2345)
        assert tied.best_action == INDIFFERENT_ACTION
        assert tied.is_indifferent
        assert tied.advantage == 0.0

    def test_best_action_strict_cases(self):
        assert StageUtilities(cont=2.0, stop=1.0).best_action == "cont"
        assert StageUtilities(cont=1.0, stop=2.0).best_action == "stop"
        assert not StageUtilities(cont=2.0, stop=1.0).is_indifferent


class TestAliceT3:
    def test_exactly_at_threshold_stops(self):
        alice = AliceStrategy(initiate_at_t1=True, p3_threshold=1.5)
        assert alice.decide_t3(1.5) is Action.STOP
        assert alice.decide_t3(np.nextafter(1.5, 2.0)) is Action.CONT
        assert alice.decide_t3(np.nextafter(1.5, 0.0)) is Action.STOP


class TestBobT2:
    def test_boundaries_stop_interior_continues(self):
        bob = BobStrategy(t2_region=IntervalUnion.single(1.0, 2.0))
        assert bob.decide_t2(1.0) is Action.STOP
        assert bob.decide_t2(2.0) is Action.STOP
        assert bob.decide_t2(1.5) is Action.CONT
        assert bob.decide_t2(np.nextafter(2.0, 1.0)) is Action.CONT

    def test_equilibrium_region_boundary(self, params):
        solver = BackwardInduction(params, pstar=2.0)
        region = solver.bob_t2_region()
        lo, hi = region.bounds()
        bob = BobStrategy(t2_region=region)
        # at the indifference roots Bob stops; strictly inside he locks
        assert bob.decide_t2(lo) is Action.STOP
        assert bob.decide_t2(hi) is Action.STOP
        assert bob.decide_t2(0.5 * (lo + hi)) is Action.CONT


class TestMonteCarloConsistency:
    def test_counts_match_executable_strategy(self, params):
        """The vectorised region test equals decide_t2 on every sample,
        including hand-placed boundary points."""
        solver = BackwardInduction(params, pstar=2.0)
        region = solver.bob_t2_region()
        lo, hi = region.bounds()
        bob = BobStrategy(t2_region=region)
        p2 = np.array([lo, hi, 0.5 * (lo + hi), lo * 0.9, hi * 1.1])
        vectorised = np.zeros(len(p2), dtype=bool)
        for a, b in region.intervals:
            vectorised |= (p2 > a) & (p2 < b)
        executable = np.array(
            [bob.decide_t2(float(x)) is Action.CONT for x in p2]
        )
        assert (vectorised == executable).all()
