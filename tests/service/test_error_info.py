"""Units for the typed error record :class:`ServiceErrorInfo`."""

from __future__ import annotations

import dataclasses

import pytest

from repro.service.errors import (
    RequestTimeoutError,
    RequestValidationError,
    ServiceError,
    ServiceErrorInfo,
    SolveFailedError,
    WorkerCrashedError,
    error_payload,
)


class TestConstruction:
    def test_frozen(self):
        info = ServiceErrorInfo(code="timeout", message="too slow")
        with pytest.raises(dataclasses.FrozenInstanceError):
            info.code = "other"  # type: ignore[misc]

    def test_defaults_not_retryable(self):
        assert not ServiceErrorInfo(code="x", message="y").retryable


class TestFromException:
    @pytest.mark.parametrize(
        ("exc", "code", "retryable"),
        [
            (RequestValidationError("bad"), "invalid_request", False),
            (SolveFailedError("boom"), "solve_failed", False),
            (RequestTimeoutError("slow"), "timeout", True),
            (WorkerCrashedError("died"), "worker_crashed", True),
            (ServiceError("generic"), "service_error", False),
        ],
    )
    def test_service_errors_map_to_codes(self, exc, code, retryable):
        info = ServiceErrorInfo.from_exception(exc)
        assert info.code == code
        assert info.retryable is retryable
        assert info.message == str(exc)

    def test_foreign_exception_becomes_internal_error(self):
        info = ServiceErrorInfo.from_exception(RuntimeError("oops"))
        assert info.code == "internal_error"
        assert info.message == "oops"
        assert not info.retryable

    def test_message_falls_back_to_class_name(self):
        info = ServiceErrorInfo.from_exception(RuntimeError())
        assert info.message == "RuntimeError"


class TestWireFormat:
    def test_to_dict_is_exactly_the_historical_payload(self):
        info = ServiceErrorInfo(code="timeout", message="slow", retryable=True)
        assert info.to_dict() == {"code": "timeout", "message": "slow"}
        assert list(info.to_dict()) == ["code", "message"]

    def test_round_trip_without_retryable(self):
        info = ServiceErrorInfo(code="solve_failed", message="boom")
        assert ServiceErrorInfo.from_dict(info.to_dict()) == info

    def test_from_dict_reads_optional_retryable(self):
        info = ServiceErrorInfo.from_dict(
            {"code": "timeout", "message": "slow", "retryable": True}
        )
        assert info.retryable

    def test_error_payload_shim_matches(self):
        exc = SolveFailedError("boom")
        assert error_payload(exc) == (
            ServiceErrorInfo.from_exception(exc).to_dict()
        )


class TestRaise:
    def test_raises_service_error_with_code_prefix(self):
        info = ServiceErrorInfo(code="timeout", message="too slow")
        with pytest.raises(ServiceError, match="timeout: too slow"):
            info.raise_()
