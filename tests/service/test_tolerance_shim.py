"""The unified ``tolerance`` parameter and its one-release shims.

PR-7 collapsed the three historical spellings -- service
``surface_tolerance=``, config ``surface_tolerance=``, CLI
``--surface-tolerance`` -- into one canonical ``tolerance`` at every
layer. The old spellings keep working for one release behind
:func:`repro.deprecation.warn_once` shims; these tests pin (a) the
shims forward correctly, (b) they warn exactly once per process, and
(c) the canonical spelling stays silent.
"""

from __future__ import annotations

import warnings

import pytest

from repro.deprecation import _reset_for_tests, warn_once
from repro.server.config import ServerConfig
from repro.service.api import SwapService


@pytest.fixture(autouse=True)
def fresh_warn_state():
    _reset_for_tests()
    yield
    _reset_for_tests()


class TestWarnOnce:
    def test_warns_once_per_key(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_once("k1", "first")
            warn_once("k1", "first")
            warn_once("k2", "second")
        assert [str(w.message) for w in caught] == ["first", "second"]
        assert all(w.category is DeprecationWarning for w in caught)


class TestServiceShim:
    def test_canonical_tolerance_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = SwapService(max_workers=1, tolerance=1e-2)
        assert service._tolerance == 1e-2

    def test_deprecated_spelling_forwards_and_warns(self):
        with pytest.warns(DeprecationWarning, match="pass tolerance="):
            service = SwapService(max_workers=1, surface_tolerance=1e-2)
        assert service._tolerance == 1e-2

    def test_canonical_wins_when_both_are_given(self):
        with pytest.warns(DeprecationWarning):
            service = SwapService(
                max_workers=1, tolerance=5e-3, surface_tolerance=1e-1
            )
        assert service._tolerance == 5e-3

    def test_second_use_does_not_warn_again(self):
        with pytest.warns(DeprecationWarning):
            SwapService(max_workers=1, surface_tolerance=1e-2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SwapService(max_workers=1, surface_tolerance=1e-2)  # silent now

    def test_tolerance_is_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            SwapService(max_workers=1, tolerance=-1.0)
        with pytest.raises(ValueError, match="tolerance"):
            SwapService(max_workers=1, tolerance=float("nan"))


class TestConfigShim:
    def test_deprecated_field_folds_into_tolerance(self):
        with pytest.warns(DeprecationWarning, match="pass tolerance="):
            config = ServerConfig(surface_tolerance=1e-2)
        assert config.tolerance == 1e-2
        assert config.surface_tolerance is None  # folded, not duplicated

    def test_canonical_field_is_silent_and_wins(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = ServerConfig(tolerance=5e-3)
        assert config.tolerance == 5e-3
        with pytest.warns(DeprecationWarning):
            both = ServerConfig(tolerance=5e-3, surface_tolerance=1e-1)
        assert both.tolerance == 5e-3

    def test_tolerance_is_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            ServerConfig(tolerance=-0.5)


class TestCliShim:
    def _parse(self, *argv):
        from repro.cli import build_parser

        return build_parser().parse_args(list(argv))

    def test_canonical_flag_resolves_silently(self):
        from repro.cli import _resolve_tolerance

        args = self._parse("serve", "--tolerance", "0.01")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert _resolve_tolerance(args) == 0.01

    def test_deprecated_flag_resolves_with_warning(self):
        from repro.cli import _resolve_tolerance

        args = self._parse("serve", "--surface-tolerance", "0.01")
        with pytest.warns(DeprecationWarning, match="--tolerance"):
            assert _resolve_tolerance(args) == 0.01

    def test_canonical_flag_wins_when_both_are_given(self):
        from repro.cli import _resolve_tolerance

        args = self._parse(
            "serve", "--tolerance", "0.005", "--surface-tolerance", "0.1"
        )
        with pytest.warns(DeprecationWarning):
            assert _resolve_tolerance(args) == 0.005
