"""Canonical request keys: stability, sensitivity, seed derivation."""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.service.keys import KEY_VERSION, derive_seed, request_key
from repro.service.requests import SolveRequest, ValidateRequest


class TestKeyStability:
    def test_identical_requests_identical_keys(self, params):
        a = SolveRequest(pstar=2.0, params=params)
        b = SolveRequest(pstar=2.0, params=SwapParameters.default())
        assert request_key(a) == request_key(b)

    def test_key_is_versioned_hex(self):
        key = request_key(SolveRequest(pstar=2.0))
        prefix, digest = key.split("-")
        assert prefix == f"v{KEY_VERSION}"
        assert len(digest) == 64
        int(digest, 16)  # hex

    def test_solve_and_validate_keys_differ(self, params):
        solve = SolveRequest(pstar=2.0, params=params)
        validate = ValidateRequest(pstar=2.0, params=params)
        assert request_key(solve) != request_key(validate)


class TestKeySensitivity:
    @pytest.mark.parametrize(
        "override",
        [
            {"alpha_a": 0.31},
            {"alpha_b": 0.29},
            {"r_a": 0.011},
            {"r_b": 0.009},
            {"tau_a": 3.5},
            {"tau_b": 4.5},
            {"mu": 0.003},
            {"sigma": 0.11},
        ],
    )
    def test_any_parameter_changes_key(self, params, override):
        base = request_key(SolveRequest(pstar=2.0, params=params))
        bumped = request_key(
            SolveRequest(pstar=2.0, params=params.replace(**override))
        )
        assert base != bumped

    def test_pstar_and_collateral_change_key(self, params):
        base = request_key(SolveRequest(pstar=2.0, params=params))
        assert request_key(SolveRequest(pstar=2.1, params=params)) != base
        assert (
            request_key(SolveRequest(pstar=2.0, collateral=0.5, params=params))
            != base
        )

    def test_ulp_difference_changes_key(self, params):
        import numpy as np

        base = request_key(SolveRequest(pstar=2.0, params=params))
        nudged = request_key(
            SolveRequest(pstar=float(np.nextafter(2.0, 3.0)), params=params)
        )
        assert base != nudged

    def test_validate_fields_change_key(self, params):
        base = ValidateRequest(pstar=2.0, n_paths=1000, seed=1, params=params)
        for other in (
            ValidateRequest(pstar=2.0, n_paths=2000, seed=1, params=params),
            ValidateRequest(pstar=2.0, n_paths=1000, seed=2, params=params),
            ValidateRequest(pstar=2.0, n_paths=1000, seed=None, params=params),
            ValidateRequest(
                pstar=2.0, n_paths=1000, seed=1, protocol_level=True, params=params
            ),
        ):
            assert request_key(other) != request_key(base)


class TestSeedDerivation:
    def test_deterministic_across_calls(self):
        key = request_key(ValidateRequest(pstar=2.0))
        assert derive_seed(key) == derive_seed(key)

    def test_different_keys_different_seeds(self, params):
        k1 = request_key(ValidateRequest(pstar=2.0, params=params))
        k2 = request_key(ValidateRequest(pstar=2.1, params=params))
        assert derive_seed(k1) != derive_seed(k2)

    def test_seed_fits_in_int64(self):
        key = request_key(ValidateRequest(pstar=2.0))
        assert 0 <= derive_seed(key) < 2**63
