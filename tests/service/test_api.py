"""SwapService batch semantics: dedupe, caching, typed errors, parallel
reproducibility."""

from __future__ import annotations

import json

import pytest

from repro.core.collateral import CollateralEquilibrium, solve_collateral_game
from repro.core.solver import solve_swap_game
from repro.service.api import SwapService, default_service
from repro.service.errors import RequestValidationError, ServiceError
from repro.service.executor import ValidationResult, WorkerPool, execute_request
from repro.service.requests import SolveRequest, ValidateRequest
from repro.service.serialize import encode_result
from repro.simulation.montecarlo import empirical_success_rate


class TestSolveBatch:
    def test_matches_direct_solver_bit_for_bit(self, params):
        service = SwapService()
        [item] = service.solve_batch([SolveRequest(pstar=2.0, params=params)])
        direct = solve_swap_game(params, 2.0)
        assert item.ok and not item.cached
        assert item.value == direct
        assert item.value.p3_threshold == direct.p3_threshold

    def test_collateral_requests_dispatch_to_section_iv(self, params):
        service = SwapService()
        [item] = service.solve_batch(
            [SolveRequest(pstar=2.0, collateral=0.5, params=params)]
        )
        assert isinstance(item.value, CollateralEquilibrium)
        assert item.value == solve_collateral_game(params, 2.0, 0.5)

    def test_repeat_served_from_cache(self, params):
        service = SwapService()
        cold = service.solve_batch([SolveRequest(pstar=2.0, params=params)])
        warm = service.solve_batch([SolveRequest(pstar=2.0, params=params)])
        assert not cold[0].cached and warm[0].cached
        assert warm[0].value == cold[0].value
        stats = service.stats()["memory"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_within_batch_dedupe(self, params):
        service = SwapService()
        items = service.solve_batch(
            [SolveRequest(pstar=2.0, params=params)] * 5
            + [SolveRequest(pstar=2.1, params=params)]
        )
        assert len(items) == 6
        assert len({item.key for item in items}) == 2
        # five duplicates collapse onto one computation
        assert service.stats()["memory"]["puts"] == 2
        assert items[0].value == items[4].value

    def test_kind_check(self, params):
        service = SwapService()
        with pytest.raises(RequestValidationError):
            service.solve_batch([ValidateRequest(pstar=2.0, params=params)])
        with pytest.raises(RequestValidationError):
            service.validate_batch([SolveRequest(pstar=2.0, params=params)])

    def test_sweep_and_success_rates(self, params):
        service = SwapService()
        rates = service.success_rates([1.8, 2.0, 2.2], params=params)
        assert len(rates) == 3
        assert all(0.0 <= r <= 1.0 for r in rates)


class TestErrors:
    def test_bad_request_does_not_kill_batch(self, params, monkeypatch):
        import repro.service.executor as executor_module

        real = executor_module.solve_swap_game

        def flaky(p, pstar):
            if pstar == 1.9:
                raise ValueError("induced failure")
            return real(p, pstar)

        monkeypatch.setattr(executor_module, "solve_swap_game", flaky)
        service = SwapService()  # serial: executes in-process, patch applies
        items = service.run_batch(
            [
                SolveRequest(pstar=1.9, params=params),
                SolveRequest(pstar=2.0, params=params),
            ]
        )
        assert not items[0].ok
        assert items[0].error.code == "solve_failed"
        assert "induced failure" in items[0].error.message
        assert not items[0].error.retryable
        assert items[1].ok

    def test_failures_are_not_cached(self, params, monkeypatch):
        import repro.service.executor as executor_module

        real = executor_module.solve_swap_game
        calls = {"n": 0}

        def once_flaky(p, pstar):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")
            return real(p, pstar)

        monkeypatch.setattr(executor_module, "solve_swap_game", once_flaky)
        service = SwapService()
        request = SolveRequest(pstar=2.0, params=params)
        assert not service.run_batch([request])[0].ok
        retry = service.run_batch([request])[0]
        assert retry.ok and not retry.cached

    def test_unwrap_raises_service_error(self):
        from repro.service.api import BatchItem
        from repro.service.errors import ServiceErrorInfo

        item = BatchItem(
            key="k",
            ok=False,
            error=ServiceErrorInfo(code="solve_failed", message="boom"),
        )
        with pytest.raises(ServiceError, match="boom"):
            item.unwrap()

    def test_constructor_validation(self, params):
        with pytest.raises(RequestValidationError):
            SolveRequest(pstar=-1.0, params=params)
        with pytest.raises(RequestValidationError):
            SolveRequest(pstar=2.0, collateral=-0.5, params=params)
        with pytest.raises(RequestValidationError):
            ValidateRequest(pstar=2.0, n_paths=0, params=params)


class TestValidateBatch:
    def test_explicit_seed_matches_direct_call(self, params):
        service = SwapService()
        [item] = service.validate_batch(
            [ValidateRequest(pstar=2.0, n_paths=4_000, seed=9, params=params)]
        )
        direct = empirical_success_rate(params, 2.0, n_paths=4_000, seed=9)
        assert item.value.empirical == direct
        assert item.value.seed_used == 9

    def test_derived_seed_is_reproducible(self, params):
        request = ValidateRequest(pstar=2.0, n_paths=4_000, params=params)
        a = SwapService().validate_batch([request])[0].value
        b = SwapService().validate_batch([request])[0].value
        assert isinstance(a, ValidationResult)
        assert a == b
        assert a.seed_used == b.seed_used

    def test_parallel_reproduces_serial_exactly(self, params):
        requests = [
            ValidateRequest(pstar=k, n_paths=3_000, seed=5, params=params)
            for k in (1.7, 1.9, 2.0, 2.1, 2.3)
        ]
        serial = SwapService(max_workers=1).validate_batch(requests)
        parallel = SwapService(max_workers=3).validate_batch(requests)
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert json.dumps(encode_result(s.value), sort_keys=True) == json.dumps(
                encode_result(p.value), sort_keys=True
            )
            assert s.value == p.value


class TestDiskPersistence:
    def test_cache_survives_fresh_instance(self, params, tmp_path):
        request = SolveRequest(pstar=2.0, params=params)
        first = SwapService(cache_dir=str(tmp_path))
        cold = first.solve_batch([request])[0]
        second = SwapService(cache_dir=str(tmp_path))
        warm = second.solve_batch([request])[0]
        assert warm.cached
        assert warm.value == cold.value
        assert second.stats()["disk"]["hits"] == 1

    def test_validation_results_persist(self, params, tmp_path):
        request = ValidateRequest(pstar=2.0, n_paths=2_000, seed=1, params=params)
        first = SwapService(cache_dir=str(tmp_path)).validate_batch([request])[0]
        warm = SwapService(cache_dir=str(tmp_path)).validate_batch([request])[0]
        assert warm.cached
        assert warm.value == first.value


class TestExecutor:
    def test_worker_pool_serial_fallback(self, params):
        pool = WorkerPool(max_workers=1)
        request = SolveRequest(pstar=2.0, params=params)
        [result] = pool.map([(request, None)])
        assert result == solve_swap_game(params, 2.0)

    def test_execute_request_rejects_unknown(self):
        from repro.service.errors import SolveFailedError

        with pytest.raises(SolveFailedError):
            execute_request("not a request")  # type: ignore[arg-type]

    def test_pool_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)


class TestDefaultService:
    def test_shared_instance(self):
        assert default_service() is default_service()
