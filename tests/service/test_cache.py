"""Cache correctness: bit-for-bit results, persistence, counters."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.solver import solve_swap_game
from repro.obs.metrics import Registry, use_registry
from repro.service.cache import DiskCache, LRUCache, TieredCache
from repro.service.serialize import decode_result, encode_result


class TestLRU:
    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0


class TestDisk:
    def test_roundtrip_bit_for_bit(self, params, tmp_path):
        eq = solve_swap_game(params, 2.0)
        cache = DiskCache(tmp_path)
        cache.put("k", eq)
        back = cache.get("k")
        assert back == eq  # frozen dataclasses: exact field equality
        assert back.p3_threshold == eq.p3_threshold
        assert back.bob_t2_region.intervals == eq.bob_t2_region.intervals

    def test_miss_and_corruption(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("absent") is None
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None
        assert cache.stats.misses == 2

    def test_atomic_write_no_temp_leftovers(self, params, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", solve_swap_game(params, 2.0))
        assert not list(tmp_path.glob(".tmp-*"))
        assert len(cache) == 1


class TestDiskBound:
    @staticmethod
    def _fill(cache, params, pstars, tmp_path):
        """Put one entry per pstar, forcing strictly increasing mtimes."""
        for index, pstar in enumerate(pstars):
            cache.put(f"k{index}", solve_swap_game(params, pstar))
            # mtime granularity can be coarser than a put; pin the order
            os.utime(tmp_path / f"k{index}.json", (1000 + index, 1000 + index))

    def test_put_prunes_oldest_mtime(self, params, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        self._fill(cache, params, [1.8, 2.0, 2.2], tmp_path)
        cache.put("k3", solve_swap_game(params, 2.4))
        assert len(cache) == 2
        # the two oldest fell out; the two newest survive
        assert cache.get("k0") is None
        assert cache.get("k1") is None
        assert cache.get("k2") is not None
        assert cache.get("k3") is not None

    def test_pruning_counts_as_evictions(self, params, tmp_path):
        registry = Registry()
        with use_registry(registry):
            cache = DiskCache(tmp_path, max_entries=1)
            self._fill(cache, params, [1.8, 2.0, 2.2], tmp_path)
            assert len(cache) == 1
            assert cache.stats.evictions == 2
            evictions = registry.counter(
                "repro_cache_evictions_total", labelnames=("tier",)
            )
            assert evictions.value(tier="disk") == 2

    def test_unbounded_by_default(self, params, tmp_path):
        cache = DiskCache(tmp_path)
        self._fill(cache, params, [1.8, 2.0, 2.2], tmp_path)
        assert len(cache) == 3
        assert cache.stats.evictions == 0

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_entries=0)

    def test_build_plumbs_disk_entries(self, params, tmp_path):
        cache = TieredCache.build(cache_dir=str(tmp_path), disk_entries=2)
        assert cache.disk.max_entries == 2
        for index, pstar in enumerate([1.8, 2.0, 2.2]):
            cache.put(f"k{index}", solve_swap_game(params, pstar))
            os.utime(tmp_path / f"k{index}.json", (1000 + index, 1000 + index))
        assert len(cache.disk) == 2
        # memory tier is unaffected by the disk bound
        assert len(cache.memory) == 3


class TestDiskReadTiming:
    def test_read_duration_observed_on_every_outcome(self, params, tmp_path):
        registry = Registry()
        with use_registry(registry):
            cache = DiskCache(tmp_path)
            histogram = registry.histogram(
                "repro_cache_disk_seconds", labelnames=("op",)
            )
            assert cache.get("absent") is None  # miss
            assert histogram.count(op="read") == 1
            (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
            assert cache.get("bad") is None  # corrupt
            assert histogram.count(op="read") == 2
            cache.put("k", solve_swap_game(params, 2.0))
            assert cache.get("k") is not None  # hit
            assert histogram.count(op="read") == 3
            assert histogram.count(op="write") == 1


class TestTiered:
    def test_disk_hit_promotes_to_memory(self, params, tmp_path):
        eq = solve_swap_game(params, 2.0)
        first = TieredCache.build(cache_dir=str(tmp_path))
        first.put("k", eq)
        # fresh instance: memory empty, disk warm
        second = TieredCache.build(cache_dir=str(tmp_path))
        assert second.get("k") == eq
        assert second.memory.stats.misses == 1
        assert second.disk.stats.hits == 1
        # now served from memory
        assert second.get("k") == eq
        assert second.memory.stats.hits == 1

    def test_memory_only_when_no_dir(self):
        cache = TieredCache.build()
        assert cache.disk is None
        assert cache.get("k") is None
        assert "disk" not in cache.stats()


class TestEncodeStability:
    def test_encode_is_deterministic(self, params):
        eq = solve_swap_game(params, 2.0)
        a = json.dumps(encode_result(eq), sort_keys=True)
        b = json.dumps(encode_result(solve_swap_game(params, 2.0)), sort_keys=True)
        assert a == b

    def test_json_roundtrip_exact(self, params):
        eq = solve_swap_game(params, 1.7)
        wire = json.loads(json.dumps(encode_result(eq)))
        assert decode_result(wire) == eq
