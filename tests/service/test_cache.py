"""Cache correctness: bit-for-bit results, persistence, counters."""

from __future__ import annotations

import json

from repro.core.solver import solve_swap_game
from repro.service.cache import DiskCache, LRUCache, TieredCache
from repro.service.serialize import decode_result, encode_result


class TestLRU:
    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0


class TestDisk:
    def test_roundtrip_bit_for_bit(self, params, tmp_path):
        eq = solve_swap_game(params, 2.0)
        cache = DiskCache(tmp_path)
        cache.put("k", eq)
        back = cache.get("k")
        assert back == eq  # frozen dataclasses: exact field equality
        assert back.p3_threshold == eq.p3_threshold
        assert back.bob_t2_region.intervals == eq.bob_t2_region.intervals

    def test_miss_and_corruption(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("absent") is None
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        assert cache.get("bad") is None
        assert cache.stats.misses == 2

    def test_atomic_write_no_temp_leftovers(self, params, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("k", solve_swap_game(params, 2.0))
        assert not list(tmp_path.glob(".tmp-*"))
        assert len(cache) == 1


class TestTiered:
    def test_disk_hit_promotes_to_memory(self, params, tmp_path):
        eq = solve_swap_game(params, 2.0)
        first = TieredCache.build(cache_dir=str(tmp_path))
        first.put("k", eq)
        # fresh instance: memory empty, disk warm
        second = TieredCache.build(cache_dir=str(tmp_path))
        assert second.get("k") == eq
        assert second.memory.stats.misses == 1
        assert second.disk.stats.hits == 1
        # now served from memory
        assert second.get("k") == eq
        assert second.memory.stats.hits == 1

    def test_memory_only_when_no_dir(self):
        cache = TieredCache.build()
        assert cache.disk is None
        assert cache.get("k") is None
        assert "disk" not in cache.stats()


class TestEncodeStability:
    def test_encode_is_deterministic(self, params):
        eq = solve_swap_game(params, 2.0)
        a = json.dumps(encode_result(eq), sort_keys=True)
        b = json.dumps(encode_result(solve_swap_game(params, 2.0)), sort_keys=True)
        assert a == b

    def test_json_roundtrip_exact(self, params):
        eq = solve_swap_game(params, 1.7)
        wire = json.loads(json.dumps(encode_result(eq)))
        assert decode_result(wire) == eq
