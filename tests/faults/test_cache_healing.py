"""Disk-cache chaos: quarantine, checksums, absorbed I/O errors.

The invariant under test: a rotten disk entry is *never* served -- it
is quarantined on first sight (one miss, one re-solve) -- and a
tampered-but-decodable entry is caught by its checksum, so the cache
can return a correct number or a miss, never a wrong number.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.service.api import SwapService
from repro.service.cache import QUARANTINE_SUFFIX, DiskCache
from repro.service.serialize import encode_result
from tests.faults.conftest import counter_value


@pytest.fixture(scope="module")
def equilibrium():
    return SwapService(max_workers=1).solve(pstar=2.0)


class TestQuarantine:
    def test_injected_corruption_quarantines_once(
        self, tmp_path, registry, equilibrium
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_corrupt", count=1),), seed=0
        )
        cache = DiskCache(tmp_path, injector=plan)
        cache.put("k1", equilibrium)
        # the entry on disk is genuinely garbled now
        assert cache.get("k1") is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not (tmp_path / "k1.json").exists()
        assert (tmp_path / ("k1.json" + QUARANTINE_SUFFIX)).exists()
        # second lookup: plain miss, never re-parses the bad file
        assert cache.get("k1") is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2
        assert (
            counter_value(registry, "repro_cache_corrupt_total", tier="disk")
            == 1
        )

    def test_requarantined_entry_heals_on_rewrite(
        self, tmp_path, registry, equilibrium
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_corrupt", count=1),), seed=0
        )
        cache = DiskCache(tmp_path, injector=plan)
        cache.put("k1", equilibrium)
        assert cache.get("k1") is None  # quarantined
        cache.put("k1", equilibrium)  # injector exhausted: good write
        healed = cache.get("k1")
        assert healed is not None
        assert healed.success_rate == equilibrium.success_rate

    def test_quarantined_files_invisible_to_len_and_prune(
        self, tmp_path, registry, equilibrium
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_corrupt", count=1),), seed=0
        )
        cache = DiskCache(tmp_path, max_entries=2, injector=plan)
        cache.put("k1", equilibrium)  # garbled
        assert cache.get("k1") is None
        cache.put("k2", equilibrium)
        cache.put("k3", equilibrium)
        assert len(cache) == 2
        assert (tmp_path / ("k1.json" + QUARANTINE_SUFFIX)).exists()


class TestChecksum:
    def test_tampered_payload_is_never_served(
        self, tmp_path, registry, equilibrium
    ):
        # valid JSON, wrong numbers: only the checksum can catch this
        cache = DiskCache(tmp_path)
        cache.put("k1", equilibrium)
        path = tmp_path / "k1.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["result"]["success_rate"] = 0.123456789
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get("k1") is None  # wrong number never comes back
        assert cache.stats.corrupt == 1
        assert (tmp_path / ("k1.json" + QUARANTINE_SUFFIX)).exists()

    def test_untampered_entry_round_trips(self, tmp_path, registry, equilibrium):
        cache = DiskCache(tmp_path)
        cache.put("k1", equilibrium)
        value = cache.get("k1")
        assert value is not None
        assert value.success_rate == equilibrium.success_rate
        assert cache.stats.corrupt == 0

    def test_legacy_entry_without_checksum_stays_readable(
        self, tmp_path, registry, equilibrium
    ):
        # entries written before checksums existed must not quarantine
        path = tmp_path / "k1.json"
        path.write_text(
            json.dumps({"key": "k1", "result": encode_result(equilibrium)}),
            encoding="utf-8",
        )
        cache = DiskCache(tmp_path)
        value = cache.get("k1")
        assert value is not None
        assert value.success_rate == equilibrium.success_rate


class TestIOErrors:
    def test_read_error_degrades_to_miss(self, tmp_path, registry, equilibrium):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_io_error", after=1, count=1),),
            seed=0,
        )
        cache = DiskCache(tmp_path, injector=plan)
        cache.put("k1", equilibrium)  # event 1: write untouched
        assert cache.get("k1") is None  # event 2: injected read failure
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0
        assert (tmp_path / "k1.json").exists()  # the file itself is fine
        value = cache.get("k1")  # injector exhausted: served again
        assert value is not None
        assert value.success_rate == equilibrium.success_rate
        assert (
            counter_value(registry, "repro_cache_io_errors_total", tier="disk")
            == 1
        )

    def test_write_error_skips_persistence_quietly(
        self, tmp_path, registry, equilibrium
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_io_error", count=1),), seed=0
        )
        cache = DiskCache(tmp_path, injector=plan)
        cache.put("k1", equilibrium)  # injected write failure, absorbed
        assert cache.stats.puts == 0
        assert not (tmp_path / "k1.json").exists()
        cache.put("k1", equilibrium)  # next write lands
        assert cache.get("k1") is not None

    def test_disk_slow_stalls_but_serves_correctly(
        self, tmp_path, registry, equilibrium
    ):
        import time

        plan = InjectionPlan(
            faults=(FaultSpec(kind="disk_slow", delay=0.05, count=1),), seed=0
        )
        cache = DiskCache(tmp_path, injector=plan)
        started = time.perf_counter()
        cache.put("k1", equilibrium)  # stalled write
        assert time.perf_counter() - started >= 0.05
        value = cache.get("k1")
        assert value is not None
        assert value.success_rate == equilibrium.success_rate


class TestServiceIntegration:
    def test_corrupt_disk_entry_heals_through_the_service(
        self, tmp_path, registry
    ):
        # a fresh service (cold memory tier) must re-solve around a
        # corrupted disk entry and answer the correct number
        clean = SwapService(max_workers=1)
        expected = clean.solve(pstar=2.0)

        first = SwapService(max_workers=1, cache_dir=str(tmp_path))
        first.solve(pstar=2.0)
        [entry] = list(tmp_path.glob("*.json"))
        entry.write_text('{"key": "rotten', encoding="utf-8")

        second = SwapService(max_workers=1, cache_dir=str(tmp_path))
        value = second.solve(pstar=2.0)
        assert value.success_rate == expected.success_rate
        assert second.stats()["disk"]["corrupt"] == 1
