"""Chaos-suite fixtures.

Every test here runs against a private metrics registry so assertions
on ``repro_fault_injected_total`` / ``repro_degraded_total`` see only
their own traffic. The real-socket server fixtures are the same ones
the server suite uses (re-exported from ``tests.server.conftest``):
chaos scenarios exercise actual loopback TCP, not mocked transports.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import Registry, use_registry
from tests.server.conftest import make_client, make_server  # noqa: F401


@pytest.fixture()
def registry():
    """A fresh private registry installed for the duration of the test."""
    fresh = Registry()
    with use_registry(fresh):
        yield fresh


def counter_value(registry, name: str, **labels) -> float:
    """Total of one metric's matching series (0.0 when absent)."""
    metric = registry.snapshot().get(name)
    if metric is None:
        return 0.0
    return sum(
        sample["value"]
        for sample in metric["samples"]
        if all(sample["labels"].get(k) == v for k, v in labels.items())
    )
