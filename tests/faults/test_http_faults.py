"""HTTP-layer chaos over real sockets: drops and stalls, both sides.

Server-side ``http_drop`` closes the connection without a response;
server-side ``http_slow`` stalls the handler. Client-side variants
fail or stall before the socket is touched. In every case the client's
retry discipline must converge on the correct answer.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.server.client import RetriesExhaustedError, RetryPolicy, SwapClient
from repro.service.api import SwapService
from tests.faults.conftest import counter_value


@pytest.fixture(scope="module")
def expected_rate():
    return SwapService(max_workers=1).solve(pstar=2.0).success_rate


class TestServerSideDrop:
    def test_dropped_connection_is_retried_to_the_right_answer(
        self, registry, make_server, make_client, expected_rate
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="http_drop", match="/v1/solve", count=1),),
            seed=0,
        )
        service = SwapService(max_workers=1, faults=plan)
        server = make_server(service=service)
        client = make_client(
            server, retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        )
        result = client.solve(pstar=2.0)
        assert result.success_rate == expected_rate
        assert service.faults.injected_total("http_drop") == 1
        assert (
            counter_value(
                registry, "repro_http_rejected_total", reason="fault_drop"
            )
            == 1
        )
        assert (
            counter_value(registry, "repro_fault_injected_total", kind="http_drop")
            == 1
        )

    def test_sustained_drop_exhausts_retries_with_typed_error(
        self, registry, make_server, make_client
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="http_drop", match="/v1/solve"),), seed=0
        )
        service = SwapService(max_workers=1, faults=plan)
        server = make_server(service=service)
        client = make_client(
            server, retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02)
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.solve(pstar=2.0)
        assert excinfo.value.attempts == 2
        # ops routes are not matched by the /v1/solve spec: still alive
        assert client.health()

    def test_drop_spec_does_not_hit_other_routes(
        self, registry, make_server, make_client, expected_rate
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="http_drop", match="/v1/validate"),), seed=0
        )
        service = SwapService(max_workers=1, faults=plan)
        server = make_server(service=service)
        client = make_client(server)
        assert client.solve(pstar=2.0).success_rate == expected_rate
        assert service.faults.injected_total() == 0


class TestServerSideSlow:
    def test_slow_response_still_correct(
        self, registry, make_server, make_client, expected_rate
    ):
        plan = InjectionPlan(
            faults=(
                FaultSpec(kind="http_slow", match="/v1/solve", delay=0.1, count=1),
            ),
            seed=0,
        )
        service = SwapService(max_workers=1, faults=plan)
        server = make_server(service=service)
        client = make_client(server)
        started = time.perf_counter()
        result = client.solve(pstar=2.0)
        elapsed = time.perf_counter() - started
        assert result.success_rate == expected_rate
        assert elapsed >= 0.1
        assert service.faults.injected_total("http_slow") == 1


class TestClientSideFaults:
    def test_client_drop_is_retried_transparently(
        self, registry, make_server, expected_rate
    ):
        server = make_server()
        plan = InjectionPlan(
            faults=(FaultSpec(kind="http_drop", match="/v1/solve", count=1),),
            seed=0,
        )
        client = SwapClient(
            f"http://127.0.0.1:{server.port}",
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05),
            faults=plan,
        )
        result = client.solve(pstar=2.0)
        assert result.success_rate == expected_rate
        assert client.faults.injected_total("http_drop") == 1

    def test_client_slow_stalls_before_the_socket(
        self, registry, make_server, expected_rate
    ):
        server = make_server()
        plan = InjectionPlan(
            faults=(
                FaultSpec(kind="http_slow", match="/v1/solve", delay=0.1, count=1),
            ),
            seed=0,
        )
        client = SwapClient(
            f"http://127.0.0.1:{server.port}",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
            faults=plan,
        )
        started = time.perf_counter()
        result = client.solve(pstar=2.0)
        assert time.perf_counter() - started >= 0.1
        assert result.success_rate == expected_rate
