"""Worker-pool chaos: crashes heal, hangs stay bounded, batches survive.

The load-bearing assertions: an injected ``worker_crash`` kills a real
pool process (``os._exit``), the pool rebuilds itself and requeues the
surviving requests, and every requeued request still answers the
*correct* number -- one crash never cascades into batch-wide failure.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.service.api import SwapService
from repro.service.errors import ServiceError, WorkerCrashedError
from repro.service.executor import WorkerPool
from repro.service.requests import SolveRequest
from tests.faults.conftest import counter_value

PSTARS = [1.8, 2.0, 2.2, 2.4]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free success rates (scalar path, the one run_batch uses)."""
    service = SwapService(max_workers=1)
    items = service.run_batch([SolveRequest(pstar=pstar) for pstar in PSTARS])
    return {
        pstar: item.unwrap().success_rate for pstar, item in zip(PSTARS, items)
    }


def solve_requests():
    return [SolveRequest(pstar=pstar) for pstar in PSTARS]


class TestPooledCrashHealing:
    def test_single_crash_heals_and_every_answer_is_correct(
        self, registry, baseline
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="worker_crash", count=1),), seed=3
        )
        service = SwapService(max_workers=2, faults=plan)
        items = service.run_batch(solve_requests())
        assert all(item.ok for item in items)
        for pstar, item in zip(PSTARS, items):
            assert item.value.success_rate == baseline[pstar]
        assert service.faults.injected_total("worker_crash") == 1
        assert counter_value(registry, "repro_pool_rebuilds_total") >= 1
        assert (
            counter_value(registry, "repro_degraded_total", path="pool_rebuild")
            >= 1
        )

    def test_targeted_crash_only_requeues_not_fails(self, registry, baseline):
        # crash exactly the pstar=2.2 request; everyone still answers
        plan = InjectionPlan(
            faults=(
                FaultSpec(kind="worker_crash", match='"pstar":2.2', count=1),
            ),
            seed=1,
        )
        service = SwapService(max_workers=2, faults=plan)
        items = service.run_batch(solve_requests())
        assert all(item.ok for item in items)
        for pstar, item in zip(PSTARS, items):
            assert item.value.success_rate == baseline[pstar]
        assert service.faults.injected_total("worker_crash") == 1

    def test_requeue_budget_exhaustion_is_typed_never_a_hang(self, registry):
        # every dispatch crashes: after max_requeues+1 attempts each
        # request surfaces WorkerCrashedError -- typed and retryable
        plan = InjectionPlan(faults=(FaultSpec(kind="worker_crash"),), seed=0)
        pool = WorkerPool(max_workers=2, faults=plan, max_requeues=1)
        outcomes = pool.map([(request, None) for request in solve_requests()])
        assert all(isinstance(out, WorkerCrashedError) for out in outcomes)
        assert all(out.retryable for out in outcomes)

    def test_match_key_is_canonical_payload(self, registry):
        # the executor-site key is the canonical request payload, so a
        # plan can target one request without knowing dispatch order
        from repro.service.keys import canonical_payload

        request = SolveRequest(pstar=2.2)
        assert '"pstar":2.2' in canonical_payload(request)


class TestSerialFaults:
    def test_serial_crash_is_typed_and_isolated(self, registry, baseline):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="worker_crash", count=1),), seed=0
        )
        service = SwapService(max_workers=1, faults=plan)
        items = service.run_batch(solve_requests())
        failed = [item for item in items if not item.ok]
        assert len(failed) == 1
        assert failed[0].error.code == "worker_crashed"
        assert failed[0].error.retryable
        for pstar, item in zip(PSTARS, items):
            if item.ok:
                assert item.value.success_rate == baseline[pstar]
        # the failure was transient: resubmitting the batch heals it
        retried = service.run_batch(solve_requests())
        assert all(item.ok for item in retried)
        for pstar, item in zip(PSTARS, retried):
            assert item.value.success_rate == baseline[pstar]

    def test_serial_hang_delays_but_answers_correctly(self, registry, baseline):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="worker_hang", delay=0.05, count=1),),
            seed=0,
        )
        service = SwapService(max_workers=1, faults=plan)
        items = service.run_batch(solve_requests())
        assert all(item.ok for item in items)
        for pstar, item in zip(PSTARS, items):
            assert item.value.success_rate == baseline[pstar]
        assert service.faults.injected_total("worker_hang") == 1


class TestPoolConstruction:
    def test_negative_requeue_budget_rejected(self):
        with pytest.raises(ValueError, match="max_requeues"):
            WorkerPool(max_workers=2, max_requeues=-1)

    def test_batch_item_errors_never_raise(self, registry):
        # the invariant at the service boundary: chaos produces typed
        # per-item errors, not exceptions out of run_batch
        plan = InjectionPlan(faults=(FaultSpec(kind="worker_crash"),), seed=0)
        service = SwapService(max_workers=1, faults=plan)
        items = service.run_batch(solve_requests())
        for item in items:
            assert not item.ok
            assert item.error.retryable
            with pytest.raises(ServiceError):
                item.unwrap()
