"""Plan/injector unit tests: validation, schedules, determinism."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectionPlan,
    NULL_INJECTOR,
    NullInjector,
    build_injector,
)


class TestFaultSpecValidation:
    def test_every_documented_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="http_drop", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="http_drop", probability=-0.1)

    def test_count_and_after_bounds(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="http_drop", count=0)
        with pytest.raises(ValueError, match="after"):
            FaultSpec(kind="http_drop", after=-1)

    def test_delay_must_be_finite(self):
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(kind="http_slow", delay=float("inf"))

    def test_match_is_substring_predicate(self):
        spec = FaultSpec(kind="worker_crash", match='"pstar":2.5')
        assert spec.matches('{"kind":"solve","pstar":2.5}')
        assert not spec.matches('{"kind":"solve","pstar":2.0}')
        assert FaultSpec(kind="worker_crash").matches("anything at all")


class TestPlanRoundTrip:
    def test_dict_round_trip_is_exact(self):
        plan = InjectionPlan(
            faults=(
                FaultSpec(kind="worker_crash", match="x", count=1),
                FaultSpec(kind="http_slow", probability=0.25, delay=0.5, after=3),
            ),
            seed=42,
        )
        assert InjectionPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="cache_corrupt", count=2),), seed=7
        )
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert InjectionPlan.load(path) == plan

    def test_load_rejects_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            InjectionPlan.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            InjectionPlan.load(bad)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            InjectionPlan.from_dict({"seed": 0, "faults": [], "extra": 1})
        with pytest.raises(ValueError, match="unknown fault-spec fields"):
            InjectionPlan.from_dict(
                {"faults": [{"kind": "http_drop", "severity": "bad"}]}
            )
        with pytest.raises(ValueError, match="needs a 'kind'"):
            InjectionPlan.from_dict({"faults": [{"match": "x"}]})

    def test_plan_file_format_documented_example(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "seed": 7,
                    "faults": [
                        {"kind": "worker_crash", "match": '"pstar":2.5', "count": 1},
                        {"kind": "http_slow", "probability": 0.25, "delay": 0.05},
                    ],
                }
            ),
            encoding="utf-8",
        )
        plan = InjectionPlan.load(path)
        assert len(plan) == 2
        assert plan.faults[0].count == 1


class TestInjectorSchedules:
    def test_count_caps_injections(self, registry):
        injector = FaultInjector(
            InjectionPlan(faults=(FaultSpec(kind="http_drop", count=2),))
        )
        fired = [injector.fires("http_drop") for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert injector.injected_total("http_drop") == 2

    def test_after_skips_leading_events(self, registry):
        injector = FaultInjector(
            InjectionPlan(faults=(FaultSpec(kind="engine_error", after=3),))
        )
        fired = [injector.fires("engine_error") for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_match_limits_eligibility(self, registry):
        injector = FaultInjector(
            InjectionPlan(
                faults=(FaultSpec(kind="worker_crash", match="target", count=1),)
            )
        )
        assert not injector.fires("worker_crash", "other request")
        assert injector.fires("worker_crash", "the target request")
        assert not injector.fires("worker_crash", "the target request")

    def test_wrong_kind_never_fires(self, registry):
        injector = FaultInjector(
            InjectionPlan(faults=(FaultSpec(kind="worker_crash"),))
        )
        assert not injector.fires("http_drop")
        assert injector.delay_for("http_slow") is None

    def test_probability_stream_is_seed_deterministic(self, registry):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="http_drop", probability=0.5),), seed=123
        )
        first = [FaultInjector(plan).fires("http_drop") for _ in range(1)]
        # replaying the same plan yields the same decision sequence
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.fires("http_drop") for _ in range(64)]
        seq_b = [b.fires("http_drop") for _ in range(64)]
        assert seq_a == seq_b
        assert True in seq_a and False in seq_a  # actually probabilistic
        del first

    def test_different_seeds_give_different_streams(self, registry):
        spec = (FaultSpec(kind="http_drop", probability=0.5),)
        seq = {}
        for seed in (1, 2):
            injector = FaultInjector(InjectionPlan(faults=spec, seed=seed))
            seq[seed] = tuple(injector.fires("http_drop") for _ in range(64))
        assert seq[1] != seq[2]

    def test_delay_for_returns_spec_delay(self, registry):
        injector = FaultInjector(
            InjectionPlan(faults=(FaultSpec(kind="disk_slow", delay=0.125),))
        )
        assert injector.delay_for("disk_slow") == 0.125

    def test_first_matching_spec_wins_but_all_advance(self, registry):
        injector = FaultInjector(
            InjectionPlan(
                faults=(
                    FaultSpec(kind="http_drop", after=1),
                    FaultSpec(kind="http_drop", count=1),
                )
            )
        )
        # event 1: spec0 still in 'after' window -> spec1 fires
        assert injector.decide("http_drop") is injector.plan.faults[1]
        # event 2: spec0 past its window and wins priority
        assert injector.decide("http_drop") is injector.plan.faults[0]
        snapshot = injector.snapshot()
        assert [entry["eligible"] for entry in snapshot] == [2, 2]

    def test_injection_metric_and_snapshot(self, registry):
        from tests.faults.conftest import counter_value

        injector = FaultInjector(
            InjectionPlan(faults=(FaultSpec(kind="oracle_outage", count=1),))
        )
        assert injector.fires("oracle_outage", "release_bob_deposit")
        assert (
            counter_value(
                registry, "repro_fault_injected_total", kind="oracle_outage"
            )
            == 1
        )
        assert injector.snapshot()[0]["injected"] == 1


class TestBuildInjector:
    def test_none_gives_shared_null(self):
        assert build_injector(None) is NULL_INJECTOR
        assert not NULL_INJECTOR.enabled

    def test_plan_path_and_injector_passthrough(self, tmp_path, registry):
        plan = InjectionPlan(faults=(FaultSpec(kind="http_drop"),))
        path = tmp_path / "plan.json"
        plan.dump(path)
        from_path = build_injector(str(path))
        assert from_path.plan == plan
        from_plan = build_injector(plan)
        assert isinstance(from_plan, FaultInjector)
        assert build_injector(from_plan) is from_plan

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="faults must be"):
            build_injector(123)

    def test_null_injector_is_inert(self):
        null = NullInjector()
        assert null.decide("worker_crash") is None
        assert not null.fires("worker_crash")
        assert null.delay_for("disk_slow") is None
        assert not null.sleep("http_slow")
        assert null.snapshot() == []
        assert null.injected_total() == 0
