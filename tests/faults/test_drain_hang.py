"""Graceful drain while an injected ``worker_hang`` is in flight.

The satellite scenario: a request hangs in the worker past the
server's deadline while healthy traffic continues. The server must
answer the healthy requests, 504 the hung one *at the deadline* (not
at the hang's end), drain cleanly, and exit -- no request held hostage
by a stuck worker.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FaultSpec, InjectionPlan
from repro.server.client import RetriesExhaustedError, RetryPolicy, SwapClient
from repro.service.api import SwapService
from tests.server.conftest import request_in_thread

HANG_SECONDS = 30.0  # far past the deadline: only a 504 can end the wait
DEADLINE = 0.75


@pytest.fixture()
def hung_setup(make_server):
    plan = InjectionPlan(
        faults=(
            FaultSpec(
                kind="worker_hang",
                match='"pstar":3.25',
                delay=HANG_SECONDS,
                count=1,
            ),
        ),
        seed=0,
    )
    service = SwapService(max_workers=1, faults=plan)
    server = make_server(service=service, deadline=DEADLINE, drain_timeout=10.0)
    return server, service


def one_shot_client(server) -> SwapClient:
    # no retries: the test wants to see the 504 itself, not a retry of it
    return SwapClient(
        f"http://127.0.0.1:{server.port}",
        retry=RetryPolicy(max_attempts=1),
        timeout=30.0,
    )


class TestDrainWithHungRequest:
    def test_sigterm_drain_504s_the_hung_request_and_exits_cleanly(
        self, registry, hung_setup
    ):
        server, service = hung_setup
        client = one_shot_client(server)

        started = time.perf_counter()
        hung = request_in_thread(lambda: client.solve(pstar=3.25))
        # wait for the hung request to be admitted and in flight
        deadline = time.time() + 5.0
        while server.gate.inflight == 0 and time.time() < deadline:
            time.sleep(0.005)
        assert server.gate.inflight == 1

        # healthy traffic is still served while the hang is in flight
        healthy = client.solve(pstar=2.0)
        expected = SwapService(max_workers=1).solve(pstar=2.0).success_rate
        assert healthy.success_rate == expected

        # what SIGTERM triggers (serve() wires the signal to shutdown):
        # stop accepting, wait for in-flight work, flush, exit
        drained = server.shutdown(drain=True)
        elapsed = time.perf_counter() - started
        assert drained  # the hung request did NOT hold the drain hostage
        # drain completed at the 504 deadline, far before the hang ends
        assert elapsed < HANG_SECONDS / 2

        hung.join(timeout=10.0)
        assert not hung.is_alive()
        assert isinstance(hung.error, RetriesExhaustedError)
        last = hung.error.last
        assert last.status == 504
        assert last.error["code"] == "deadline_exceeded"
        assert last.retryable  # typed, retryable: resubmit elsewhere
        assert service.faults.injected_total("worker_hang") == 1

    def test_draining_server_rejects_new_work_with_typed_503(
        self, registry, hung_setup
    ):
        server, _service = hung_setup
        client = one_shot_client(server)
        assert client.ready()
        server._draining.set()
        assert not client.ready()
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.solve(pstar=2.0)
        assert excinfo.value.last.status == 503
        assert excinfo.value.last.error["code"] == "draining"
