"""Circuit-breaker state machine + its interplay with client retries.

The satellite scenario: a client hammering an always-503 server
exhausts its per-request retry budget enough times to open the
circuit (further calls fail locally, no sockets); once the server
recovers, the half-open probe closes the circuit again.
"""

from __future__ import annotations

import time

import pytest

from repro.server.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.server.client import (
    CircuitOpenError,
    RetriesExhaustedError,
    RetryPolicy,
    SwapClient,
)
from repro.service.api import SwapService
from tests.faults.conftest import counter_value


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestStateMachine:
    def test_starts_closed_and_trips_at_threshold(self, registry):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, registry):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken: 1, not 2

    def test_half_open_after_reset_timeout(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent call refused

    def test_probe_success_closes(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # fully open for business

    def test_probe_failure_reopens_and_restarts_clock(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=1.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # half-open probe fails: straight open
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert breaker.state == OPEN  # clock restarted at the re-open
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_gauge_tracks_state(self, registry):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )

        def gauge() -> float:
            [sample] = registry.snapshot()["repro_client_circuit_state"][
                "samples"
            ]
            return sample["value"]

        assert gauge() == 0
        breaker.record_failure()
        assert gauge() == 2
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN
        assert gauge() == 1
        breaker.record_success()
        assert gauge() == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0.0)


class TestRetryInterplay:
    """Satellite: RetryPolicy x CircuitBreaker against a live server."""

    def test_sustained_503_opens_circuit_and_recovery_closes_it(
        self, registry, make_server
    ):
        server = make_server()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.05)
        client = SwapClient(
            f"http://127.0.0.1:{server.port}",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
            sleep=lambda _s: None,
            circuit=breaker,
        )
        expected = SwapService(max_workers=1).solve(pstar=2.0).success_rate
        assert client.solve(pstar=2.0).success_rate == expected  # healthy

        server._draining.set()  # the server now answers 503 draining
        for _ in range(2):
            with pytest.raises(RetriesExhaustedError):
                client.solve(pstar=2.0)
        # threshold reached: the circuit refuses locally, no socket I/O
        with pytest.raises(CircuitOpenError):
            client.solve(pstar=2.0)
        assert breaker.state == OPEN

        server._draining.clear()  # the server recovered
        time.sleep(0.06)  # reset timeout elapses: half-open
        assert client.solve(pstar=2.0).success_rate == expected  # the probe
        assert breaker.state == CLOSED
        # and stays closed for subsequent traffic
        assert client.solve(pstar=2.0).success_rate == expected

    def test_deterministic_rejections_do_not_trip_the_breaker(
        self, registry, make_server, make_client
    ):
        from repro.server.client import ServerReplyError

        server = make_server()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        client = make_client(server, circuit=breaker)
        for _ in range(3):
            with pytest.raises(ServerReplyError):
                client.solve(pstar=-1.0)  # 400: a conclusive answer
        assert breaker.state == CLOSED

    def test_client_without_breaker_is_unchanged(self, registry, make_server):
        server = make_server()
        client = SwapClient(f"http://127.0.0.1:{server.port}")
        assert client.circuit is None
        assert client.health()
