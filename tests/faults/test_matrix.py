"""The chaos matrix: every fault kind against one standard workload.

The core invariant of the whole PR, asserted per fault kind: **under
any injected fault, a caller gets either the bit-identical fault-free
result or a typed retryable error -- never a silently wrong number,
and never a hang past the deadline.** Plus the explicit degradation
ladder (engine -> scalar) and the Oracle outage path.
"""

from __future__ import annotations

import time

import pytest

from repro.faults import FAULT_KINDS, FaultSpec, InjectionPlan
from repro.service.api import SwapService
from repro.service.requests import SolveRequest
from tests.faults.conftest import counter_value

PSTARS = [1.8, 2.0, 2.2]
WALL_BUDGET = 60.0  # generous; a hang would blow far past this

# every fault kind the service layer can meet on the batch path; the
# HTTP kinds live in test_http_faults / test_drain_hang, the oracle
# kind below -- together the matrix covers all of FAULT_KINDS
SERVICE_KINDS = (
    "worker_crash",
    "worker_hang",
    "cache_corrupt",
    "cache_io_error",
    "disk_slow",
)


@pytest.fixture(scope="module")
def baseline():
    service = SwapService(max_workers=1)
    items = service.run_batch([SolveRequest(pstar=pstar) for pstar in PSTARS])
    return {
        pstar: item.unwrap().success_rate for pstar, item in zip(PSTARS, items)
    }


def assert_invariant(items, baseline):
    """Correct result or typed retryable error; nothing else."""
    for pstar, item in zip(PSTARS, items):
        if item.ok:
            assert item.value.success_rate == baseline[pstar]
        else:
            assert item.error.code
            assert item.error.retryable, (
                f"fault produced a non-retryable error: {item.error}"
            )


class TestServiceMatrix:
    @pytest.mark.parametrize("kind", SERVICE_KINDS)
    def test_invariant_under_each_fault(self, kind, tmp_path, registry, baseline):
        plan = InjectionPlan(
            faults=(FaultSpec(kind=kind, count=2, delay=0.05),), seed=11
        )
        service = SwapService(
            max_workers=1, cache_dir=str(tmp_path), faults=plan
        )
        started = time.perf_counter()
        # two passes: the second must heal anything the first broke
        first = service.run_batch([SolveRequest(pstar=p) for p in PSTARS])
        second = service.run_batch([SolveRequest(pstar=p) for p in PSTARS])
        assert time.perf_counter() - started < WALL_BUDGET
        assert_invariant(first, baseline)
        assert_invariant(second, baseline)
        # the second pass, injector exhausted, answers everything
        assert all(item.ok for item in second)

    @pytest.mark.parametrize("kind", SERVICE_KINDS)
    def test_injections_are_counted(self, kind, tmp_path, registry):
        plan = InjectionPlan(
            faults=(FaultSpec(kind=kind, count=1, delay=0.01),), seed=2
        )
        service = SwapService(
            max_workers=1, cache_dir=str(tmp_path), faults=plan
        )
        service.run_batch([SolveRequest(pstar=p) for p in PSTARS])
        assert service.faults.injected_total(kind) == 1
        assert (
            counter_value(registry, "repro_fault_injected_total", kind=kind) == 1
        )

    def test_matrix_plus_siblings_covers_every_kind(self):
        http_kinds = {"http_drop", "http_slow"}
        # the surface kinds are exercised in tests/surface/test_faults.py
        surface_kinds = {"surface_corrupt", "surface_io_error"}
        # replica_down is router-side chaos: tests/server/test_router.py;
        # the control-plane kinds live in tests/server/test_supervisor.py
        # (replica_crash_loop) and tests/server/test_admin.py
        # (admin_partition)
        router_kinds = {"replica_down", "replica_crash_loop", "admin_partition"}
        # swap-graph hooks are exercised in tests/swapgraph/test_service.py
        swapgraph_kinds = {"swapgraph_error", "swapgraph_slow"}
        covered = (
            set(SERVICE_KINDS)
            | http_kinds
            | surface_kinds
            | router_kinds
            | swapgraph_kinds
            | {"engine_error", "oracle_outage"}
        )
        assert covered == set(FAULT_KINDS)


class TestDegradationLadder:
    def test_engine_error_falls_back_to_scalar_with_metrics(
        self, registry, baseline
    ):
        plan = InjectionPlan(
            faults=(FaultSpec(kind="engine_error", count=1),), seed=0
        )
        service = SwapService(max_workers=1, faults=plan)
        items = service.sweep(PSTARS)
        # the degraded path answers everything, scalar-exact
        assert all(item.ok for item in items)
        for pstar, item in zip(PSTARS, items):
            assert item.value.success_rate == baseline[pstar]
        assert (
            counter_value(
                registry, "repro_degraded_total", path="engine_to_scalar"
            )
            == 1
        )
        assert service.faults.injected_total("engine_error") == 1
        # next sweep runs the engine again (served from cache here)
        again = service.sweep(PSTARS)
        assert all(item.ok and item.cached for item in again)

    def test_sweep_without_faults_does_not_degrade(self, registry):
        service = SwapService(max_workers=1)
        items = service.sweep(PSTARS)
        assert all(item.ok for item in items)
        assert counter_value(registry, "repro_degraded_total") == 0


class TestOracleOutage:
    @pytest.fixture()
    def settlement(self):
        from repro.chain.chain import Blockchain
        from repro.chain.events import SimulationClock
        from repro.chain.oracle import CollateralEscrow, DepositOp, Oracle

        def _build(faults=None):
            clock = SimulationClock()
            chain = Blockchain(
                "a", "TOK", clock, confirmation_time=3.0, mempool_delay=1.0
            )
            chain.open_account("alice", 5.0)
            chain.open_account("bob", 5.0)
            escrow = CollateralEscrow(alice="alice", bob="bob", amount=1.0)
            oracle = Oracle(chain, escrow, faults=faults)
            chain.submit("alice", DepositOp(escrow, "alice"))
            chain.submit("bob", DepositOp(escrow, "bob"))
            clock.advance_to(3.0)
            return chain, escrow, oracle

        return _build

    def test_outage_is_typed_and_leaves_escrow_retryable(
        self, registry, settlement
    ):
        from repro.chain.errors import ChainError, OracleUnavailableError
        from repro.chain.oracle import EscrowState

        plan = InjectionPlan(
            faults=(FaultSpec(kind="oracle_outage", count=1),), seed=0
        )
        chain, escrow, oracle = settlement(faults=plan)
        with pytest.raises(OracleUnavailableError) as excinfo:
            oracle.release_bob_deposit()
        assert isinstance(excinfo.value, ChainError)  # typed, catchable
        # the outage left no partial settlement behind
        assert escrow.state is EscrowState.ACTIVE
        assert escrow.released == {}
        # the identical retried call settles once the outage ends
        oracle.release_bob_deposit()
        oracle.release_alice_deposit()
        chain.clock.run_until_idle(20.0)
        assert escrow.state is EscrowState.SETTLED
        assert chain.balance("alice") == 5.0
        assert chain.balance("bob") == 5.0

    def test_outage_can_target_one_settlement_action(self, registry, settlement):
        from repro.chain.errors import OracleUnavailableError

        plan = InjectionPlan(
            faults=(
                FaultSpec(kind="oracle_outage", match="release_alice_deposit"),
            ),
            seed=0,
        )
        _chain, _escrow, oracle = settlement(faults=plan)
        oracle.release_bob_deposit()  # unmatched action: unaffected
        with pytest.raises(OracleUnavailableError):
            oracle.release_alice_deposit()
