"""The answer-source chain: ordering, accounting, exactness contracts.

The load-bearing promises: the surface rung answers only what it can
certify within the granted tolerance, everything else falls through to
*exact* rungs bit-identically to a surface-less service, tier
transitions are observable, and approximate answers never pollute the
exact-result cache.
"""

from __future__ import annotations

import pytest

from repro.service import (
    CacheSource,
    EngineSource,
    ScalarSource,
    SourceChain,
    SurfaceSource,
    SwapService,
)
from repro.service.requests import SolveRequest
from tests.surface.conftest import counter_value


@pytest.fixture()
def service(registry, metered_surface):
    """A serial service with the 1-D surface installed and a granted
    service-wide tolerance."""
    return SwapService(surface=metered_surface, tolerance=1e-2)


class TestChainShape:
    def test_surface_rung_only_when_loaded(self, service):
        kinds = [type(source) for source in service._chain.sources]
        assert kinds == [SurfaceSource, CacheSource, EngineSource, ScalarSource]
        bare = SwapService()
        assert [type(s) for s in bare._chain.sources] == [
            CacheSource,
            EngineSource,
            ScalarSource,
        ]

    def test_chain_build_is_importable_from_service(self):
        assert SourceChain.build is not None


class TestSweepRouting:
    def test_on_surface_points_interpolate_rest_fall_through(
        self, registry, service
    ):
        # 1.7 and 2.0 sit on the surface; 3.5 is beyond the pstar axis
        items = service.sweep([1.7, 2.0, 3.5])
        assert [item.source for item in items] == ["surface", "surface", "engine"]
        assert all(item.ok for item in items)
        assert counter_value(registry, "repro_surface_hits_total") == 2
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_to_engine"
            )
            == 1
        )

    def test_all_surface_sweep_counts_no_transition(self, registry, service):
        items = service.sweep([1.8, 2.0, 2.2])
        assert {item.source for item in items} == {"surface"}
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_to_engine"
            )
            == 0
        )

    def test_tolerance_zero_demands_exactness(self, registry, service):
        items = service.sweep([1.8, 2.0], tolerance=0.0)
        assert {item.source for item in items} == {"engine"}
        # not consulted at all: no transition, no surface traffic
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_to_engine"
            )
            == 0
        )
        assert counter_value(registry, "repro_surface_hits_total") == 0

    def test_surface_answers_carry_bounds(self, service):
        item = service.sweep([2.0])[0]
        assert item.source == "surface"
        answer = item.unwrap()
        assert answer.bound > 0.0
        assert 0.0 <= answer.success_rate <= 1.0

    def test_fallthrough_is_bit_identical_to_the_engine(
        self, registry, service
    ):
        exact = SwapService().sweep([3.5])[0].unwrap()
        via_chain = service.sweep([3.5])[0].unwrap()
        assert via_chain.success_rate == exact.success_rate

    def test_no_service_tolerance_means_exact_by_default(
        self, registry, metered_surface
    ):
        service = SwapService(surface=metered_surface)  # no tolerance grant
        items = service.sweep([2.0])
        assert items[0].source == "engine"

    def test_surface_answers_never_enter_the_cache(self, registry, service):
        first = service.sweep([2.0])
        assert first[0].source == "surface"
        # same point again: still the surface, not a cache hit
        again = service.sweep([2.0])
        assert again[0].source == "surface"
        # and demanding exactness finds no cached approximation: the
        # answer must come from the engine, not a cache hit
        exact = service.sweep([2.0], tolerance=0.0)
        assert exact[0].source == "engine"

    def test_exact_results_still_cache_behind_the_surface(self, service):
        service.sweep([3.5])  # engine answer, cached
        assert service.sweep([3.5])[0].source == "cache"

    def test_success_rate_convenience_rides_the_chain(self, service):
        rate = service.success_rate(2.0)
        assert 0.0 <= rate <= 1.0


class TestBatchRouting:
    def test_request_tolerance_routes_to_surface(self, registry, service):
        request = SolveRequest(pstar=2.0, tolerance=1e-2)
        item = service.run_batch([request])[0]
        assert item.source == "surface"
        assert item.unwrap().bound <= 1e-2

    def test_tolerance_less_request_stays_exact(self, registry, metered_surface):
        service = SwapService(surface=metered_surface)  # no service default
        item = service.run_batch([SolveRequest(pstar=2.0)])[0]
        assert item.source == "scalar"
        assert not hasattr(item.unwrap(), "bound")

    def test_service_default_tolerance_applies_to_batches(self, service):
        item = service.run_batch([SolveRequest(pstar=2.0)])[0]
        assert item.source == "surface"

    def test_mixed_batch_counts_one_transition(self, registry, service):
        items = service.run_batch(
            [
                SolveRequest(pstar=2.0, tolerance=1e-2),  # surface
                SolveRequest(pstar=3.5, tolerance=1e-2),  # off-surface
            ]
        )
        assert [item.source for item in items] == ["surface", "scalar"]
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_to_engine"
            )
            == 1
        )


class TestStatsSurfacing:
    def test_service_stats_include_the_surface_tier(self, service):
        service.sweep([2.0, 3.5])
        stats = service.stats()
        assert stats["surface"]["hits"] == 1
        assert stats["surface"]["out_of_bounds"] == 1

    def test_surface_info_exposed(self, service, metered_surface):
        info = service.surface_info()
        assert info == metered_surface.info()
        assert SwapService().surface_info() is None

    def test_stats_without_surface_have_no_surface_key(self):
        assert "surface" not in SwapService().stats()
