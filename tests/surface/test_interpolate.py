"""Certified interpolation: the bound must hold, refusals must count.

The central property -- ``|interpolated - exact| <= certified bound``
at random off-grid points -- is what makes a surface answer safe to
serve; everything else here checks the refusal paths (tolerance,
off-grid coordinates, frozen-parameter mismatches) and their
accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import solve_grid
from tests.surface.conftest import counter_value


class TestCertifiedBound:
    def test_grid_points_reproduce_exact_values(self, line_surface, params):
        pstars = line_surface.spec.axes[0].values()
        exact = solve_grid(params, pstars).success_rate
        lookup = line_surface.lookup(params, pstars, tolerance=1.0)
        assert lookup.answered.all()
        np.testing.assert_allclose(lookup.values, exact, atol=1e-12)

    def test_random_offgrid_points_within_bound_1d(
        self, line_surface, params, rng
    ):
        pstars = [1.6 + 0.8 * rng.uniform() for _ in range(16)]
        lookup = line_surface.lookup(params, pstars, tolerance=1.0)
        assert lookup.answered.all()
        exact = solve_grid(params, pstars).success_rate
        errors = np.abs(lookup.values - exact)
        assert (errors <= lookup.bounds).all(), (
            f"certified bound violated: max error {errors.max():.3g} vs "
            f"bounds {lookup.bounds[np.argmax(errors)]:.3g}"
        )

    def test_random_offgrid_points_within_bound_2d(
        self, plane_surface, params, rng
    ):
        for _ in range(8):
            pstar = 1.6 + 0.8 * rng.uniform()
            sigma = 0.08 + 0.04 * rng.uniform()
            point = params.replace(sigma=sigma)
            answer = plane_surface.answer(point, pstar, tolerance=1.0)
            assert answer is not None
            exact = float(solve_grid(point, [pstar]).success_rate[0])
            assert abs(answer.success_rate - exact) <= answer.bound

    def test_answer_carries_its_bound(self, line_surface, params):
        answer = line_surface.answer(params, 2.01, tolerance=1.0)
        assert answer is not None
        assert answer.pstar == 2.01
        assert 0.0 < answer.bound <= line_surface.max_bound


class TestRefusals:
    def test_tolerance_zero_refuses_everything(self, line_surface, params):
        # bounds carry an additive floor, so no cell certifies 0.0
        lookup = line_surface.lookup(params, [2.0], tolerance=0.0)
        assert not lookup.answered.any()
        assert not lookup.off_surface

    def test_tight_tolerance_counts_misses(self, registry, metered_surface, params):
        assert metered_surface.answer(params, 2.0, tolerance=1e-12) is None
        assert metered_surface.stats.misses == 1
        assert counter_value(registry, "repro_surface_misses_total") == 1

    def test_default_tolerance_comes_from_the_spec(self, line_surface):
        tol = line_surface.spec.default_tolerance
        assert line_surface.resolve_tolerance(None) == tol
        assert line_surface.resolve_tolerance(0.5) == 0.5

    def test_out_of_range_pstar_counts_out_of_bounds(
        self, registry, metered_surface, params
    ):
        lookup = metered_surface.lookup(params, [2.0, 99.0], tolerance=1.0)
        assert bool(lookup.answered[0]) and not bool(lookup.answered[1])
        assert lookup.answer_at(1) is None
        assert metered_surface.stats.out_of_bounds == 1
        assert counter_value(registry, "repro_surface_out_of_bounds_total") == 1

    def test_foreign_params_are_off_surface(self, registry, metered_surface, params):
        foreign = params.replace(alpha_a=0.77)
        lookup = metered_surface.lookup(foreign, [2.0, 2.1], tolerance=1.0)
        assert lookup.off_surface
        assert not lookup.answered.any()
        assert counter_value(registry, "repro_surface_out_of_bounds_total") == 2

    def test_foreign_collateral_is_off_surface(self, line_surface, params):
        assert line_surface.lookup(params, [2.0], collateral=0.5).off_surface

    def test_unequal_pair_is_off_surface_on_paired_axis(self, params):
        from repro.surface import AxisSpec, Surface, SurfaceSpec

        spec = SurfaceSpec(
            axes=(
                AxisSpec("pstar", 1.5, 2.5, 3),
                AxisSpec("alpha", 0.1, 0.5, 2),
            ),
            params=params,
        )
        surface = Surface(
            spec=spec,
            values=np.zeros(spec.shape),
            bounds=np.zeros(spec.cell_shape),
        )
        # both agents at alpha=0.3: on surface
        assert surface.match_coords(params, 0.0) is not None
        # agents split: the paired axis cannot represent the point
        assert surface.match_coords(params.replace(alpha_a=0.2), 0.0) is None

    def test_hits_count_in_stats_and_registry(
        self, registry, metered_surface, params
    ):
        lookup = metered_surface.lookup(params, [1.9, 2.0, 2.1], tolerance=1.0)
        assert lookup.answered.all()
        assert metered_surface.stats.hits == 3
        assert counter_value(registry, "repro_surface_hits_total") == 3

    def test_stats_as_dict_includes_out_of_bounds(self, line_surface):
        assert "out_of_bounds" in line_surface.stats.as_dict()


class TestShapeValidation:
    def test_wrong_values_shape_rejected(self, line_spec):
        from repro.surface import Surface

        with pytest.raises(ValueError, match="values shape"):
            Surface(
                spec=line_spec,
                values=np.zeros(3),
                bounds=np.zeros(line_spec.cell_shape),
            )

    def test_wrong_bounds_shape_rejected(self, line_spec):
        from repro.surface import Surface

        with pytest.raises(ValueError, match="bounds shape"):
            Surface(
                spec=line_spec,
                values=np.zeros(line_spec.shape),
                bounds=np.zeros(3),
            )
