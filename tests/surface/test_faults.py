"""Chaos coverage for the surface fault kinds.

``surface_corrupt`` and ``surface_io_error`` (see
:data:`repro.faults.plan.FAULT_KINDS`) hit the artifact loader; the
service contract under both is quarantine-and-degrade: the process
comes up *without* the surface tier, keeps answering exactly, and the
degradation is observable -- never a crash, never a silently wrong
answer.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultSpec, InjectionPlan
from repro.service import SwapService
from repro.service.cache import QUARANTINE_SUFFIX
from repro.surface import (
    SurfaceIntegrityError,
    load_surface,
)
from tests.surface.conftest import counter_value


def plan(kind: str) -> InjectionPlan:
    return InjectionPlan(faults=(FaultSpec(kind=kind, count=1),), seed=1)


class TestSurfaceCorrupt:
    def test_loader_quarantines_and_raises(self, registry, artifact):
        path, _ = artifact
        with pytest.raises(SurfaceIntegrityError, match="injected"):
            load_surface(path, injector=plan("surface_corrupt"))
        assert not path.exists()
        assert path.with_name(path.name + QUARANTINE_SUFFIX).exists()
        assert (
            counter_value(
                registry, "repro_surface_loads_total", outcome="corrupt"
            )
            == 1
        )

    def test_service_degrades_to_exact_serving(self, registry, artifact):
        path, _ = artifact
        service = SwapService(
            surface=str(path),
            tolerance=1e-2,
            faults=plan("surface_corrupt"),
        )
        assert service.surface is None  # tier refused, not crashed
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_load"
            )
            == 1
        )
        items = service.sweep([2.0])  # still answers, exactly
        assert items[0].ok and items[0].source == "engine"


class TestSurfaceIoError:
    def test_loader_propagates_oserror(self, registry, artifact):
        path, _ = artifact
        with pytest.raises(OSError, match="injected"):
            load_surface(path, injector=plan("surface_io_error"))
        assert path.exists()  # an I/O hiccup is not rot: nothing moved
        assert (
            counter_value(
                registry, "repro_surface_loads_total", outcome="io_error"
            )
            == 1
        )

    def test_service_degrades_without_touching_the_file(
        self, registry, artifact
    ):
        path, _ = artifact
        before = path.read_bytes()
        service = SwapService(
            surface=str(path),
            tolerance=1e-2,
            faults=plan("surface_io_error"),
        )
        assert service.surface is None
        assert path.read_bytes() == before
        assert (
            counter_value(
                registry, "repro_degraded_total", path="surface_load"
            )
            == 1
        )

    def test_exhausted_schedule_loads_cleanly(self, artifact):
        from repro.faults.injector import build_injector

        path, _ = artifact
        # count=1 and the schedule consumed by a direct load: a service
        # sharing the same injector afterwards sees a healthy file
        injector = build_injector(plan("surface_io_error"))
        with pytest.raises(OSError):
            load_surface(path, injector=injector)
        service = SwapService(surface=str(path), faults=injector)
        assert service.surface is not None
