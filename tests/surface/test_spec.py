"""Axis and surface specification validation + round-trips."""

from __future__ import annotations

import pytest

from repro.surface import AXIS_KEYS, AxisSpec, SurfaceSpec


class TestAxisSpec:
    def test_values_are_inclusive_linspace(self):
        axis = AxisSpec("pstar", 1.0, 3.0, 5)
        assert list(axis.values()) == [1.0, 1.5, 2.0, 2.5, 3.0]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            AxisSpec("gamma", 0.0, 1.0, 4)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError, match="lo < hi"):
            AxisSpec("sigma", 0.2, 0.1, 4)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match=">= 2 points"):
            AxisSpec("pstar", 1.0, 2.0, 1)

    def test_collateral_axis_must_stay_positive(self):
        # Q = 0 is the basic game, not the Q -> 0 collateral limit; a
        # cell straddling the regimes would certify a useless bound.
        with pytest.raises(ValueError, match="strictly positive"):
            AxisSpec("collateral", 0.0, 1.0, 4)

    def test_parse_shorthand(self):
        axis = AxisSpec.parse("sigma:0.05:0.2:8")
        assert axis == AxisSpec("sigma", 0.05, 0.2, 8)

    def test_parse_rejects_malformed_tokens(self):
        for token in ("sigma:0.05:0.2", "sigma:a:b:4", "pstar:1:2:zero"):
            with pytest.raises(ValueError):
                AxisSpec.parse(token)

    def test_dict_round_trip(self):
        axis = AxisSpec("alpha", 0.1, 0.5, 9)
        assert AxisSpec.from_dict(axis.to_dict()) == axis

    def test_every_axis_name_maps_to_parameter_keys(self, params):
        flat = set(params.as_dict()) | {"pstar", "collateral"}
        for name, keys in AXIS_KEYS.items():
            assert set(keys) <= flat, name


class TestSurfaceSpec:
    def test_requires_pstar_axis(self, params):
        with pytest.raises(ValueError, match="pstar"):
            SurfaceSpec(axes=(AxisSpec("sigma", 0.05, 0.2, 4),), params=params)

    def test_rejects_overlapping_axes(self, params):
        with pytest.raises(ValueError, match="overlaps"):
            SurfaceSpec(
                axes=(
                    AxisSpec("pstar", 1.5, 2.5, 4),
                    AxisSpec("alpha", 0.1, 0.5, 4),
                    AxisSpec("alpha_a", 0.1, 0.5, 4),
                ),
                params=params,
            )

    def test_shapes(self, plane_spec):
        assert plane_spec.shape == (17, 3)
        assert plane_spec.cell_shape == (16, 2)
        assert plane_spec.n_points == 51
        assert plane_spec.pstar_index == 0

    def test_point_at_overrides_axis_parameters(self, plane_spec, params):
        point, pstar, collateral = plane_spec.point_at(
            {"pstar": 2.1, "sigma": 0.09}
        )
        assert pstar == 2.1
        assert collateral == 0.0
        assert point.sigma == 0.09
        assert point.replace(sigma=params.sigma) == params

    def test_paired_axis_drives_both_agents(self, params):
        spec = SurfaceSpec(
            axes=(
                AxisSpec("pstar", 1.5, 2.5, 4),
                AxisSpec("alpha", 0.1, 0.5, 4),
            ),
            params=params,
        )
        point, _, _ = spec.point_at({"pstar": 2.0, "alpha": 0.4})
        assert point.alice.alpha == 0.4
        assert point.bob.alpha == 0.4

    def test_frozen_point_excludes_axis_keys(self, plane_spec, params):
        frozen = plane_spec.frozen_point()
        assert "sigma" not in frozen
        assert "collateral" in frozen
        assert frozen["tau_a"] == params.tau_a

    def test_dict_round_trip(self, plane_spec):
        rebuilt = SurfaceSpec.from_dict(plane_spec.to_dict())
        assert rebuilt == plane_spec
