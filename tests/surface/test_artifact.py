"""The on-disk artifact: round-trips, rot detection, quarantine."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.service.cache import QUARANTINE_SUFFIX
from repro.service.keys import KEY_VERSION
from repro.surface import (
    FORMAT_VERSION,
    MAGIC,
    SurfaceFormatError,
    SurfaceIntegrityError,
    load_surface,
    save_surface,
)
from tests.surface.conftest import counter_value


def quarantined(path) -> bool:
    return (
        not path.exists()
        and path.with_name(path.name + QUARANTINE_SUFFIX).exists()
    )


class TestRoundTrip:
    def test_blocks_and_metadata_survive(self, line_surface, artifact):
        path, checksum = artifact
        loaded = load_surface(path)
        np.testing.assert_array_equal(loaded.values, line_surface.values)
        np.testing.assert_array_equal(loaded.bounds, line_surface.bounds)
        assert loaded.spec == line_surface.spec
        assert loaded.checksum == checksum
        assert loaded.format_version == FORMAT_VERSION
        assert loaded.key_version == KEY_VERSION
        assert loaded.path == str(path)

    def test_loaded_blocks_are_memory_mapped(self, artifact):
        path, _ = artifact
        loaded = load_surface(path)
        assert isinstance(loaded.values, np.memmap)
        assert isinstance(loaded.bounds, np.memmap)

    def test_save_is_atomic_no_temp_left_behind(self, line_surface, tmp_path):
        save_surface(line_surface, tmp_path / "out.srf")
        assert [p.name for p in tmp_path.iterdir()] == ["out.srf"]

    def test_info_describes_the_artifact(self, artifact):
        path, checksum = artifact
        info = load_surface(path).info()
        assert info["checksum"] == checksum
        assert info["key_version"] == KEY_VERSION
        assert info["axes"][0]["name"] == "pstar"
        assert info["points"] == 17

    def test_ok_load_counts(self, registry, artifact):
        load_surface(artifact[0])
        assert (
            counter_value(registry, "repro_surface_loads_total", outcome="ok")
            == 1
        )


class TestRot:
    def test_flipped_data_byte_quarantines(self, registry, artifact):
        path, _ = artifact
        blob = bytearray(path.read_bytes())
        blob[-9] ^= 0xFF  # inside the bounds block
        path.write_bytes(bytes(blob))
        with pytest.raises(SurfaceIntegrityError, match="checksum"):
            load_surface(path)
        assert quarantined(path)
        assert (
            counter_value(
                registry, "repro_surface_loads_total", outcome="corrupt"
            )
            == 1
        )

    def test_truncated_file_quarantines(self, artifact):
        path, _ = artifact
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SurfaceIntegrityError, match="truncated"):
            load_surface(path)
        assert quarantined(path)

    def test_rotten_header_json_quarantines(self, artifact):
        path, _ = artifact
        blob = bytearray(path.read_bytes())
        (header_len,) = struct.unpack_from("<Q", blob, len(MAGIC))
        blob[len(MAGIC) + 8] = 0xFF  # first header byte: not JSON
        path.write_bytes(bytes(blob))
        with pytest.raises(SurfaceIntegrityError, match="rotten header"):
            load_surface(path)
        assert quarantined(path)

    def test_bad_magic_is_not_ours_to_destroy(self, registry, artifact):
        path, _ = artifact
        path.write_bytes(b"NOTASURF" + b"\x00" * 64)
        with pytest.raises(SurfaceFormatError, match="bad magic"):
            load_surface(path)
        assert path.exists()  # format errors never quarantine
        assert (
            counter_value(
                registry, "repro_surface_loads_total", outcome="format_error"
            )
            == 1
        )

    def test_unsupported_version_refused_without_quarantine(self, artifact):
        path, _ = artifact
        blob = bytearray(path.read_bytes())
        (header_len,) = struct.unpack_from("<Q", blob, len(MAGIC))
        start = len(MAGIC) + 8
        header = json.loads(blob[start : start + header_len].decode())
        header["format_version"] = FORMAT_VERSION + 1
        encoded = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode()
        # same sorted keys and value width -> identical length
        assert len(encoded) == header_len
        blob[start : start + header_len] = encoded
        path.write_bytes(bytes(blob))
        with pytest.raises(SurfaceFormatError, match="unsupported"):
            load_surface(path)
        assert path.exists()

    def test_missing_file_raises_oserror(self, registry, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_surface(tmp_path / "absent.srf")
        assert (
            counter_value(
                registry, "repro_surface_loads_total", outcome="io_error"
            )
            == 1
        )

    def test_verify_false_skips_the_checksum(self, artifact):
        path, _ = artifact
        blob = bytearray(path.read_bytes())
        blob[-9] ^= 0xFF
        path.write_bytes(bytes(blob))
        loaded = load_surface(path, verify=False)  # operator's escape hatch
        assert loaded.spec.axes[0].name == "pstar"
        assert path.exists()
