"""Surface-suite fixtures.

The builds are the expensive part (each one is a handful of exact
engine passes), so the canonical specs and their built surfaces are
session-scoped and shared; anything that mutates state (artifacts on
disk, metric counters, stats) gets a private copy or a private
registry.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.obs.metrics import Registry, use_registry
from repro.surface import AxisSpec, SurfaceSpec, build_surface, save_surface


@pytest.fixture()
def registry():
    """A fresh private metrics registry installed for the test."""
    fresh = Registry()
    with use_registry(fresh):
        yield fresh


def counter_value(registry, name: str, **labels) -> float:
    """Total of one metric's matching series (0.0 when absent)."""
    metric = registry.snapshot().get(name)
    if metric is None:
        return 0.0
    return sum(
        sample["value"]
        for sample in metric["samples"]
        if all(sample["labels"].get(k) == v for k, v in labels.items())
    )


@pytest.fixture(scope="session")
def line_spec(params: SwapParameters) -> SurfaceSpec:
    """A 1-D P* surface over the Figure 6 sweet spot."""
    return SurfaceSpec(
        axes=(AxisSpec("pstar", 1.6, 2.4, 17),),
        params=params,
        default_tolerance=1e-2,
    )


@pytest.fixture(scope="session")
def plane_spec(params: SwapParameters) -> SurfaceSpec:
    """A 2-D (P*, sigma) surface around the Table III defaults."""
    return SurfaceSpec(
        axes=(
            AxisSpec("pstar", 1.6, 2.4, 17),
            AxisSpec("sigma", 0.08, 0.12, 3),
        ),
        params=params,
        default_tolerance=1e-2,
    )


@pytest.fixture(scope="session")
def line_surface(line_spec):
    """The built (in-memory) 1-D surface."""
    return build_surface(line_spec)


@pytest.fixture(scope="session")
def plane_surface(plane_spec):
    """The built (in-memory) 2-D surface."""
    return build_surface(plane_spec)


@pytest.fixture()
def metered_surface(registry, line_surface):
    """The 1-D surface rebound to the test's private registry.

    A :class:`Surface` binds its counters at construction, so the
    session-scoped instances meter the global registry; tests that
    assert on ``repro_surface_*`` values rebuild the (cheap) wrapper
    around the same blocks inside the private-registry context.
    """
    from repro.surface import Surface

    return Surface(
        spec=line_surface.spec,
        values=line_surface.values,
        bounds=line_surface.bounds,
    )


@pytest.fixture(scope="session")
def _artifact_blocks(line_surface, tmp_path_factory):
    """One canonical artifact file, written once; tests copy it."""
    path = tmp_path_factory.mktemp("surface") / "line.srf"
    checksum = save_surface(line_surface, path)
    return path, checksum


@pytest.fixture()
def artifact(_artifact_blocks, tmp_path):
    """A private, disposable copy of the canonical artifact."""
    canonical, checksum = _artifact_blocks
    path = tmp_path / "surface.srf"
    path.write_bytes(canonical.read_bytes())
    return path, checksum
