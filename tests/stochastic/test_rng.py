"""Tests for reproducible random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stochastic.rng import RandomState, spawn_streams


class TestConstruction:
    def test_requires_seed(self):
        with pytest.raises(ValueError, match="seed"):
            RandomState(None)

    def test_same_seed_same_stream(self):
        a = RandomState(7).standard_normal(10)
        b = RandomState(7).standard_normal(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomState(7).standard_normal(10)
        b = RandomState(8).standard_normal(10)
        assert not np.array_equal(a, b)

    def test_entropy_exposed(self):
        assert RandomState(123).entropy == 123


class TestSpawn:
    def test_children_independent_of_order(self):
        parent = RandomState(42)
        kids = parent.spawn(3)
        values = [k.standard_normal() for k in kids]
        kids2 = RandomState(42).spawn(3)
        values2 = [k.standard_normal() for k in kids2]
        assert values == values2

    def test_children_differ_from_each_other(self):
        kids = RandomState(42).spawn(2)
        assert kids[0].standard_normal(5).tolist() != kids[1].standard_normal(5).tolist()

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            RandomState(1).spawn(-1)

    def test_spawn_streams_helper(self):
        streams = spawn_streams(99, 4)
        assert len(streams) == 4


class TestDraws:
    def test_uniform_range(self):
        values = RandomState(3).uniform(2.0, 5.0, size=1000)
        assert values.min() >= 2.0
        assert values.max() < 5.0

    def test_integers(self):
        values = RandomState(3).integers(0, 10, size=1000)
        assert set(np.unique(values)).issubset(set(range(10)))

    def test_choice(self):
        options = ["a", "b", "c"]
        picks = RandomState(3).choice(options, size=50)
        assert set(picks).issubset(set(options))

    def test_token_bytes_length_and_determinism(self):
        a = RandomState(11).token_bytes(32)
        b = RandomState(11).token_bytes(32)
        assert len(a) == 32
        assert a == b
