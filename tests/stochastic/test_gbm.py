"""Tests for the GBM process (paper Eq. (1))."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.gbm import GeometricBrownianMotion
from repro.stochastic.rng import RandomState

GBM = GeometricBrownianMotion(mu=0.002, sigma=0.1)


class TestValidation:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            GeometricBrownianMotion(mu=0.0, sigma=0.0)

    def test_rejects_nonfinite_mu(self):
        with pytest.raises(ValueError, match="mu"):
            GeometricBrownianMotion(mu=float("inf"), sigma=0.1)

    def test_expectation_rejects_bad_spot(self):
        with pytest.raises(ValueError, match="spot"):
            GBM.expectation(-1.0, 1.0)

    def test_expectation_rejects_negative_tau(self):
        with pytest.raises(ValueError, match="tau"):
            GBM.expectation(1.0, -1.0)


class TestAnalytics:
    def test_expectation_formula(self):
        assert GBM.expectation(2.0, 4.0) == pytest.approx(2.0 * math.exp(0.008))

    def test_law_matches_pdf_cdf(self):
        law = GBM.law(2.0, 4.0)
        assert GBM.pdf(1.8, 2.0, 4.0) == pytest.approx(float(law.pdf(1.8)))
        assert GBM.cdf(1.8, 2.0, 4.0) == pytest.approx(float(law.cdf(1.8)))

    def test_expectation_is_martingale_adjusted(self):
        # zero drift makes the price a martingale
        driftless = GeometricBrownianMotion(mu=0.0, sigma=0.3)
        assert driftless.expectation(5.0, 100.0) == pytest.approx(5.0)


class TestStep:
    def test_zero_tau_is_identity(self, rng: RandomState):
        assert GBM.step(2.0, 0.0, rng) == 2.0

    def test_step_distribution(self, rng: RandomState):
        out = GBM.step(np.full(100_000, 2.0), 4.0, rng)
        assert out.mean() == pytest.approx(GBM.expectation(2.0, 4.0), rel=0.01)
        assert np.log(out / 2.0).std() == pytest.approx(0.1 * 2.0, rel=0.02)

    def test_step_rejects_negative_tau(self, rng: RandomState):
        with pytest.raises(ValueError):
            GBM.step(2.0, -0.5, rng)


class TestSamplePath:
    def test_shape(self, rng: RandomState):
        paths = GBM.sample_path(2.0, [1.0, 3.0, 7.0], rng, n_paths=11)
        assert paths.shape == (11, 3)

    def test_all_positive(self, rng: RandomState):
        paths = GBM.sample_path(2.0, [1.0, 2.0], rng, n_paths=1000)
        assert np.all(paths > 0.0)

    def test_terminal_moments(self, rng: RandomState):
        paths = GBM.sample_path(2.0, [3.0, 7.0], rng, n_paths=200_000)
        assert paths[:, -1].mean() == pytest.approx(
            GBM.expectation(2.0, 7.0), rel=0.01
        )

    def test_increments_consistent(self, rng: RandomState):
        # conditional law of the second observation given the first
        paths = GBM.sample_path(2.0, [3.0, 7.0], rng, n_paths=100_000)
        log_increment = np.log(paths[:, 1] / paths[:, 0])
        expected_mean = (0.002 - 0.005) * 4.0
        assert log_increment.mean() == pytest.approx(expected_mean, abs=2e-3)
        assert log_increment.std() == pytest.approx(0.1 * 2.0, rel=0.02)

    def test_time_zero_returns_spot(self, rng: RandomState):
        paths = GBM.sample_path(2.0, [0.0, 5.0], rng, n_paths=4)
        assert np.allclose(paths[:, 0], 2.0)

    def test_antithetic_pairs_mirror(self, rng: RandomState):
        paths = GBM.sample_path(2.0, [4.0], rng, n_paths=10, antithetic=True)
        first, second = paths[:5, 0], paths[5:, 0]
        # antithetic: log-returns are negated
        drift = (0.002 - 0.005) * 4.0
        z1 = np.log(first / 2.0) - drift
        z2 = np.log(second / 2.0) - drift
        assert np.allclose(z1, -z2, atol=1e-10)

    def test_antithetic_requires_even(self, rng: RandomState):
        with pytest.raises(ValueError, match="even"):
            GBM.sample_path(2.0, [1.0], rng, n_paths=3, antithetic=True)

    def test_rejects_unsorted_times(self, rng: RandomState):
        with pytest.raises(ValueError, match="increasing"):
            GBM.sample_path(2.0, [3.0, 1.0], rng)

    def test_rejects_empty_times(self, rng: RandomState):
        with pytest.raises(ValueError):
            GBM.sample_path(2.0, [], rng)

    def test_rejects_bad_spot(self, rng: RandomState):
        with pytest.raises(ValueError, match="spot"):
            GBM.sample_path(0.0, [1.0], rng)


@settings(max_examples=40, deadline=None)
@given(
    mu=st.floats(min_value=-0.05, max_value=0.05),
    sigma=st.floats(min_value=0.01, max_value=0.4),
    spot=st.floats(min_value=0.1, max_value=100.0),
    tau=st.floats(min_value=0.1, max_value=24.0),
)
def test_property_law_mean_equals_expectation(mu, sigma, spot, tau):
    gbm = GeometricBrownianMotion(mu=mu, sigma=sigma)
    assert gbm.law(spot, tau).mean() == pytest.approx(
        gbm.expectation(spot, tau), rel=1e-12
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_paths_reproducible(seed):
    a = GBM.sample_path(2.0, [1.0, 2.0], RandomState(seed), n_paths=3)
    b = GBM.sample_path(2.0, [1.0, 2.0], RandomState(seed), n_paths=3)
    assert np.array_equal(a, b)
