"""Unit + property tests for the pluggable price-law layer.

Covers the serializable :class:`LawSpec` / registry / CLI shorthand,
the exact degeneracies (Merton at ``lambda = 0`` and a collapsed regime
*are* the lognormal kernel, not merely close to it), and the mixture
kernels' distributional invariants: the paper's mean identity, CDF /
quantile consistency, and partial-expectation bookkeeping.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.law import (
    LOGNORMAL,
    LawSpec,
    LognormalStepKernel,
    MixtureStepKernel,
    law_registry,
    parse_law,
    register_law,
    registered_laws,
    step_kernel,
)
from repro.stochastic.lognormal import transition_pieces
from repro.stochastic.rng import RandomState

MU, SIGMA = 0.002, 0.1

merton_params = st.fixed_dictionaries(
    {
        "jump_intensity": st.floats(min_value=0.001, max_value=0.5),
        "jump_mean": st.floats(min_value=-0.3, max_value=0.3),
        "jump_std": st.floats(min_value=0.01, max_value=0.4),
    }
)

regime_params = st.fixed_dictionaries(
    {
        "sigma_calm": st.floats(min_value=0.02, max_value=0.12),
        "sigma_turbulent": st.floats(min_value=0.13, max_value=0.5),
        "p_calm_to_turbulent": st.floats(min_value=0.0, max_value=1.0),
        "p_turbulent_to_calm": st.floats(min_value=0.0, max_value=1.0),
    }
)

any_mixture_spec = st.one_of(
    merton_params.map(lambda p: LawSpec.make("merton", **p)),
    regime_params.map(lambda p: LawSpec.make("regime", **p)),
)

taus = st.floats(min_value=0.5, max_value=24.0)
spots = st.floats(min_value=0.2, max_value=20.0)


class TestLawSpec:
    def test_default_is_lognormal(self):
        assert LOGNORMAL.is_lognormal
        assert LawSpec.lognormal() == LOGNORMAL
        assert LOGNORMAL.to_dict() == {"kind": "lognormal"}

    def test_make_fills_defaults_and_sorts(self):
        spec = LawSpec.make("merton", jump_intensity=0.07)
        params = spec.param_dict()
        assert params["jump_intensity"] == 0.07
        assert set(params) == {"jump_intensity", "jump_mean", "jump_std"}
        assert list(dict(spec.params)) == sorted(dict(spec.params))

    def test_make_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown law kind"):
            LawSpec.make("weird")

    def test_make_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="no parameter"):
            LawSpec.make("merton", intensity=0.1)

    def test_make_validates_values(self):
        with pytest.raises(ValueError, match="jump_intensity"):
            LawSpec.make("merton", jump_intensity=-1.0)
        with pytest.raises(ValueError, match="sigma_calm"):
            LawSpec.make("regime", sigma_calm=0.0)

    def test_round_trip_dict(self):
        spec = LawSpec.make("regime", sigma_turbulent=0.3)
        assert LawSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ValueError, match="unknown law spec fields"):
            LawSpec.from_dict({"kind": "merton", "extra": 1})
        with pytest.raises(ValueError, match="string 'kind'"):
            LawSpec.from_dict({"params": {}})

    def test_specs_are_hashable(self):
        assert len({LawSpec.make("merton"), LawSpec.make("merton")}) == 1


class TestParseShorthand:
    def test_bare_kind(self):
        assert parse_law("lognormal") == LOGNORMAL
        assert parse_law("merton") == LawSpec.make("merton")

    def test_with_parameters(self):
        spec = parse_law("merton:jump_intensity=0.05,jump_mean=-0.08")
        params = spec.param_dict()
        assert params["jump_intensity"] == 0.05
        assert params["jump_mean"] == -0.08

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="empty"):
            parse_law("  ")
        with pytest.raises(ValueError, match="name=value"):
            parse_law("merton:jump_intensity")
        with pytest.raises(ValueError, match="bad float"):
            parse_law("merton:jump_intensity=abc")


class TestRegistry:
    def test_all_three_laws_registered(self):
        assert registered_laws() == {"lognormal": 1, "merton": 1, "regime": 1}

    def test_reregistration_is_an_error(self):
        info = law_registry()["merton"]
        with pytest.raises(ValueError, match="already registered"):
            register_law(
                "merton",
                version=2,
                defaults=info.defaults,
                validate=info.validate,
                build=info.build,
            )

    def test_unknown_kind_refused_by_step_kernel(self):
        with pytest.raises(ValueError, match="unknown law kind"):
            step_kernel(LawSpec(kind="ghost"), MU, SIGMA, 4.0)


class TestDegeneracy:
    """The degenerate laws *are* the lognormal kernel, bit for bit."""

    @given(st.floats(min_value=-0.3, max_value=0.3),
           st.floats(min_value=0.01, max_value=0.4), taus)
    @settings(max_examples=40, deadline=None)
    def test_merton_without_jumps(self, gamma, delta, tau):
        spec = LawSpec.make(
            "merton", jump_intensity=0.0, jump_mean=gamma, jump_std=delta
        )
        kernel = step_kernel(spec, MU, SIGMA, tau)
        assert kernel == LognormalStepKernel(mu=MU, sigma=SIGMA, tau=tau)

    def test_merton_with_null_jumps(self):
        spec = LawSpec.make(
            "merton", jump_intensity=0.3, jump_mean=0.0, jump_std=0.0
        )
        kernel = step_kernel(spec, MU, SIGMA, 4.0)
        assert kernel == LognormalStepKernel(mu=MU, sigma=SIGMA, tau=4.0)

    @given(st.floats(min_value=0.02, max_value=0.4), taus)
    @settings(max_examples=40, deadline=None)
    def test_collapsed_regime(self, sigma, tau):
        spec = LawSpec.make(
            "regime", sigma_calm=sigma, sigma_turbulent=sigma
        )
        kernel = step_kernel(spec, MU, SIGMA, tau)
        # the regime law carries its own volatility; ambient SIGMA is unused
        assert kernel == LognormalStepKernel(mu=MU, sigma=sigma, tau=tau)

    def test_lognormal_kernel_matches_closed_forms(self):
        kernel = step_kernel(LOGNORMAL, MU, SIGMA, 4.0)
        expected = transition_pieces(2.0, MU, SIGMA, 4.0, 1.8)
        assert kernel.pieces(2.0, 1.8) == expected


class TestMixtureKernelInvariants:
    @given(any_mixture_spec, taus, spots)
    @settings(max_examples=60, deadline=None)
    def test_mean_identity_exact(self, spec, tau, spot):
        kernel = step_kernel(spec, MU, SIGMA, tau)
        law = kernel.law(spot)
        assert law.mean() == pytest.approx(spot * math.exp(MU * tau), rel=1e-12)

    @given(any_mixture_spec, taus, spots)
    @settings(max_examples=60, deadline=None)
    def test_pieces_partition(self, spec, tau, spot):
        """cdf + survival = 1 and the partial expectations split the mean."""
        kernel = step_kernel(spec, MU, SIGMA, tau)
        k = np.array([0.5 * spot, spot, 2.0 * spot])
        cdf, survival, partial_below = kernel.pieces(spot, k)
        np.testing.assert_allclose(cdf + survival, 1.0, atol=1e-12)
        law = kernel.law(spot)
        np.testing.assert_allclose(
            partial_below + law.partial_expectation_above(k),
            law.mean(),
            rtol=1e-10,
        )

    @given(any_mixture_spec, taus, spots,
           st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_quantile_inverts_cdf(self, spec, tau, spot, q):
        law = step_kernel(spec, MU, SIGMA, tau).law(spot)
        assert law.cdf(law.quantile(q)) == pytest.approx(q, abs=1e-9)

    @given(any_mixture_spec, taus)
    @settings(max_examples=40, deadline=None)
    def test_survival_from_logs_agrees_with_pieces(self, spec, tau):
        kernel = step_kernel(spec, MU, SIGMA, tau)
        spot, k = 2.0, 1.7
        _, survival, _ = kernel.pieces(spot, k)
        via_logs = kernel.survival_from_logs(math.log(spot), math.log(k))
        assert via_logs == pytest.approx(float(survival), abs=1e-14)

    def test_sampling_matches_cdf(self):
        """Empirical CDF of kernel draws matches the analytic mixture CDF."""
        spec = LawSpec.make("merton", jump_intensity=0.08)
        kernel = step_kernel(spec, MU, SIGMA, 4.0)
        assert isinstance(kernel, MixtureStepKernel)
        rng = RandomState(7).generator
        n = 200_000
        draws = kernel.sample_from_normal(
            2.0, rng.uniform(size=n), rng.standard_normal(n)
        )
        law = kernel.law(2.0)
        for k in (1.6, 1.9, 2.0, 2.1, 2.5):
            empirical = float(np.mean(draws <= k))
            assert empirical == pytest.approx(float(law.cdf(k)), abs=0.005)
        assert float(draws.mean()) == pytest.approx(law.mean(), rel=0.01)

    def test_merton_jump_risk_fattens_the_lower_tail(self):
        """Negative-mean jumps shift mass below the GBM quantile."""
        jumpy = step_kernel(
            LawSpec.make("merton", jump_intensity=0.2, jump_mean=-0.2),
            MU, SIGMA, 4.0,
        ).law(2.0)
        gbm = step_kernel(LOGNORMAL, MU, SIGMA, 4.0).law(2.0)
        assert jumpy.cdf(1.5) > float(gbm.cdf(1.5))
