"""Tests for root finding and interval unions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.lognormal import LognormalLaw
from repro.stochastic.rootfind import (
    IntervalUnion,
    bracketed_root,
    find_all_roots,
    sign_change_brackets,
)


class TestSignChangeBrackets:
    def test_single_root(self):
        brackets = sign_change_brackets(lambda x: x - 2.0, 0.1, 10.0)
        assert len(brackets) == 1
        lo, hi = brackets[0]
        assert lo < 2.0 < hi

    def test_no_root(self):
        assert sign_change_brackets(lambda x: x + 1.0, 0.1, 10.0) == []

    def test_three_roots(self):
        f = lambda x: (x - 1.0) * (x - 2.0) * (x - 4.0)
        brackets = sign_change_brackets(f, 0.1, 10.0)
        assert len(brackets) == 3

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            sign_change_brackets(lambda x: x, 5.0, 1.0)

    def test_rejects_tiny_scan(self):
        with pytest.raises(ValueError):
            sign_change_brackets(lambda x: x, 1.0, 2.0, n_scan=1)


class TestFindAllRoots:
    def test_polynomial_roots(self):
        f = lambda x: (x - 1.0) * (x - 2.0) * (x - 4.0)
        roots = find_all_roots(f, 0.1, 10.0)
        assert roots == pytest.approx([1.0, 2.0, 4.0], abs=1e-9)

    def test_roots_sorted(self):
        f = lambda x: math.sin(x)
        roots = find_all_roots(f, 1.0, 10.0)
        assert roots == sorted(roots)
        assert roots == pytest.approx([math.pi, 2 * math.pi, 3 * math.pi], abs=1e-9)

    def test_bracketed_root_precision(self):
        root = bracketed_root(lambda x: x * x - 2.0, 1.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-12)


class TestIntervalUnionConstruction:
    def test_empty(self):
        region = IntervalUnion.empty()
        assert region.is_empty
        assert region.total_length() == 0.0

    def test_single(self):
        region = IntervalUnion.single(1.0, 2.0)
        assert len(region) == 1
        assert region.bounds() == (1.0, 2.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError, match="degenerate"):
            IntervalUnion(((2.0, 2.0),))

    def test_rejects_overlapping(self):
        with pytest.raises(ValueError, match="disjoint"):
            IntervalUnion(((1.0, 3.0), (2.0, 4.0)))

    def test_from_intervals_merges_overlaps(self):
        region = IntervalUnion.from_intervals([(1.0, 3.0), (2.0, 4.0), (5.0, 6.0)])
        assert region.intervals == ((1.0, 4.0), (5.0, 6.0))

    def test_from_intervals_drops_degenerate(self):
        region = IntervalUnion.from_intervals([(1.0, 1.0), (2.0, 3.0)])
        assert region.intervals == ((2.0, 3.0),)

    def test_empty_bounds_raises(self):
        with pytest.raises(ValueError):
            IntervalUnion.empty().bounds()


class TestIntervalUnionQueries:
    REGION = IntervalUnion(((1.0, 2.0), (3.0, 4.0)))

    def test_membership(self):
        assert 1.5 in self.REGION
        assert 2.5 not in self.REGION
        assert 3.5 in self.REGION
        # half-open convention: (lo, hi]
        assert 1.0 not in self.REGION
        assert 2.0 in self.REGION

    def test_total_length(self):
        assert self.REGION.total_length() == pytest.approx(2.0)

    def test_probability_under_law(self):
        law = LognormalLaw(spot=2.0, mu=0.0, sigma=0.3, tau=1.0)
        expected = float(
            law.cdf(2.0) - law.cdf(1.0) + law.cdf(4.0) - law.cdf(3.0)
        )
        assert self.REGION.probability(law) == pytest.approx(expected)


class TestIntervalUnionAlgebra:
    A = IntervalUnion(((1.0, 3.0), (5.0, 7.0)))
    B = IntervalUnion(((2.0, 6.0),))

    def test_intersect(self):
        assert self.A.intersect(self.B).intervals == ((2.0, 3.0), (5.0, 6.0))

    def test_intersect_with_empty(self):
        assert self.A.intersect(IntervalUnion.empty()).is_empty

    def test_union(self):
        assert self.A.union(self.B).intervals == ((1.0, 7.0),)

    def test_union_with_empty(self):
        assert self.A.union(IntervalUnion.empty()).intervals == self.A.intervals

    def test_complement_within(self):
        gaps = self.A.complement_within(0.0, 8.0)
        assert gaps.intervals == ((0.0, 1.0), (3.0, 5.0), (7.0, 8.0))

    def test_complement_of_empty_is_window(self):
        gaps = IntervalUnion.empty().complement_within(1.0, 2.0)
        assert gaps.intervals == ((1.0, 2.0),)

    def test_complement_rejects_bad_window(self):
        with pytest.raises(ValueError):
            self.A.complement_within(5.0, 1.0)


class TestWherePositive:
    def test_middle_bump(self):
        f = lambda x: -(x - 1.0) * (x - 4.0)  # positive on (1, 4)
        region = IntervalUnion.where_positive(f, 0.1, 10.0)
        assert len(region) == 1
        lo, hi = region.bounds()
        assert lo == pytest.approx(1.0, abs=1e-8)
        assert hi == pytest.approx(4.0, abs=1e-8)

    def test_two_bumps(self):
        f = lambda x: (x - 1.0) * (x - 2.0) * (x - 4.0) * (8.0 - x)
        region = IntervalUnion.where_positive(f, 0.5, 10.0)
        assert len(region) == 2

    def test_everywhere_negative(self):
        region = IntervalUnion.where_positive(lambda x: -1.0, 0.1, 10.0)
        assert region.is_empty

    def test_everywhere_positive(self):
        region = IntervalUnion.where_positive(lambda x: 1.0, 0.1, 10.0)
        assert region.intervals == ((0.1, 10.0),)


interval_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    ),
    max_size=8,
)


@settings(max_examples=80, deadline=None)
@given(pairs=interval_lists)
def test_property_from_intervals_normalises(pairs):
    region = IntervalUnion.from_intervals(pairs)
    # disjoint and sorted by construction; validation would raise otherwise
    total = region.total_length()
    raw = sum(max(hi - lo, 0.0) for lo, hi in pairs)
    assert 0.0 <= total <= raw + 1e-9


@settings(max_examples=80, deadline=None)
@given(pairs_a=interval_lists, pairs_b=interval_lists)
def test_property_intersection_is_subset(pairs_a, pairs_b):
    a = IntervalUnion.from_intervals(pairs_a)
    b = IntervalUnion.from_intervals(pairs_b)
    inter = a.intersect(b)
    assert inter.total_length() <= min(a.total_length(), b.total_length()) + 1e-9
    union = a.union(b)
    # inclusion-exclusion
    assert union.total_length() == pytest.approx(
        a.total_length() + b.total_length() - inter.total_length(), abs=1e-6
    )
