"""Tests for the decision-time grid and price sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stochastic.gbm import GeometricBrownianMotion
from repro.stochastic.paths import DecisionTimeGrid, sample_decision_prices
from repro.stochastic.rng import RandomState

GRID = DecisionTimeGrid(tau_a=3.0, tau_b=4.0, eps_b=1.0)


class TestGridValidation:
    def test_rejects_eps_exceeding_tau_b(self):
        with pytest.raises(ValueError, match="eps_b"):
            DecisionTimeGrid(tau_a=3.0, tau_b=4.0, eps_b=5.0)

    def test_rejects_zero_eps(self):
        with pytest.raises(ValueError):
            DecisionTimeGrid(tau_a=3.0, tau_b=4.0, eps_b=0.0)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            DecisionTimeGrid(tau_a=0.0, tau_b=4.0, eps_b=1.0)


class TestEquation13:
    """The zero-waiting-time identities of the paper's Eq. (13)."""

    def test_t1_is_zero(self):
        assert GRID.t1 == 0.0

    def test_t2(self):
        assert GRID.t2 == 3.0

    def test_t3(self):
        assert GRID.t3 == 7.0

    def test_t4(self):
        assert GRID.t4 == 8.0

    def test_t5_equals_tb(self):
        assert GRID.t5 == 11.0
        assert GRID.t5 == GRID.t_b

    def test_t6_equals_ta(self):
        assert GRID.t6 == 11.0
        assert GRID.t6 == GRID.t_a

    def test_t7(self):
        assert GRID.t7 == GRID.t_b + 4.0 == 15.0

    def test_t8(self):
        assert GRID.t8 == GRID.t_a + 3.0 == 14.0

    def test_decision_times(self):
        assert GRID.decision_times() == (0.0, 3.0, 7.0)

    def test_all_times_sorted_unique(self):
        times = GRID.all_times()
        assert list(times) == sorted(set(times))

    def test_ordering_validates(self):
        GRID.validate_ordering()


class TestSampling:
    GBM = GeometricBrownianMotion(mu=0.002, sigma=0.1)

    def test_shape(self):
        prices = sample_decision_prices(self.GBM, 2.0, GRID, RandomState(1), 50)
        assert prices.shape == (50, 3)

    def test_first_column_is_spot(self):
        prices = sample_decision_prices(self.GBM, 2.0, GRID, RandomState(1), 50)
        assert np.allclose(prices[:, 0], 2.0)

    def test_columns_have_correct_moments(self):
        prices = sample_decision_prices(
            self.GBM, 2.0, GRID, RandomState(2), 200_000
        )
        assert prices[:, 1].mean() == pytest.approx(
            self.GBM.expectation(2.0, GRID.t2), rel=0.01
        )
        assert prices[:, 2].mean() == pytest.approx(
            self.GBM.expectation(2.0, GRID.t3), rel=0.01
        )

    def test_reproducible(self):
        a = sample_decision_prices(self.GBM, 2.0, GRID, RandomState(3), 10)
        b = sample_decision_prices(self.GBM, 2.0, GRID, RandomState(3), 10)
        assert np.array_equal(a, b)

    def test_antithetic_even_paths(self):
        prices = sample_decision_prices(
            self.GBM, 2.0, GRID, RandomState(4), 10, antithetic=True
        )
        assert prices.shape == (10, 3)
