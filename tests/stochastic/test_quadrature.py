"""Tests for the expectation quadrature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stochastic.lognormal import LognormalLaw
from repro.stochastic.quadrature import (
    expectation_above,
    expectation_below,
    expectation_on_interval,
    gauss_legendre_nodes,
)

LAW = LognormalLaw(spot=2.0, mu=0.002, sigma=0.1, tau=4.0)


class TestNodes:
    def test_nodes_and_weights_shapes(self):
        nodes, weights = gauss_legendre_nodes(32)
        assert nodes.shape == (32,)
        assert weights.shape == (32,)

    def test_weights_sum_to_two(self):
        _nodes, weights = gauss_legendre_nodes(64)
        assert weights.sum() == pytest.approx(2.0)

    def test_cached_instances(self):
        assert gauss_legendre_nodes(16) is gauss_legendre_nodes(16)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            gauss_legendre_nodes(0)


class TestExpectationOnInterval:
    def test_total_mass_is_one(self):
        lo, hi = LAW.effective_support(1e-14)
        mass = expectation_on_interval(LAW, lambda x: np.ones_like(x), lo, hi)
        assert mass == pytest.approx(1.0, abs=1e-10)

    def test_mean_recovered(self):
        lo, hi = LAW.effective_support(1e-14)
        mean = expectation_on_interval(LAW, lambda x: x, lo, hi)
        assert mean == pytest.approx(LAW.mean(), rel=1e-10)

    def test_interval_probability_matches_cdf(self):
        prob = expectation_on_interval(LAW, lambda x: np.ones_like(x), 1.5, 2.5)
        assert prob == pytest.approx(LAW.probability_between(1.5, 2.5), abs=1e-10)

    def test_empty_interval_is_zero(self):
        assert expectation_on_interval(LAW, lambda x: x, 3.0, 2.0) == 0.0

    def test_negative_lo_clipped(self):
        a = expectation_on_interval(LAW, lambda x: x, -5.0, 2.0)
        b = expectation_on_interval(LAW, lambda x: x, 0.0, 2.0)
        assert a == pytest.approx(b)

    def test_interval_outside_support_is_zero(self):
        assert expectation_on_interval(LAW, lambda x: x, 1e6, 2e6) == 0.0

    def test_linearity(self):
        f1 = expectation_on_interval(LAW, lambda x: x, 1.0, 3.0)
        f2 = expectation_on_interval(LAW, lambda x: np.ones_like(x), 1.0, 3.0)
        combo = expectation_on_interval(LAW, lambda x: 2.0 * x + 3.0, 1.0, 3.0)
        assert combo == pytest.approx(2.0 * f1 + 3.0 * f2, rel=1e-12)

    def test_order_convergence(self):
        coarse = expectation_on_interval(LAW, np.sqrt, 1.0, 4.0, order=24)
        fine = expectation_on_interval(LAW, np.sqrt, 1.0, 4.0, order=128)
        assert coarse == pytest.approx(fine, rel=1e-8)


class TestTails:
    def test_above_plus_below_equals_total(self):
        k = 2.1
        above = expectation_above(LAW, lambda x: x, k)
        below = expectation_below(LAW, lambda x: x, k)
        assert above + below == pytest.approx(LAW.mean(), rel=1e-9)

    def test_above_matches_partial_expectation(self):
        k = 1.7
        assert expectation_above(LAW, lambda x: x, k) == pytest.approx(
            float(LAW.partial_expectation_above(k)), rel=1e-10
        )

    def test_below_matches_partial_expectation(self):
        k = 2.6
        assert expectation_below(LAW, lambda x: x, k) == pytest.approx(
            float(LAW.partial_expectation_below(k)), rel=1e-10
        )
