"""Unit + property tests for the lognormal law."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stochastic.lognormal import LognormalLaw, norm_cdf, norm_ppf
from repro.stochastic.rng import RandomState

LAW = LognormalLaw(spot=2.0, mu=0.002, sigma=0.1, tau=4.0)

law_params = st.tuples(
    st.floats(min_value=0.1, max_value=50.0),      # spot
    st.floats(min_value=-0.05, max_value=0.05),    # mu
    st.floats(min_value=0.01, max_value=0.5),      # sigma
    st.floats(min_value=0.1, max_value=48.0),      # tau
)


def make_law(args) -> LognormalLaw:
    spot, mu, sigma, tau = args
    return LognormalLaw(spot=spot, mu=mu, sigma=sigma, tau=tau)


class TestValidation:
    def test_rejects_nonpositive_spot(self):
        with pytest.raises(ValueError, match="spot"):
            LognormalLaw(spot=0.0, mu=0.0, sigma=0.1, tau=1.0)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            LognormalLaw(spot=1.0, mu=0.0, sigma=0.0, tau=1.0)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError, match="tau"):
            LognormalLaw(spot=1.0, mu=0.0, sigma=0.1, tau=0.0)


class TestNormalHelpers:
    def test_cdf_at_zero_is_half(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)

    def test_cdf_symmetry(self):
        assert norm_cdf(1.3) + norm_cdf(-1.3) == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert norm_cdf(norm_ppf(q)) == pytest.approx(q, abs=1e-12)

    def test_ppf_rejects_boundary(self):
        with pytest.raises(ValueError):
            norm_ppf(0.0)
        with pytest.raises(ValueError):
            norm_ppf(1.0)


class TestPaperFormulas:
    """The E / P / C expressions from Section III-A."""

    def test_mean_matches_formula(self):
        # E(P_t, tau) = P_t * e^{mu tau}
        assert LAW.mean() == pytest.approx(2.0 * math.exp(0.002 * 4.0))

    def test_pdf_matches_paper_expression(self):
        x = 1.7
        mu, sigma, tau, spot = 0.002, 0.1, 4.0, 2.0
        expected = (
            1.0
            / (math.sqrt(2 * math.pi * tau) * sigma * x)
            * math.exp(
                -((math.log(x / spot) - (mu - sigma**2 / 2) * tau) ** 2)
                / (2 * tau * sigma**2)
            )
        )
        assert LAW.pdf(x) == pytest.approx(expected, rel=1e-12)

    def test_cdf_matches_erfc_expression(self):
        from scipy.special import erfc

        x = 2.3
        mu, sigma, tau, spot = 0.002, 0.1, 4.0, 2.0
        expected = 0.5 * erfc(
            -(math.log(x / spot) - (mu - sigma**2 / 2) * tau)
            / (math.sqrt(2 * tau) * sigma)
        )
        # paper writes C = erfc((ln(x/P) - (mu - s^2/2) tau) / (sqrt(2 tau) s)) / 2
        # for P[P <= x]; erfc(-z)/2 = Phi(z) -- check both agree with ours
        assert LAW.cdf(x) == pytest.approx(expected, rel=1e-12)

    def test_pdf_zero_for_nonpositive_x(self):
        assert LAW.pdf(0.0) == 0.0
        assert LAW.pdf(-1.0) == 0.0

    def test_cdf_zero_for_nonpositive_x(self):
        assert LAW.cdf(0.0) == 0.0
        assert LAW.cdf(-3.0) == 0.0


class TestPartialExpectations:
    def test_above_plus_below_is_mean(self):
        k = 1.9
        total = LAW.partial_expectation_above(k) + LAW.partial_expectation_below(k)
        assert total == pytest.approx(LAW.mean(), rel=1e-12)

    def test_above_at_zero_threshold_is_mean(self):
        assert LAW.partial_expectation_above(0.0) == pytest.approx(LAW.mean())

    def test_above_decreasing_in_threshold(self):
        ks = np.linspace(0.5, 5.0, 20)
        values = LAW.partial_expectation_above(ks)
        assert np.all(np.diff(values) < 0.0)

    def test_between_is_difference(self):
        lo, hi = 1.5, 2.5
        expected = float(
            LAW.partial_expectation_above(lo) - LAW.partial_expectation_above(hi)
        )
        assert LAW.partial_expectation_between(lo, hi) == pytest.approx(expected)

    def test_between_rejects_inverted_interval(self):
        with pytest.raises(ValueError, match="empty interval"):
            LAW.partial_expectation_between(3.0, 2.0)

    def test_probability_between_is_cdf_difference(self):
        assert LAW.probability_between(1.0, 3.0) == pytest.approx(
            float(LAW.cdf(3.0) - LAW.cdf(1.0))
        )

    def test_quadrature_agrees_with_closed_form(self):
        # integrate x * pdf(x) numerically over (k, inf) and compare
        from repro.stochastic.quadrature import expectation_above

        k = 1.8
        numeric = expectation_above(LAW, lambda x: x, k)
        assert numeric == pytest.approx(
            float(LAW.partial_expectation_above(k)), rel=1e-9
        )


class TestQuantiles:
    def test_quantile_inverts_cdf(self):
        for q in (0.05, 0.5, 0.95):
            assert float(LAW.cdf(LAW.quantile(q))) == pytest.approx(q, abs=1e-10)

    def test_median_is_log_mean_exp(self):
        assert float(LAW.quantile(0.5)) == pytest.approx(math.exp(LAW.log_mean))

    def test_effective_support_captures_mass(self):
        lo, hi = LAW.effective_support(1e-9)
        assert float(LAW.cdf(lo)) == pytest.approx(1e-9, rel=1e-3)
        assert float(LAW.survival(hi)) == pytest.approx(1e-9, rel=1e-3)

    def test_effective_support_rejects_bad_tail(self):
        with pytest.raises(ValueError):
            LAW.effective_support(0.7)


class TestSampling:
    def test_sample_mean_converges(self):
        rng = RandomState(5)
        samples = LAW.sample(rng, size=200_000)
        assert samples.mean() == pytest.approx(LAW.mean(), rel=0.01)

    def test_sample_cdf_converges(self):
        rng = RandomState(6)
        samples = LAW.sample(rng, size=100_000)
        k = 2.2
        assert (samples <= k).mean() == pytest.approx(float(LAW.cdf(k)), abs=0.01)


@settings(max_examples=60, deadline=None)
@given(args=law_params)
def test_property_survival_complements_cdf(args):
    law = make_law(args)
    x = law.mean()
    assert float(law.cdf(x)) + float(law.survival(x)) == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(args=law_params, q=st.floats(min_value=0.001, max_value=0.999))
def test_property_quantile_roundtrip(args, q):
    law = make_law(args)
    assert float(law.cdf(law.quantile(q))) == pytest.approx(q, abs=1e-8)


@settings(max_examples=60, deadline=None)
@given(args=law_params, k=st.floats(min_value=0.01, max_value=100.0))
def test_property_partial_expectations_bounded_by_mean(args, k):
    law = make_law(args)
    above = float(law.partial_expectation_above(k))
    below = float(law.partial_expectation_below(k))
    assert 0.0 <= above <= law.mean() * (1 + 1e-12)
    assert 0.0 <= below <= law.mean() * (1 + 1e-12)
    assert above + below == pytest.approx(law.mean(), rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(args=law_params)
def test_property_pdf_integrates_to_one(args):
    law = make_law(args)
    from repro.stochastic.quadrature import expectation_on_interval

    lo, hi = law.effective_support(1e-14)
    mass = expectation_on_interval(law, lambda x: np.ones_like(x), lo, hi)
    assert mass == pytest.approx(1.0, abs=1e-9)
