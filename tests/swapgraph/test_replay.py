"""Chain-substrate replay: equilibrium strategies on simulated chains.

The protocol-level validator replays the solved per-step policies on
one simulated blockchain per edge. Two invariants: the empirical
success rate must match the game-theoretic prediction within binomial
tolerance, and the chains must end *mechanically* consistent -- every
contract of a revealed round CLAIMED, every other contract REFUNDED.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.swapgraph import (
    SwapGraphReplay,
    SwapGraphSpec,
    replay_swap_graph,
    solve_swap_graph,
)


class TestReplayMatchesPrediction:
    def test_cycle_replay_passes(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3))
        replay = replay_swap_graph(eq, n_paths=200, seed=11)
        assert replay.passed
        assert replay.mechanical_failures == 0
        assert replay.predicted_rate == pytest.approx(eq.success_rate)
        assert 0.0 < replay.empirical_rate < 1.0

    def test_closed_form_replay_passes(self):
        eq = solve_swap_graph(
            SwapGraphSpec.two_party(SwapParameters.default())
        )
        replay = replay_swap_graph(eq, n_paths=200, seed=7)
        assert replay.passed
        assert replay.mechanical_failures == 0

    def test_packetized_replay_passes(self):
        spec = SwapGraphSpec.two_party(
            SwapParameters.default(), packets=4
        ).replace(step_time=1.0)
        eq = solve_swap_graph(spec, n_lattice=7)
        replay = replay_swap_graph(eq, n_paths=150, seed=3)
        assert replay.passed
        assert replay.mechanical_failures == 0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        first = replay_swap_graph(eq, n_paths=120, seed=5)
        second = replay_swap_graph(eq, n_paths=120, seed=5)
        assert first == second

    def test_different_seeds_vary(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        rates = {
            replay_swap_graph(eq, n_paths=120, seed=seed).empirical_rate
            for seed in range(4)
        }
        assert len(rates) > 1  # the seed actually reaches the sampler


class TestRoundTrip:
    def test_replay_dict_round_trip(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        replay = replay_swap_graph(eq, n_paths=60, seed=1)
        assert SwapGraphReplay.from_dict(replay.to_dict()) == replay

    def test_rejects_bad_paths(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        with pytest.raises(ValueError, match="n_paths"):
            replay_swap_graph(eq, n_paths=0, seed=1)
