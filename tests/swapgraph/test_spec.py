"""SwapGraphSpec: validation, constructors, exact dict round-trips."""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.swapgraph import SwapGraphSpec
from repro.swapgraph.spec import MAX_DECISION_STEPS, GraphEdge, GraphParty


def default_two_party(**overrides) -> SwapGraphSpec:
    spec = SwapGraphSpec.two_party(SwapParameters.default())
    return spec.replace(**overrides) if overrides else spec


class TestValidation:
    def test_needs_two_parties(self):
        with pytest.raises(ValueError, match="parties"):
            SwapGraphSpec(
                parties=(GraphParty("solo"),),
                edges=(
                    GraphEdge("solo", "other", 1.0),
                    GraphEdge("other", "solo", 1.0),
                ),
            )

    def test_rejects_duplicate_party_names(self):
        with pytest.raises(ValueError, match="unique"):
            SwapGraphSpec(
                parties=(GraphParty("a"), GraphParty("a")),
                edges=(
                    GraphEdge("a", "b", 1.0),
                    GraphEdge("b", "a", 1.0),
                ),
            )

    def test_rejects_unknown_endpoint(self):
        with pytest.raises(ValueError, match="not a party"):
            SwapGraphSpec(
                parties=(GraphParty("a"), GraphParty("b")),
                edges=(
                    GraphEdge("a", "b", 1.0),
                    GraphEdge("b", "ghost", 1.0),
                ),
            )

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            GraphEdge("a", "a", 1.0)

    def test_rejects_too_many_steps(self):
        # packets * (edges + 1) must stay within the decision-step cap
        packets = MAX_DECISION_STEPS // 3 + 1
        with pytest.raises(ValueError, match="decision steps"):
            SwapGraphSpec.cycle(2, packets=packets)

    def test_rejects_eps_at_or_over_tau(self):
        with pytest.raises(ValueError, match="eps"):
            default_two_party(eps=10.0)

    def test_rejects_nonpositive_amount(self):
        with pytest.raises(ValueError, match="amount"):
            GraphEdge("a", "b", 0.0)


class TestConstructors:
    def test_two_party_is_paper_shape(self):
        spec = default_two_party()
        assert spec.is_paper_shape()
        assert len(spec.parties) == 2
        assert len(spec.edges) == 2
        assert spec.edges[1].volatile

    def test_packets_break_paper_shape(self):
        spec = SwapGraphSpec.two_party(SwapParameters.default(), packets=2)
        assert not spec.is_paper_shape()

    def test_cycle_shape(self):
        spec = SwapGraphSpec.cycle(4)
        assert [p.name for p in spec.parties] == ["P0", "P1", "P2", "P3"]
        assert len(spec.edges) == 4
        # exactly the last edge is volatile, and its amount is rebased
        # by 1/p0 so every leg is worth the same at the starting price
        assert [e.volatile for e in spec.edges] == [False, False, False, True]
        assert spec.edges[-1].amount * spec.p0 == pytest.approx(
            spec.edges[0].amount
        )

    def test_cycle_leader_is_last_buyer(self):
        spec = SwapGraphSpec.cycle(3)
        assert spec.leader == spec.edges[-1].buyer

    def test_to_swap_parameters_inverts_two_party(self):
        params = SwapParameters.default()
        rebuilt = SwapGraphSpec.two_party(params).to_swap_parameters()
        assert rebuilt.to_dict() == params.to_dict()


class TestTimelocks:
    def test_default_timelocks_nest(self):
        # earlier edges must outlive later ones: a refund window that
        # closes before a downstream reveal would let the leader steal
        spec = SwapGraphSpec.cycle(3)
        locks = [spec.edge_timelock(i) for i in range(len(spec.edges))]
        assert locks == sorted(locks, reverse=True)

    def test_explicit_timelock_wins(self):
        import dataclasses

        spec = default_two_party()
        edges = (
            spec.edges[0],
            dataclasses.replace(spec.edges[1], timelock=99.0),
        )
        spec = spec.replace(edges=edges)
        assert spec.edge_timelock(1) == 99.0


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            default_two_party(),
            SwapGraphSpec.cycle(3, packets=2, collateral=0.25),
            SwapGraphSpec.two_party(
                SwapParameters.default(), packets=4
            ).replace(step_time=1.0),
        ],
        ids=["two-party", "cycle-collateral", "packetized"],
    )
    def test_exact_round_trip(self, spec):
        assert SwapGraphSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = default_two_party().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            SwapGraphSpec.from_dict(data)
