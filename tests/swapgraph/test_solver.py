"""Lattice solves: cycles, packetization, equilibrium round-trips."""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.swapgraph import (
    SwapGraphEquilibrium,
    SwapGraphSpec,
    auto_lattice_size,
    build_swap_graph_game,
    solve_swap_graph,
)
from repro.swapgraph.spec import GraphEdge, GraphParty


class TestCycles:
    def test_three_party_cycle_solves(self):
        spec = SwapGraphSpec.cycle(3)
        eq = solve_swap_graph(spec)
        assert eq.mode == "lattice"
        assert eq.initiated
        assert 0.0 < eq.success_rate < 1.0
        assert sorted(eq.utilities) == ["P0", "P1", "P2"]
        # one lock step per edge plus one reveal step, per round
        assert len(eq.steps) == 4

    def test_longer_cycles_fail_more(self):
        # every extra leg adds a defection point and more discounting;
        # the equilibrium success rate must fall with cycle length
        rates = [
            solve_swap_graph(SwapGraphSpec.cycle(n, ), n_lattice=9).success_rate
            for n in (2, 3, 4)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_unbalanced_cycle_is_not_initiated(self):
        # all legs amount 1.0 with a volatile last edge worth p0=2 in
        # the numeraire: the volatile seller would pay double, so the
        # graph never starts
        parties = tuple(GraphParty(f"P{i}") for i in range(3))
        edges = (
            GraphEdge("P0", "P1", 1.0),
            GraphEdge("P1", "P2", 1.0),
            GraphEdge("P2", "P0", 1.0, volatile=True),
        )
        eq = solve_swap_graph(
            SwapGraphSpec(parties=parties, edges=edges), n_lattice=9
        )
        assert not eq.initiated
        assert eq.unconditional_success_rate == 0.0


class TestPacketization:
    def test_packetized_swap_solves(self):
        spec = SwapGraphSpec.two_party(
            SwapParameters.default(), packets=4
        ).replace(step_time=1.0)
        eq = solve_swap_graph(spec)
        assert eq.mode == "lattice"
        assert eq.initiated
        assert len(eq.steps) == 4 * 3  # k rounds of (2 locks + 1 reveal)
        assert 0.0 < eq.success_rate < 1.0

    def test_packetization_costs_success(self):
        # each extra packet adds defection points and time discounting;
        # under a fixed step time the success rate declines in k
        def rate(k: int) -> float:
            spec = SwapGraphSpec.two_party(
                SwapParameters.default(), packets=k
            ).replace(step_time=1.0)
            return solve_swap_graph(spec, n_lattice=5).success_rate

        assert rate(2) > rate(4) > rate(8)


class TestLattice:
    def test_auto_lattice_respects_budget(self):
        import math

        for n_steps in (3, 6, 12, 24):
            m = auto_lattice_size(n_steps, budget=40_000)
            assert 3 <= m <= 64
            assert math.comb(n_steps - 1 + m, m) <= 40_000 or m == 3

    def test_explicit_lattice_size_caps_states(self):
        spec = SwapGraphSpec.two_party(SwapParameters.default(), packets=8)
        with pytest.raises(ValueError, match="states"):
            build_swap_graph_game(spec, n_lattice=64)

    def test_node_count_reported(self):
        spec = SwapGraphSpec.cycle(3)
        eq = solve_swap_graph(spec, n_lattice=5)
        assert eq.node_count > 0
        assert eq.n_lattice == 5


class TestRoundTrip:
    def test_equilibrium_dict_round_trip(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        rebuilt = SwapGraphEquilibrium.from_dict(eq.to_dict())
        assert rebuilt == eq

    def test_closed_form_dict_round_trip(self):
        eq = solve_swap_graph(SwapGraphSpec.two_party(SwapParameters.default()))
        rebuilt = SwapGraphEquilibrium.from_dict(eq.to_dict())
        assert rebuilt == eq

    def test_policy_continues_at_respects_intervals(self):
        eq = solve_swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        for policy in eq.steps:
            if not policy.cont_intervals:
                assert not policy.continues_at(2.0)
                continue
            lo, hi = policy.cont_intervals[0]
            if hi == float("inf"):
                inside = max(lo, 0.5) * 2.0
            else:
                inside = (max(lo, hi / 4.0) + hi) / 2.0
            assert policy.continues_at(inside)
