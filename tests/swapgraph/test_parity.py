"""Regression pin: k=1 / n=2 swap graphs reproduce the paper solver.

The swap-graph subsystem must not drift from the closed-form
three-stage solver it generalises. A paper-shaped spec (two parties,
two edges, one packet, no collateral) is *required* to agree with
:func:`repro.core.solver.solve_swap_game` to <= 1e-9 on every number
the two share: per-party equilibrium utilities, the success rate, the
t3 reveal threshold, and Bob's t2 continuation region.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SwapParameters
from repro.core.solver import solve_swap_game
from repro.swapgraph import SwapGraphSpec, solve_swap_graph

TOL = 1e-9
PSTARS = (1.7, 2.0, 2.4)


@pytest.mark.parametrize("pstar", PSTARS)
class TestClosedFormParity:
    def test_utilities_match(self, pstar):
        params = SwapParameters.default()
        reference = solve_swap_game(params, pstar)
        eq = solve_swap_graph(SwapGraphSpec.two_party(params, pstar=pstar))
        assert eq.mode == "closed_form"
        expected_alice = (
            reference.alice_t1.cont
            if reference.initiated
            else reference.alice_t1.stop
        )
        expected_bob = (
            reference.bob_t1.cont
            if reference.initiated
            else reference.bob_t1.stop
        )
        assert abs(eq.utilities["alice"] - expected_alice) <= TOL
        assert abs(eq.utilities["bob"] - expected_bob) <= TOL

    def test_success_rate_matches(self, pstar):
        params = SwapParameters.default()
        reference = solve_swap_game(params, pstar)
        eq = solve_swap_graph(SwapGraphSpec.two_party(params, pstar=pstar))
        assert abs(eq.success_rate - reference.success_rate) <= TOL
        assert eq.initiated == reference.initiated

    def test_thresholds_match(self, pstar):
        params = SwapParameters.default()
        reference = solve_swap_game(params, pstar)
        eq = solve_swap_graph(SwapGraphSpec.two_party(params, pstar=pstar))
        reveal = eq.steps[-1]
        assert reveal.kind == "reveal"
        assert abs(reveal.threshold - reference.p3_threshold) <= TOL
        bob_lock = eq.steps[1]
        assert bob_lock.cont_intervals == tuple(
            reference.bob_t2_region.intervals
        )


def test_lattice_mode_approximates_closed_form():
    """Forcing the lattice on a paper-shaped spec lands near the exact
    answer -- the discretised game is the same game."""
    params = SwapParameters.default()
    spec = SwapGraphSpec.two_party(params)
    exact = solve_swap_graph(spec)
    lattice = solve_swap_graph(spec, n_lattice=64)
    assert lattice.mode == "lattice"
    assert exact.mode == "closed_form"
    assert lattice.initiated == exact.initiated
    assert lattice.success_rate == pytest.approx(
        exact.success_rate, abs=0.05
    )
    for name in ("alice", "bob"):
        assert lattice.utilities[name] == pytest.approx(
            exact.utilities[name], rel=0.05
        )
