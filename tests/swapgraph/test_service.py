"""Swap-graph requests through the service layer: parsing, keys,
caching, codecs, seeds, and the dispatcher-side fault hooks."""

from __future__ import annotations

import json

import pytest

from repro.service.api import SwapService
from repro.service.errors import SolveFailedError
from repro.service.keys import derive_seed, request_key
from repro.service.requests import SwapGraphRequest, parse_request
from repro.service.serialize import decode_result, encode_result
from repro.swapgraph import SwapGraphResult, SwapGraphSpec


def cycle_request(**overrides) -> SwapGraphRequest:
    fields = dict(spec=SwapGraphSpec.cycle(3), n_lattice=7)
    fields.update(overrides)
    return SwapGraphRequest(**fields)


class TestParsing:
    def test_round_trip(self):
        request = cycle_request(replay=True, replay_paths=50, seed=9)
        rebuilt = parse_request(json.loads(json.dumps(request.to_dict())))
        assert rebuilt == request

    def test_kind_tag(self):
        assert cycle_request().to_dict()["kind"] == "swap_graph"

    def test_rejects_unknown_fields(self):
        data = cycle_request().to_dict()
        data["bogus"] = True
        with pytest.raises(Exception, match="bogus"):
            parse_request(data)

    def test_unknown_kind_names_swap_graph(self):
        with pytest.raises(Exception, match="swap_graph"):
            parse_request({"kind": "nonsense"})

    def test_rejects_bad_replay_paths(self):
        from repro.service.errors import RequestValidationError

        with pytest.raises(RequestValidationError, match="replay_paths"):
            cycle_request(replay_paths=0)


class TestKeys:
    def test_key_is_stable(self):
        assert request_key(cycle_request()) == request_key(cycle_request())

    def test_key_sees_every_knob(self):
        base = request_key(cycle_request())
        assert request_key(cycle_request(n_lattice=9)) != base
        assert request_key(cycle_request(replay=True)) != base
        assert (
            request_key(
                SwapGraphRequest(spec=SwapGraphSpec.cycle(4), n_lattice=7)
            )
            != base
        )


class TestService:
    def test_solve_and_cache(self):
        service = SwapService()
        request = cycle_request()
        first = service.run_batch([request])[0]
        assert first.ok and not first.cached
        second = service.run_batch([request])[0]
        assert second.ok and second.cached
        assert first.value.to_dict() == second.value.to_dict()

    def test_replay_seed_derived_from_key(self):
        service = SwapService()
        request = cycle_request(replay=True, replay_paths=40)
        result = service.run_batch([request])[0].unwrap()
        assert result.replay is not None
        assert result.replay.seed == derive_seed(request_key(request))

    def test_explicit_seed_wins(self):
        service = SwapService()
        request = cycle_request(replay=True, replay_paths=40, seed=123)
        result = service.run_batch([request])[0].unwrap()
        assert result.replay.seed == 123

    def test_convenience_method(self):
        result = SwapService().swap_graph(SwapGraphSpec.cycle(3), n_lattice=7)
        assert isinstance(result, SwapGraphResult)
        assert result.replay is None

    def test_mixed_batch(self):
        from repro.service.requests import SolveRequest

        service = SwapService()
        items = service.run_batch(
            [SolveRequest(pstar=2.0), cycle_request()]
        )
        assert all(item.ok for item in items)
        assert items[1].value.equilibrium.initiated


class TestCodec:
    def test_result_round_trip(self):
        result = SwapService().swap_graph(
            SwapGraphSpec.cycle(3), n_lattice=7, replay=True, replay_paths=40
        )
        encoded = json.loads(json.dumps(encode_result(result)))
        assert encoded["kind"] == "swap_graph_result"
        decoded = decode_result(encoded)
        assert decoded.to_dict() == result.to_dict()


class TestFaults:
    def test_swapgraph_error_hook(self):
        from repro.faults.plan import InjectionPlan

        plan = InjectionPlan.from_dict(
            {"seed": 1, "faults": [{"kind": "swapgraph_error", "count": 1}]}
        )
        service = SwapService(faults=plan)
        item = service.run_batch([cycle_request()])[0]
        assert not item.ok
        assert item.error is not None
        assert item.error.code == SolveFailedError.code
        assert service.faults.injected_total("swapgraph_error") == 1
        # the budget is spent: the next identical request heals
        healed = service.run_batch([cycle_request()])[0]
        assert healed.ok

    def test_swapgraph_slow_hook(self):
        from repro.faults.plan import InjectionPlan

        plan = InjectionPlan.from_dict(
            {
                "seed": 1,
                "faults": [
                    {"kind": "swapgraph_slow", "delay": 0.01, "count": 1}
                ],
            }
        )
        service = SwapService(faults=plan)
        item = service.run_batch([cycle_request()])[0]
        assert item.ok
        assert service.faults.injected_total("swapgraph_slow") == 1
