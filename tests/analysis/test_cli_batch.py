"""Tests for the ``repro-swaps batch`` command and CLI hardening."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _write_requests(tmp_path, lines):
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def _result_lines(capsys):
    return [json.loads(line) for line in capsys.readouterr().out.splitlines()]


class TestBatchCommand:
    def test_valid_requests_exit_zero(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path,
            [
                '{"kind": "solve", "pstar": 2.0}',
                '{"kind": "solve", "pstar": 2.0, "collateral": 0.5}',
                '{"kind": "validate", "pstar": 2.0, "n_paths": 2000, "seed": 3}',
            ],
        )
        assert main(["batch", path]) == 0
        results = _result_lines(capsys)
        assert len(results) == 3
        assert all(r["ok"] for r in results)
        assert results[0]["result"]["kind"] == "swap_equilibrium"
        assert results[1]["result"]["kind"] == "collateral_equilibrium"
        assert results[2]["result"]["kind"] == "validation"
        assert results[2]["result"]["seed_used"] == 3

    def test_invalid_values_are_structured_but_exit_zero(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path,
            [
                '{"kind": "solve", "pstar": 2.0}',
                '{"kind": "solve", "pstar": -1.0}',
                '{"kind": "frobnicate"}',
                '{"kind": "validate", "pstar": 2.0, "n_paths": 0}',
            ],
        )
        assert main(["batch", path]) == 0  # every line parsed as JSON
        results = _result_lines(capsys)
        assert [r["ok"] for r in results] == [True, False, False, False]
        assert results[1]["error"]["code"] == "invalid_request"
        assert results[2]["error"]["code"] == "invalid_request"
        assert results[3]["error"]["code"] == "invalid_request"

    def test_unparseable_line_exits_nonzero(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path,
            ['{"kind": "solve", "pstar": 2.0}', "this is not json"],
        )
        assert main(["batch", path]) == 1
        results = _result_lines(capsys)
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False
        assert results[1]["error"]["code"] == "parse_error"
        assert results[1]["line"] == 2

    def test_blank_lines_skipped(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path, ['{"kind": "solve", "pstar": 2.0}', "", "   "]
        )
        assert main(["batch", path]) == 0
        assert len(_result_lines(capsys)) == 1

    def test_stdin_input(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"kind": "solve", "pstar": 2.0}\n')
        )
        assert main(["batch"]) == 0
        assert _result_lines(capsys)[0]["ok"]

    def test_duplicate_requests_share_key_and_cache(self, capsys, tmp_path):
        line = '{"kind": "solve", "pstar": 2.0}'
        path = _write_requests(tmp_path, [line, line])
        assert main(["batch", path]) == 0
        results = _result_lines(capsys)
        assert results[0]["key"] == results[1]["key"]
        assert results[0]["result"] == results[1]["result"]

    def test_cache_dir_warm_run(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", path, "--cache-dir", cache_dir]) == 0
        cold = _result_lines(capsys)[0]
        assert main(["batch", path, "--cache-dir", cache_dir]) == 0
        warm = _result_lines(capsys)[0]
        assert not cold["cached"] and warm["cached"]
        assert warm["result"] == cold["result"]

    def test_params_override(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path,
            [
                '{"kind": "solve", "pstar": 2.0}',
                '{"kind": "solve", "pstar": 2.0, "params": {"sigma": 0.15}}',
            ],
        )
        assert main(["batch", path]) == 0
        results = _result_lines(capsys)
        assert results[0]["key"] != results[1]["key"]
        assert (
            results[0]["result"]["success_rate"]
            != results[1]["result"]["success_rate"]
        )

    def test_workers_flag_matches_serial(self, capsys, tmp_path):
        lines = [
            f'{{"kind": "validate", "pstar": {k}, "n_paths": 2000, "seed": 4}}'
            for k in (1.8, 2.0, 2.2)
        ]
        path = _write_requests(tmp_path, lines)
        assert main(["batch", path, "--workers", "1"]) == 0
        serial = _result_lines(capsys)
        assert main(["batch", path, "--workers", "2"]) == 0
        parallel = _result_lines(capsys)
        assert [r["result"] for r in serial] == [r["result"] for r in parallel]


class TestHardening:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro-swaps" in capsys.readouterr().out

    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure99"])
        assert excinfo.value.code != 0

    def test_invalid_pstar_clean_error(self, capsys):
        assert main(["solve", "--pstar", "-3"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_invalid_collateral_clean_error(self, capsys):
        assert main(["solve", "--pstar", "2.0", "--collateral", "-1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_validate_paths_clean_error(self, capsys):
        assert main(["validate", "--pstar", "2.0", "--paths", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_nan_pstar_clean_error(self, capsys):
        assert main(["solve", "--pstar", "nan"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_batch_file_clean_error(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "absent.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
