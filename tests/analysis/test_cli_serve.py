"""Tests for the ``repro-swaps serve`` command wiring."""

from __future__ import annotations

import threading

from repro.cli import build_parser, main
from repro.server import ServerConfig, SwapClient, serve


class TestServeParser:
    def test_defaults_match_server_config(self):
        args = build_parser().parse_args(["serve"])
        defaults = ServerConfig()
        assert args.host == defaults.host
        assert args.port == defaults.port
        assert args.queue_depth == defaults.queue_depth
        assert args.max_body_bytes == defaults.max_body_bytes
        assert args.deadline == defaults.deadline
        assert args.drain_timeout == defaults.drain_timeout
        assert args.cache_dir is None
        assert args.cache_entries is None
        assert args.metrics_out is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "0",
                "--workers", "2",
                "--queue-depth", "4",
                "--max-body-bytes", "512",
                "--deadline", "5.5",
                "--drain-timeout", "1.5",
                "--cache-dir", "/tmp/c",
                "--cache-entries", "100",
                "--metrics-out", "/tmp/m.prom",
            ]
        )
        assert (args.host, args.port, args.workers) == ("0.0.0.0", 0, 2)
        assert (args.queue_depth, args.max_body_bytes) == (4, 512)
        assert (args.deadline, args.drain_timeout) == (5.5, 1.5)
        assert args.cache_entries == 100

    def test_invalid_config_exits_two(self, capsys):
        assert main(["serve", "--queue-depth", "0"]) == 2
        err = capsys.readouterr().err
        assert "queue_depth" in err


class TestServeFunction:
    def test_serve_runs_until_stop_and_drains(self, tmp_path):
        metrics_path = tmp_path / "serve.prom"
        stop = threading.Event()
        announced = []
        config = ServerConfig(port=0, metrics_out=str(metrics_path))
        runner = threading.Thread(
            target=lambda: announced.append(
                serve(config, stop=stop, announce=announced.append)
            ),
            daemon=True,
        )
        runner.start()
        deadline = threading.Event()
        for _ in range(200):
            if announced:
                break
            deadline.wait(0.05)
        assert announced, "server never announced its port"
        event = announced[0]
        assert event["event"] == "listening"

        client = SwapClient(f"http://127.0.0.1:{event['port']}")
        assert client.ready() is True
        assert client.solve(pstar=2.0).success_rate > 0.0

        stop.set()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        assert announced[-1] == 0  # clean drain -> exit status 0
        assert "repro_http_requests_total" in metrics_path.read_text(
            encoding="utf-8"
        )
