"""Tests for the CLI observability surface: ``--json`` envelopes,
``batch --metrics-out`` / ``--log-out``, and the ``stats`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main


def _write_requests(tmp_path, lines):
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def _envelope(capsys):
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 1, "json mode must emit exactly one envelope line"
    envelope = json.loads(out[0])
    assert set(envelope) == {"ok", "result", "error"}
    return envelope


class TestJsonEnvelope:
    def test_solve_success(self, capsys):
        assert main(["solve", "--pstar", "2.0", "--json"]) == 0
        envelope = _envelope(capsys)
        assert envelope["ok"] is True
        assert envelope["error"] is None
        assert "Swap game at P*" in envelope["result"]

    def test_solve_failure(self, capsys):
        assert main(["solve", "--pstar", "-3", "--json"]) == 2
        envelope = _envelope(capsys)
        assert envelope["ok"] is False
        assert envelope["result"] is None
        assert envelope["error"]["code"] == "invalid_request"
        assert "pstar" in envelope["error"]["message"]

    def test_artifact_command(self, capsys):
        assert main(["table3", "--json"]) == 0
        envelope = _envelope(capsys)
        assert envelope["ok"] is True
        assert "sigma" in envelope["result"]

    def test_batch_envelope_wraps_records(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        assert main(["batch", path, "--json"]) == 0
        envelope = _envelope(capsys)
        assert envelope["ok"] is True
        [record] = envelope["result"]
        assert record["ok"] and record["kind"] == "solve"

    def test_batch_envelope_not_ok_on_parse_error(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ["not json"])
        assert main(["batch", path, "--json"]) == 1
        envelope = _envelope(capsys)
        assert envelope["ok"] is False
        assert envelope["result"][0]["error"]["code"] == "parse_error"

    def test_missing_file_failure_envelope(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "absent.jsonl"), "--json"]) == 2
        envelope = _envelope(capsys)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "invalid_value"

    def test_plain_mode_unchanged_by_flag_absence(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        assert main(["batch", path]) == 0
        [line] = capsys.readouterr().out.splitlines()
        record = json.loads(line)
        # historical per-line shape, not the envelope
        assert "line" in record and "key" in record


class TestMetricsOut:
    def test_writes_expected_families(self, capsys, tmp_path):
        path = _write_requests(
            tmp_path,
            [
                '{"kind": "solve", "pstar": 2.0}',
                '{"kind": "solve", "pstar": 2.0}',
                '{"kind": "validate", "pstar": 2.0, "n_paths": 1000, "seed": 1}',
            ],
        )
        metrics = tmp_path / "metrics.prom"
        assert main(["batch", path, "--metrics-out", str(metrics)]) == 0
        text = metrics.read_text(encoding="utf-8")
        for family in (
            "repro_batches_total",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_stage_seconds_bucket",
            "repro_pool_tasks_total",
            "repro_solver_calls_total",
            "repro_mc_paths_total",
        ):
            assert family in text, f"{family} missing from --metrics-out file"
        assert 'repro_cache_hits_total{tier="memory"}' in text

    def test_log_out_appends_span_events(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        log = tmp_path / "events.jsonl"
        assert main(["batch", path, "--log-out", str(log)]) == 0
        events = [
            json.loads(line)
            for line in log.read_text(encoding="utf-8").splitlines()
        ]
        assert events, "expected at least one trace event"
        spans = {e["span"] for e in events if e["event"] == "span"}
        assert "batch.execute" in spans


class TestStatsCommand:
    def test_prints_prometheus_after_serving(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_batches_total counter" in out
        assert "repro_solver_calls_total" in out

    def test_json_format(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        assert main(["stats", path, "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_batches_total"]["type"] == "counter"

    def test_json_flag_wraps_snapshot(self, capsys, tmp_path):
        path = _write_requests(tmp_path, ['{"kind": "solve", "pstar": 2.0}'])
        assert main(["stats", path, "--json"]) == 0
        envelope = _envelope(capsys)
        assert envelope["ok"] is True
        assert "repro_batches_total" in envelope["result"]

    def test_runs_without_input(self, capsys):
        assert main(["stats"]) == 0  # snapshot of whatever the process has
