"""Tests for sweeps, sensitivities and the CLI."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import sr_sensitivity
from repro.analysis.sweep import sr_curve_on_grid, sweep_parameter
from repro.cli import main


class TestSweep:
    def test_curve_on_grid(self, params):
        bounds, pstars, rates = sr_curve_on_grid(params, n_points=7)
        assert bounds is not None
        assert len(pstars) == 7
        assert all(0.0 <= r <= 1.0 for r in rates)
        assert bounds[0] <= pstars[0] and pstars[-1] <= bounds[1]

    def test_curve_empty_when_infeasible(self, params):
        bounds, pstars, rates = sr_curve_on_grid(
            params.replace(alpha_a=0.0, alpha_b=0.0)
        )
        assert bounds is None
        assert pstars == ()
        assert rates == ()

    def test_sweep_tags_viability(self, params):
        result = sweep_parameter(
            params, "sigma", (0.05, 0.25), n_points=5, locate_max=False
        )
        assert result.curve_for(0.05).viable
        assert not result.curve_for(0.25).viable
        assert result.viable_values() == [0.05]

    def test_sweep_locates_max(self, params):
        result = sweep_parameter(params, "mu", (0.002,), n_points=5)
        curve = result.curve_for(0.002)
        assert curve.best_pstar is not None
        assert curve.best_rate == pytest.approx(0.722, abs=0.01)

    def test_unknown_value_raises(self, params):
        result = sweep_parameter(params, "mu", (0.002,), n_points=3, locate_max=False)
        with pytest.raises(KeyError):
            result.curve_for(0.5)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def sens(self):
        from repro.core.parameters import SwapParameters

        return sr_sensitivity(
            SwapParameters.default(),
            parameters=("alpha_a", "sigma", "mu", "tau_a"),
        )

    def test_signs_match_section_iii_f(self, sens):
        assert sens["alpha_a"].sign == 1     # premium helps
        assert sens["sigma"].sign == -1      # volatility hurts
        assert sens["mu"].sign == 1          # upward trend helps
        assert sens["tau_a"].sign == -1      # slow chains hurt

    def test_derivative_definition(self, sens):
        entry = sens["sigma"]
        expected = (entry.sr_plus - entry.sr_minus) / (2 * entry.step)
        assert entry.derivative == pytest.approx(expected)

    def test_fixed_pstar_mode(self, params):
        sens = sr_sensitivity(params, pstar=2.0, parameters=("alpha_a",))
        assert sens["alpha_a"].sign == 1


class TestCLI:
    def test_table_commands(self, capsys):
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out
        assert main(["table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_figure_command(self, capsys):
        assert main(["figure3"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_solve_basic(self, capsys):
        assert main(["solve", "--pstar", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "Success rate" in out

    def test_solve_collateral(self, capsys):
        assert main(["solve", "--pstar", "2.0", "--collateral", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 40" in out

    def test_validate(self, capsys):
        assert main(["validate", "--paths", "20000", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
