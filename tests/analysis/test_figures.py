"""Tests for the figure data generators (shapes, not pixels)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.figures import (
    figure2_timeline,
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
    figure7_bob_t2_collateral,
    figure8_t1_collateral,
    figure9_sr_collateral,
)


class TestFigure2:
    def test_events_match_eq13(self, params):
        fig = figure2_timeline(params)
        times = dict(fig.events)
        assert times["t2 (Bob locks)"] == 3.0
        assert times["t3 (Alice reveals)"] == 7.0
        assert times["t5 = t_b (Alice receives)"] == 11.0
        assert times["t8 (Alice refunded on fail)"] == 14.0

    def test_render(self, params):
        assert "Figure 2(b)" in figure2_timeline(params).render()


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure3_alice_t3(n_points=21)

    def test_one_curve_per_pstar(self, fig):
        assert len(fig.curves) == 3

    def test_cont_linear_and_increasing(self, fig):
        for _pstar, cont, _stop, _thr in fig.curves:
            diffs = np.diff(cont)
            assert np.all(diffs > 0)
            assert np.allclose(diffs, diffs[0])  # linearity

    def test_stop_constant_increases_with_pstar(self, fig):
        stops = [stop for _p, _c, stop, _t in fig.curves]
        assert stops[0] < stops[1] < stops[2]

    def test_threshold_increases_with_pstar(self, fig):
        # Figure 3's annotation of Eq. (18)
        thresholds = [thr for *_rest, thr in fig.curves]
        assert thresholds[0] < thresholds[1] < thresholds[2]

    def test_render(self, fig):
        text = fig.render()
        assert "Figure 3" in text
        assert "threshold" in text


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure4_bob_t2(n_points=21)

    def test_ranges_shift_up_with_pstar(self, fig):
        ranges = [rng for _p, _c, rng in fig.curves]
        assert all(r is not None for r in ranges)
        lows = [r[0] for r in ranges]
        highs = [r[1] for r in ranges]
        assert lows == sorted(lows)
        assert highs == sorted(highs)

    def test_cont_curves_positive(self, fig):
        for _pstar, cont, _rng in fig.curves:
            assert all(v > 0 for v in cont)

    def test_render(self, fig):
        assert "Figure 4" in fig.render()


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure5_alice_t1(n_points=13)

    def test_feasible_range_near_paper_values(self, fig):
        lo, hi = fig.feasible_range
        assert lo == pytest.approx(1.5, abs=0.05)
        assert hi == pytest.approx(2.5, abs=0.05)

    def test_cont_beats_stop_inside_range_only(self, fig):
        lo, hi = fig.feasible_range
        for k, cont, stop in zip(fig.pstar_grid, fig.cont_values, fig.stop_values):
            if lo * 1.02 < k < hi * 0.98:
                assert cont > stop
            elif k < lo * 0.98 or k > hi * 1.02:
                assert cont < stop

    def test_render(self, fig):
        assert "Eq. 29" in fig.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig(self):
        # small sweep set to keep the suite fast
        return figure6_success_rate(
            sweeps={"alpha_b": (0.1, 0.3, 0.6), "sigma": (0.05, 0.1, 0.2)},
            n_points=9,
        )

    def test_panels_present(self, fig):
        assert {p.parameter for p in fig.panels} == {"alpha_b", "sigma"}

    def test_higher_alpha_b_higher_max_sr(self, fig):
        panel = fig.panel("alpha_b")
        viable = [c for c in panel.curves if c.viable]
        maxima = [c.max_rate for c in viable]
        assert maxima == sorted(maxima)

    def test_sigma_02_non_viable(self, fig):
        panel = fig.panel("sigma")
        curve = panel.curve_for(0.2)
        assert not curve.viable

    def test_low_sigma_beats_default(self, fig):
        panel = fig.panel("sigma")
        assert panel.curve_for(0.05).max_rate > panel.curve_for(0.1).max_rate

    def test_curves_unimodal_and_centrally_concave(self, fig):
        # the paper claims global concavity; at fine resolution wide
        # windows are S-shaped at the left edge, so we assert the
        # substantive properties: unimodality + central concavity
        for panel in fig.panels:
            for curve in panel.curves:
                if not curve.viable or len(curve.rates) < 3:
                    continue
                rates = np.asarray(curve.rates)
                peak = int(np.argmax(rates))
                assert np.all(np.diff(rates[: peak + 1]) > -1e-9)
                assert np.all(np.diff(rates[peak:]) < 1e-9)
                n = len(rates)
                central = rates[n // 5 : n - n // 5]
                if len(central) >= 3:
                    second_diff = np.diff(central, 2)
                    assert np.all(second_diff < 1e-6), (panel.parameter, curve.value)

    def test_render(self, fig):
        text = fig.render()
        assert "Figure 6" in text
        assert "non-viable" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure7_bob_t2_collateral(n_points=21)

    def test_regions_nonempty(self, fig):
        for _pstar, _q, _cont, region in fig.curves:
            assert not region.is_empty

    def test_regions_reach_low_prices(self, fig):
        # Section IV intuition 2: cont preferred near zero price
        for _pstar, _q, _cont, region in fig.curves:
            assert region.bounds()[0] < 0.05

    def test_render_shows_pieces(self, fig):
        assert "pieces" in fig.render()


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure8_t1_collateral(n_points=9)

    def test_stop_lines_include_deposit(self, fig):
        assert fig.alice_stop[0] == pytest.approx(fig.pstar_grid[0] + fig.collateral)
        assert all(v == fig.bob_stop[0] for v in fig.bob_stop)

    def test_regions_nonempty(self, fig):
        assert not fig.alice_region.is_empty
        assert not fig.bob_region.is_empty

    def test_intersection_subset_of_union(self, fig):
        joint = fig.alice_region.intersect(fig.bob_region)
        union = fig.alice_region.union(fig.bob_region)
        assert joint.total_length() <= union.total_length()

    def test_render(self, fig):
        text = fig.render()
        assert "intersection" in text
        assert "union" in text


class TestFigure9:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure9_sr_collateral(collaterals=(0.0, 0.2, 0.5), n_points=9)

    def test_sr_increases_with_q_pointwise(self, fig):
        rates_by_q = [np.asarray(rates) for _q, rates in fig.curves]
        assert np.all(rates_by_q[1] >= rates_by_q[0] - 1e-9)
        assert np.all(rates_by_q[2] >= rates_by_q[1] - 1e-9)

    def test_max_rates_ordered(self, fig):
        maxima = fig.max_rates()
        values = [rate for _q, rate in maxima]
        assert values == sorted(values)

    def test_render(self, fig):
        assert "Figure 9" in fig.render()
