"""Tests for the extension CLI commands."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestUncertaintyCommand:
    def test_with_spread(self, capsys):
        assert main(["uncertainty", "--spread", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "complete-information SR" in out
        assert "ex-ante SR" in out

    def test_zero_spread_matches_complete(self, capsys):
        assert main(["uncertainty", "--spread", "0"]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split(":")[0].strip(): line.split(":")[1].strip()
            for line in out.splitlines()
            if ":" in line
        }
        complete = float(lines["complete-information SR"])
        realised = float(lines[next(k for k in lines if k.startswith("realised"))])
        assert realised == pytest.approx(complete, abs=1e-9)


class TestMarketCommand:
    def test_output_shape(self, capsys):
        assert main(["market", "--pairs", "6"]) == 0
        out = capsys.readouterr().out
        assert "participation" in out
        # four sigma rows plus the header
        assert len(out.strip().splitlines()) == 5


class TestBacktestCommand:
    @pytest.mark.parametrize("market", ["gbm", "regime", "jumps"])
    def test_runs_each_market(self, capsys, market):
        assert main(["backtest", "--market", market, "--hours", "420"]) == 0
        out = capsys.readouterr().out
        assert f"backtest on {market} market" in out
        assert "predicted SR" in out


class TestExportCommand:
    def test_writes_files(self, capsys, tmp_path):
        assert main(["export", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "figure9.csv" in out
        assert (tmp_path / "figure6.csv").exists()
