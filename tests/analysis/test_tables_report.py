"""Tests for table generators and text rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import ascii_chart, format_table
from repro.analysis.tables import table1_balance_change, table3_default_parameters


class TestTable1:
    def test_rows_match_paper(self):
        rows, _text = table1_balance_change(pstar=2.0)
        alice_row, bob_row = rows
        assert alice_row[1] == pytest.approx(-2.0)  # -P* Token_a
        assert alice_row[2] == pytest.approx(1.0)   # +1 Token_b
        assert bob_row[1] == pytest.approx(2.0)
        assert bob_row[2] == pytest.approx(-1.0)

    def test_scales_with_pstar(self):
        rows, _text = table1_balance_change(pstar=3.5)
        assert rows[0][1] == pytest.approx(-3.5)
        assert rows[1][1] == pytest.approx(3.5)

    def test_rendered_output(self):
        _rows, text = table1_balance_change()
        assert "Table I" in text
        assert "Alice" in text
        assert "+1.0000" in text


class TestTable3:
    def test_all_parameters_present(self):
        rows, _text = table3_default_parameters()
        names = {row[0] for row in rows}
        assert names == {
            "alpha_a", "alpha_b", "r_a", "r_b", "tau_a", "tau_b",
            "eps_b", "p0", "mu", "sigma",
        }

    def test_values_match_paper(self):
        rows, _text = table3_default_parameters()
        values = {row[0]: row[1] for row in rows}
        assert values["alpha_a"] == 0.3
        assert values["r_b"] == 0.01
        assert values["tau_a"] == 3.0
        assert values["tau_b"] == 4.0
        assert values["eps_b"] == 1.0
        assert values["p0"] == 2.0
        assert values["mu"] == 0.002
        assert values["sigma"] == 0.1

    def test_units_included(self):
        rows, _text = table3_default_parameters()
        units = {row[0]: row[2] for row in rows}
        assert units["r_a"] == "/hour"
        assert units["sigma"] == "/sqrt(hour)"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = format_table(["a"], [["x"]], title="My Title")
        assert text.startswith("My Title")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.23456789]], float_fmt="{:.2f}")
        assert "1.23" in text
        assert "1.2345" not in text


class TestAsciiChart:
    def test_renders_series(self):
        text = ascii_chart(
            {"linear": ([0, 1, 2], [0, 1, 2])}, width=20, height=5, title="t"
        )
        assert "t" in text
        assert "legend" in text
        assert "*" in text

    def test_multiple_series_markers(self):
        text = ascii_chart(
            {"one": ([0, 1], [0, 1]), "two": ([0, 1], [1, 0])},
            width=10, height=5,
        )
        assert "*" in text and "o" in text

    def test_skips_nan(self):
        text = ascii_chart({"s": ([0, 1, 2], [0, math.nan, 2])}, width=10, height=5)
        assert "legend" in text

    def test_all_nan_handled(self):
        text = ascii_chart({"s": ([0], [math.nan])})
        assert "no finite data" in text

    def test_constant_series(self):
        text = ascii_chart({"s": ([0, 1], [3.0, 3.0])}, width=10, height=4)
        assert "*" in text
