"""Tests for welfare analysis, CSV export and the experiment registry."""

from __future__ import annotations

import csv
import math

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentResult,
    render_markdown,
    run_all_experiments,
)
from repro.analysis.export import export_all_figures, write_csv
from repro.analysis.welfare import (
    optimal_rates,
    welfare_curve,
    welfare_point,
)
from repro.core.backward_induction import BackwardInduction


class TestWelfarePoint:
    def test_components(self, params):
        point = welfare_point(params, 2.0)
        solver = BackwardInduction(params, 2.0)
        assert point.alice_value == pytest.approx(solver.alice_t1_cont())
        assert point.bob_value == pytest.approx(solver.bob_t1_cont())
        assert point.welfare == pytest.approx(
            point.alice_value + point.bob_value
        )

    def test_gains_from_trade_positive_inside_window(self, params):
        assert welfare_point(params, 2.0).gains_from_trade > 0.0

    def test_no_trade_at_infeasible_rate(self, params):
        point = welfare_point(params, 4.0)
        # Alice stops: everyone keeps their outside option
        assert point.alice_value == point.alice_outside
        assert point.bob_value == point.bob_outside
        assert point.gains_from_trade == pytest.approx(0.0)
        assert point.success_rate == 0.0

    def test_curve(self, params):
        points = welfare_curve(params, [1.8, 2.0, 2.2])
        assert [p.pstar for p in points] == [1.8, 2.0, 2.2]


class TestOptimalRates:
    @pytest.fixture(scope="class")
    def rates(self):
        from repro.core.parameters import SwapParameters

        return optimal_rates(SwapParameters.default())

    def test_all_located(self, rates):
        assert rates is not None

    def test_alice_prefers_lower_rate_than_bob(self, rates):
        # P* is the Token_a price Alice PAYS per Token_b: she likes it
        # low, Bob (who receives it) likes it high
        assert rates.alice_optimal[0] < rates.bob_optimal[0]

    def test_welfare_optimum_between_individual_optima(self, rates):
        lo = min(rates.alice_optimal[0], rates.bob_optimal[0])
        hi = max(rates.alice_optimal[0], rates.bob_optimal[0])
        assert lo <= rates.welfare_optimal[0] <= hi

    def test_none_when_infeasible(self, params):
        assert optimal_rates(params.replace(alpha_a=0.01, alpha_b=0.01)) is None

    def test_describe(self, rates):
        text = rates.describe()
        assert "SR-optimal" in text
        assert "welfare-optimal" in text


class TestCSVExport:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_export_all_figures(self, tmp_path, params):
        written = export_all_figures(tmp_path, params)
        assert set(written) == {
            "figure3.csv", "figure4.csv", "figure5.csv",
            "figure6.csv", "figure7.csv", "figure9.csv",
        }
        for path in written.values():
            assert path.exists()
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) > 2  # header + data

    def test_figure9_csv_content(self, tmp_path, params):
        written = export_all_figures(tmp_path, params)
        with written["figure9.csv"].open() as handle:
            reader = csv.DictReader(handle)
            rows = list(reader)
        rates_q0 = [
            float(r["success_rate"]) for r in rows if float(r["collateral"]) == 0.0
        ]
        rates_q1 = [
            float(r["success_rate"]) for r in rows if float(r["collateral"]) == 1.0
        ]
        assert max(rates_q1) > max(rates_q0)


class TestExperimentRegistry:
    def test_render_markdown(self):
        results = [
            ExperimentResult("E1", "claim", "measured", True),
            ExperimentResult("E2", "claim2", "measured2", False),
        ]
        text = render_markdown(results)
        assert "| E1 |" in text
        assert "**NO**" in text

    @pytest.mark.slow
    def test_full_registry_holds(self):
        results = run_all_experiments()
        failing = [r for r in results if not r.holds]
        assert not failing, failing
