"""The ``warm`` subcommand and the ``--surface`` flags end to end."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main


def _run_json(capsys, argv):
    assert main(argv) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is True
    assert envelope["error"] is None
    return envelope["result"]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-surface") / "line.srf"
    code = main(
        [
            "warm",
            "--out",
            str(path),
            "--axis",
            "pstar:1.6:2.4:17",
            "--tolerance",
            "1e-2",
        ]
    )
    assert code == 0
    return str(path)


class TestWarmCommand:
    def test_emits_artifact_info(self, capsys, tmp_path):
        out = str(tmp_path / "tiny.srf")
        result = _run_json(
            capsys,
            ["warm", "--out", out, "--axis", "pstar:1.8:2.2:5", "--json"],
        )
        assert result["path"] == out
        assert result["points"] == 5
        assert len(result["checksum"]) == 64
        assert result["max_bound"] > 0.0

    def test_multi_axis_artifact(self, capsys, tmp_path):
        out = str(tmp_path / "plane.srf")
        result = _run_json(
            capsys,
            [
                "warm",
                "--out",
                out,
                "--axis",
                "pstar:1.8:2.2:5",
                "--axis",
                "sigma:0.08:0.12:3",
                "--json",
            ],
        )
        assert result["points"] == 15
        assert [axis["name"] for axis in result["axes"]] == ["pstar", "sigma"]

    def test_missing_axis_exits_cleanly(self, capsys):
        assert main(["warm", "--out", "/tmp/unused.srf"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_axis_exits_cleanly(self, capsys, tmp_path):
        out = str(tmp_path / "bad.srf")
        assert main(["warm", "--out", out, "--axis", "pstar:1:2"]) == 2
        assert "error" in capsys.readouterr().err

    def test_surfaces_need_a_pstar_axis(self, capsys, tmp_path):
        out = str(tmp_path / "bad.srf")
        code = main(["warm", "--out", out, "--axis", "sigma:0.08:0.12:3"])
        assert code == 2
        assert "pstar" in capsys.readouterr().err


class TestSweepWithSurface:
    def test_routes_through_the_surface(self, capsys, artifact):
        result = _run_json(
            capsys,
            [
                "sweep",
                "--pstars",
                "1.8,2.0,3.5",
                "--surface",
                artifact,
                "--json",
            ],
        )
        assert result["engine"] == "chain"
        assert result["sources"] == ["surface", "surface", "engine"]
        assert result["tolerance"] == pytest.approx(1e-2)

    def test_agrees_with_the_exact_engine_within_tolerance(
        self, capsys, artifact
    ):
        argv = ["sweep", "--pstars", "1.8,2.0,2.2", "--json"]
        exact = _run_json(capsys, argv)
        warm = _run_json(capsys, argv[:-1] + ["--surface", artifact, "--json"])
        for got, want in zip(warm["success_rate"], exact["success_rate"]):
            assert got == pytest.approx(want, abs=1e-2)

    def test_tolerance_zero_stays_exact(self, capsys, artifact):
        result = _run_json(
            capsys,
            [
                "sweep",
                "--pstars",
                "2.0",
                "--surface",
                artifact,
                "--tolerance",
                "0",
                "--json",
            ],
        )
        assert result["sources"] == ["engine"]

    def test_legacy_and_surface_are_exclusive(self, capsys, artifact):
        code = main(
            ["sweep", "--pstars", "2.0", "--surface", artifact, "--legacy"]
        )
        assert code == 2

    def test_missing_artifact_exits_cleanly(self, capsys, tmp_path):
        code = main(
            ["sweep", "--pstars", "2.0", "--surface", str(tmp_path / "no.srf")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBatchWithSurface:
    def test_request_tolerance_served_by_surface(
        self, capsys, artifact, tmp_path
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"kind": "solve", "pstar": 2.0, "tolerance": 0.01}\n'
            '{"kind": "solve", "pstar": 2.1}\n'
        )
        assert main(["batch", str(requests), "--surface", artifact]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert lines[0]["result"]["kind"] == "surface_answer"
        assert lines[0]["result"]["bound"] <= 0.01
        assert lines[1]["result"]["kind"] == "swap_equilibrium"

    def test_stats_snapshot_counts_surface_traffic(
        self, capsys, artifact, tmp_path
    ):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"kind": "solve", "pstar": 2.0}\n')
        code = main(
            [
                "stats",
                str(requests),
                "--surface",
                artifact,
                "--tolerance",
                "0.01",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        # the registry is process-global, so assert floors, not equality
        hits = re.search(r"^repro_surface_hits_total (\d+)", text, re.M)
        assert hits is not None and int(hits.group(1)) >= 1
        loads = re.search(
            r'^repro_surface_loads_total\{outcome="ok"\} (\d+)', text, re.M
        )
        assert loads is not None and int(loads.group(1)) >= 1
