"""The ``sweep`` CLI subcommand: grid engine vs the legacy scalar path."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _run_json(capsys, argv):
    assert main(argv) == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["ok"] is True
    assert envelope["error"] is None
    return envelope["result"]


class TestSweepCommand:
    def test_grid_agrees_with_legacy(self, capsys):
        argv = ["sweep", "--pstars", "1.6,2.0,2.4,3.0", "--json"]
        grid = _run_json(capsys, argv)
        legacy = _run_json(capsys, argv + ["--legacy"])
        assert grid["engine"] == "grid"
        assert legacy["engine"] == "scalar"
        assert grid["pstars"] == legacy["pstars"]
        for got, want in zip(grid["success_rate"], legacy["success_rate"]):
            assert got == pytest.approx(want, abs=1e-9)

    def test_collateral_grid_agrees_with_legacy(self, capsys):
        argv = ["sweep", "--pstars", "2.0,2.4", "--collateral", "0.5", "--json"]
        grid = _run_json(capsys, argv)
        legacy = _run_json(capsys, argv + ["--legacy"])
        for got, want in zip(grid["success_rate"], legacy["success_rate"]):
            assert got == pytest.approx(want, abs=1e-9)

    def test_default_grid_spans_feasible_range(self, capsys):
        result = _run_json(capsys, ["sweep", "--points", "7", "--json"])
        assert len(result["pstars"]) == 7
        assert all(r > 0.0 for r in result["success_rate"])

    def test_text_mode_prints_json_object(self, capsys):
        assert main(["sweep", "--pstars", "2.0"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["pstars"] == [2.0]

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--pstars", "2.0,abc"],
            ["sweep", "--pstars", ","],
            ["sweep", "--pstars", "-1.0"],
            ["sweep", "--points", "0"],
        ],
    )
    def test_invalid_input_exits_cleanly(self, capsys, argv):
        assert main(argv) == 2
        assert "error" in capsys.readouterr().err
