"""The agent interface the protocol engine drives.

Each of the four protocol stages maps to one method; every method
receives a :class:`~repro.protocol.messages.DecisionContext` and
returns an :class:`~repro.core.strategy.Action`. Agents that model
crash failures raise
:class:`~repro.protocol.errors.AgentCrashed` instead -- the engine
translates that into silence (timeouts fire).
"""

from __future__ import annotations

import abc

from repro.core.strategy import Action
from repro.protocol.messages import DecisionContext

__all__ = ["SwapAgent"]


class SwapAgent(abc.ABC):
    """A participant in the swap protocol."""

    name: str = "agent"

    @abc.abstractmethod
    def decide_initiate(self, ctx: DecisionContext) -> Action:
        """Alice's ``t1`` move: write the Chain_a HTLC or keep Token_a."""

    @abc.abstractmethod
    def decide_lock(self, ctx: DecisionContext) -> Action:
        """Bob's ``t2`` move: write the Chain_b HTLC or walk away."""

    @abc.abstractmethod
    def decide_reveal(self, ctx: DecisionContext) -> Action:
        """Alice's ``t3`` move: reveal the secret or waive."""

    def decide_redeem(self, ctx: DecisionContext) -> Action:
        """Bob's ``t4`` move. Continuing is strictly dominant
        (Section III-E1), so the default always redeems."""
        return Action.CONT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
