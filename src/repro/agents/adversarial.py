"""Deviating agents.

* :class:`AlwaysStopAgent` defects at a chosen stage unconditionally --
  the classic griefing counterparty;
* :class:`MyopicAgent` compares only the *instantaneous* token values
  (no look-ahead, no discounting): it continues whenever the swap is
  pointwise profitable right now. The gap between its behaviour and
  the rational agents' quantifies the value of the paper's dynamic
  analysis (benchmarked in the ablation suite).
"""

from __future__ import annotations

from repro.agents.base import SwapAgent
from repro.core.strategy import Action
from repro.protocol.messages import DecisionContext, Stage

__all__ = ["AlwaysStopAgent", "MyopicAgent"]


class AlwaysStopAgent(SwapAgent):
    """Follows the protocol until ``stop_stage``, then withdraws."""

    def __init__(self, stop_stage: Stage, name: str = "defector") -> None:
        self.stop_stage = stop_stage
        self.name = name

    def _act(self, ctx: DecisionContext) -> Action:
        return Action.STOP if ctx.stage is self.stop_stage else Action.CONT

    def decide_initiate(self, ctx: DecisionContext) -> Action:
        return self._act(ctx)

    def decide_lock(self, ctx: DecisionContext) -> Action:
        return self._act(ctx)

    def decide_reveal(self, ctx: DecisionContext) -> Action:
        return self._act(ctx)

    def decide_redeem(self, ctx: DecisionContext) -> Action:
        return self._act(ctx)


class MyopicAgent(SwapAgent):
    """Continues iff swapping at today's price beats holding, pointwise.

    As Alice (``role='alice'``): continue while 1 Token_b is worth at
    least the ``P*`` Token_a she gives up, i.e. ``price >= pstar``.
    As Bob (``role='bob'``): continue while ``P*`` Token_a is worth at
    least his 1 Token_b, i.e. ``price <= pstar``.
    """

    def __init__(self, role: str) -> None:
        if role not in ("alice", "bob"):
            raise ValueError(f"role must be 'alice' or 'bob', got {role!r}")
        self.role = role
        self.name = f"myopic-{role}"

    def _wants_swap(self, ctx: DecisionContext) -> Action:
        if self.role == "alice":
            profitable = ctx.price >= ctx.pstar
        else:
            profitable = ctx.price <= ctx.pstar
        return Action.CONT if profitable else Action.STOP

    def decide_initiate(self, ctx: DecisionContext) -> Action:
        return self._wants_swap(ctx)

    def decide_lock(self, ctx: DecisionContext) -> Action:
        return self._wants_swap(ctx)

    def decide_reveal(self, ctx: DecisionContext) -> Action:
        return self._wants_swap(ctx)
