"""Crash-failure injection.

Zakhary et al. (discussed in the paper's Section II-C) point out that
HTLC atomicity can break under *crash failures* even between honest
parties. :class:`CrashingAgent` wraps any agent and stops responding
from a chosen stage onward; the engine treats the crash as silence, so
timeouts fire -- and, in the nastiest case (Bob crashing at ``t4``
after Alice revealed), the run ends with Alice holding both assets.
"""

from __future__ import annotations


from repro.agents.base import SwapAgent
from repro.core.strategy import Action
from repro.protocol.errors import AgentCrashed
from repro.protocol.messages import DecisionContext, Stage

__all__ = ["CrashingAgent"]

_STAGE_ORDER = {
    Stage.T1_INITIATE: 0,
    Stage.T2_LOCK: 1,
    Stage.T3_REVEAL: 2,
    Stage.T4_REDEEM: 3,
}


class CrashingAgent(SwapAgent):
    """Delegates to ``inner`` until ``crash_stage``, then goes silent."""

    def __init__(self, inner: SwapAgent, crash_stage: Stage) -> None:
        self.inner = inner
        self.crash_stage = crash_stage
        self.name = f"crashing-{inner.name}"

    def _maybe_crash(self, ctx: DecisionContext) -> None:
        if _STAGE_ORDER[ctx.stage] >= _STAGE_ORDER[self.crash_stage]:
            raise AgentCrashed(
                f"{self.name} crashed at {ctx.stage.value} (t={ctx.time})"
            )

    def decide_initiate(self, ctx: DecisionContext) -> Action:
        self._maybe_crash(ctx)
        return self.inner.decide_initiate(ctx)

    def decide_lock(self, ctx: DecisionContext) -> Action:
        self._maybe_crash(ctx)
        return self.inner.decide_lock(ctx)

    def decide_reveal(self, ctx: DecisionContext) -> Action:
        self._maybe_crash(ctx)
        return self.inner.decide_reveal(ctx)

    def decide_redeem(self, ctx: DecisionContext) -> Action:
        self._maybe_crash(ctx)
        return self.inner.decide_redeem(ctx)
