"""An agent that always follows the protocol.

Useful as a baseline: with two honest agents every initiated swap
completes, so the protocol engine's success path can be tested in
isolation from strategic behaviour.
"""

from __future__ import annotations

from repro.agents.base import SwapAgent
from repro.core.strategy import Action
from repro.protocol.messages import DecisionContext

__all__ = ["HonestAgent"]


class HonestAgent(SwapAgent):
    """Continues at every stage regardless of prices."""

    def __init__(self, name: str = "honest") -> None:
        self.name = name

    def decide_initiate(self, ctx: DecisionContext) -> Action:
        return Action.CONT

    def decide_lock(self, ctx: DecisionContext) -> Action:
        return Action.CONT

    def decide_reveal(self, ctx: DecisionContext) -> Action:
        return Action.CONT
