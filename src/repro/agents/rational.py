"""Rational agents: the paper's equilibrium players.

A rational agent executes the threshold strategy the backward
induction derives for its role. Strategies can be supplied directly
(e.g. from a :class:`~repro.core.equilibrium.SwapEquilibrium`) or
derived on construction from parameters; the collateral variants use
the Section IV thresholds.
"""

from __future__ import annotations

from typing import Tuple

from repro.agents.base import SwapAgent
from repro.core.collateral import CollateralBackwardInduction
from repro.core.parameters import SwapParameters
from repro.core.strategy import Action, AliceStrategy, BobStrategy, equilibrium_strategies
from repro.protocol.messages import DecisionContext

__all__ = ["RationalAlice", "RationalBob", "rational_pair"]


class RationalAlice(SwapAgent):
    """Alice playing her subgame-perfect strategy."""

    name = "alice"

    def __init__(self, strategy: AliceStrategy) -> None:
        self.strategy = strategy

    def decide_initiate(self, ctx: DecisionContext) -> Action:
        return self.strategy.decide_t1()

    def decide_lock(self, ctx: DecisionContext) -> Action:  # pragma: no cover
        raise NotImplementedError("Alice does not decide at t2")

    def decide_reveal(self, ctx: DecisionContext) -> Action:
        return self.strategy.decide_t3(ctx.price)


class RationalBob(SwapAgent):
    """Bob playing his subgame-perfect strategy."""

    name = "bob"

    def __init__(self, strategy: BobStrategy) -> None:
        self.strategy = strategy

    def decide_initiate(self, ctx: DecisionContext) -> Action:  # pragma: no cover
        raise NotImplementedError("Bob does not decide at t1")

    def decide_lock(self, ctx: DecisionContext) -> Action:
        return self.strategy.decide_t2(ctx.price)

    def decide_reveal(self, ctx: DecisionContext) -> Action:  # pragma: no cover
        raise NotImplementedError("Bob does not decide at t3")

    def decide_redeem(self, ctx: DecisionContext) -> Action:
        return self.strategy.decide_t4()


def rational_pair(
    params: SwapParameters,
    pstar: float,
    collateral: float = 0.0,
) -> Tuple[RationalAlice, RationalBob]:
    """Build the equilibrium agent pair for a (possibly collateralised) game."""
    if collateral > 0.0:
        solver = CollateralBackwardInduction(params, pstar, collateral)
        alice = AliceStrategy(
            initiate_at_t1=solver.alice_t1_cont() > solver.alice_t1_stop(),
            p3_threshold=solver.p3_threshold(),
        )
        bob = BobStrategy(t2_region=solver.bob_t2_region())
        return RationalAlice(alice), RationalBob(bob)
    alice, bob = equilibrium_strategies(params, pstar)
    return RationalAlice(alice), RationalBob(bob)
