"""Agent implementations for protocol-level simulation.

* :class:`~repro.agents.rational.RationalAlice` /
  :class:`~repro.agents.rational.RationalBob` execute the equilibrium
  threshold strategies derived by :mod:`repro.core` -- these are the
  paper's players;
* :class:`~repro.agents.honest.HonestAgent` always follows the
  protocol;
* :mod:`repro.agents.adversarial` contains always-defect and
  myopic price-trigger deviators;
* :class:`~repro.agents.crash.CrashingAgent` stops responding at a
  chosen stage (the Zakhary-style crash-failure discussion in
  Section II-C).
"""

from repro.agents.adversarial import AlwaysStopAgent, MyopicAgent
from repro.agents.base import SwapAgent
from repro.agents.crash import CrashingAgent
from repro.agents.honest import HonestAgent
from repro.agents.rational import RationalAlice, RationalBob, rational_pair

__all__ = [
    "SwapAgent",
    "HonestAgent",
    "RationalAlice",
    "RationalBob",
    "rational_pair",
    "AlwaysStopAgent",
    "MyopicAgent",
    "CrashingAgent",
]
