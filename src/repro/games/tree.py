"""Game-tree node types for finite extensive-form games.

Three node kinds, modelled as plain frozen dataclasses:

* :class:`DecisionNode` -- one player picks among labelled actions;
* :class:`ChanceNode` -- nature picks a branch with given
  probabilities (must sum to 1);
* :class:`TerminalNode` -- the game ends with a payoff per player.

Trees are immutable once built; traversal helpers are iterative so very
deep or very wide trees (fine price lattices) do not hit Python's
recursion limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "GameNode",
    "DecisionNode",
    "ChanceNode",
    "TerminalNode",
    "GameValidationError",
    "iter_nodes",
    "count_nodes",
    "tree_depth",
]

_PROB_TOL = 1e-9


class GameValidationError(ValueError):
    """The game tree is structurally invalid."""


@dataclass(frozen=True)
class TerminalNode:
    """Game over; ``payoffs`` maps player name to utility."""

    payoffs: Mapping[str, float]
    label: str = ""

    def __post_init__(self) -> None:
        for player, value in self.payoffs.items():
            if not math.isfinite(value):
                raise GameValidationError(
                    f"non-finite payoff {value} for player {player!r}"
                )


@dataclass(frozen=True)
class DecisionNode:
    """``player`` chooses one of ``actions`` (label -> child).

    ``rewards`` optionally attaches an immediate payoff flow to an
    action: ``rewards[action][player]`` is *added* to the subtree value
    the action leads to. This is the standard "rewards on edges"
    generalisation of extensive-form games; it lets Markov-structured
    games (the swap-graph lattices) share identical continuation
    subtrees as a DAG while still booking the cash flows that occur at
    the decision itself. Actions without an entry carry no flow.
    """

    player: str
    actions: Mapping[str, "GameNode"]
    label: str = ""
    rewards: Optional[Mapping[str, Mapping[str, float]]] = None

    def __post_init__(self) -> None:
        if not self.actions:
            raise GameValidationError(f"decision node {self.label!r} has no actions")
        if not self.player:
            raise GameValidationError("decision node needs a player name")
        if self.rewards is not None:
            for action, flows in self.rewards.items():
                if action not in self.actions:
                    raise GameValidationError(
                        f"reward for unknown action {action!r} "
                        f"at node {self.label!r}"
                    )
                for player, value in flows.items():
                    if not math.isfinite(value):
                        raise GameValidationError(
                            f"non-finite reward {value} for player {player!r} "
                            f"on action {action!r} at node {self.label!r}"
                        )


@dataclass(frozen=True)
class ChanceNode:
    """Nature branches with fixed probabilities.

    ``branches`` is a sequence of ``(probability, child)`` pairs whose
    probabilities must be non-negative and sum to one.
    """

    branches: Sequence[Tuple[float, "GameNode"]]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.branches:
            raise GameValidationError(f"chance node {self.label!r} has no branches")
        total = 0.0
        for prob, _child in self.branches:
            if prob < -_PROB_TOL:
                raise GameValidationError(f"negative branch probability {prob}")
            total += prob
        if abs(total - 1.0) > 1e-6:
            raise GameValidationError(
                f"chance node {self.label!r} probabilities sum to {total}, not 1"
            )


GameNode = Union[DecisionNode, ChanceNode, TerminalNode]


def iter_nodes(root: GameNode) -> Iterator[GameNode]:
    """Pre-order iteration over all *distinct* nodes (iterative).

    Shared subtrees (lattice DAGs) are yielded once, so counts stay
    meaningful for recombining games.
    """
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        if isinstance(node, DecisionNode):
            stack.extend(node.actions.values())
        elif isinstance(node, ChanceNode):
            stack.extend(child for _p, child in node.branches)


def count_nodes(root: GameNode) -> Dict[str, int]:
    """Node counts by kind: ``{'decision': ..., 'chance': ..., 'terminal': ...}``."""
    counts = {"decision": 0, "chance": 0, "terminal": 0}
    for node in iter_nodes(root):
        if isinstance(node, DecisionNode):
            counts["decision"] += 1
        elif isinstance(node, ChanceNode):
            counts["chance"] += 1
        else:
            counts["terminal"] += 1
    return counts


def tree_depth(root: GameNode) -> int:
    """Longest root-to-terminal path length in edges (iterative)."""
    best = 0
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, TerminalNode):
            best = max(best, depth)
        elif isinstance(node, DecisionNode):
            stack.extend((child, depth + 1) for child in node.actions.values())
        else:
            stack.extend((child, depth + 1) for _p, child in node.branches)
    return best
