"""Moment-matched discretisation of a lognormal transition.

To express the swap game as a *finite* tree, the continuous price
transition ``P_t -> P_{t+tau}`` is replaced by an ``n``-point lattice:

* bucket the law into ``n`` equal-probability (or tail-padded)
  quantile bins,
* give each bin its exact probability mass, and
* represent it by its *conditional mean* (a ratio of partial
  expectations), so the discrete transition matches ``E[P_{t+tau}]``
  exactly and every payoff linear in price is priced without bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


__all__ = ["LatticeTransition", "discretize_law"]


@dataclass(frozen=True)
class LatticeTransition:
    """A discrete approximation of one price transition.

    ``points`` are the representative prices, ``probabilities`` their
    masses (sum to 1), ``edges`` the ``n + 1`` bucket boundaries.
    """

    points: Tuple[float, ...]
    probabilities: Tuple[float, ...]
    edges: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.probabilities):
            raise ValueError("points and probabilities must have equal length")
        if len(self.edges) != len(self.points) + 1:
            raise ValueError("need exactly n + 1 edges for n points")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities sum to {total}, not 1")

    @property
    def mean(self) -> float:
        """First moment of the discrete law."""
        return float(
            np.dot(np.asarray(self.points), np.asarray(self.probabilities))
        )


def discretize_law(
    law,
    n: int,
    tail_mass: float = 1e-6,
) -> LatticeTransition:
    """Discretise ``law`` into ``n`` conditional-mean buckets.

    ``law`` is any price-law distribution exposing ``quantile``,
    ``cdf``, ``mean`` and ``partial_expectation_below``
    (:class:`~repro.stochastic.lognormal.LognormalLaw`,
    :class:`~repro.stochastic.law.MixtureLaw`, ...).

    The two extreme buckets absorb the tails beyond the
    ``tail_mass`` / ``1 - tail_mass`` quantiles, so no probability is
    discarded.
    """
    if n < 2:
        raise ValueError(f"need at least 2 lattice points, got {n}")
    if not 0.0 < tail_mass < 0.5:
        raise ValueError(f"tail_mass must be in (0, 0.5), got {tail_mass}")

    # interior quantile edges; outermost edges at 0 and +inf conceptually
    qs = np.linspace(tail_mass, 1.0 - tail_mass, n - 1)
    inner_edges = np.asarray(law.quantile(qs), dtype=float)
    edges = np.concatenate(([0.0], inner_edges, [np.inf]))

    points = []
    probs = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        cdf_hi = 1.0 if np.isinf(hi) else float(law.cdf(hi))
        cdf_lo = float(law.cdf(lo)) if lo > 0.0 else 0.0
        mass = max(cdf_hi - cdf_lo, 1e-300)
        pe_hi = law.mean() if np.isinf(hi) else float(law.partial_expectation_below(hi))
        pe_lo = float(law.partial_expectation_below(lo)) if lo > 0.0 else 0.0
        conditional_mean = max((pe_hi - pe_lo) / mass, 1e-300)
        points.append(conditional_mean)
        probs.append(mass)

    total = sum(probs)
    probs = [p / total for p in probs]
    return LatticeTransition(
        points=tuple(points),
        probabilities=tuple(probs),
        edges=tuple(float(e) for e in edges),
    )
