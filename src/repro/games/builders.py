"""The HTLC swap game as an explicit extensive-form tree.

This builder expresses the paper's Section III game on an ``n``-point
price lattice and solves it with the *generic* backward-induction
solver -- a fully independent implementation path from the closed-form
:mod:`repro.core` solver. The two must agree (and do, see
``tests/games/test_cross_check.py``):

* Alice's lattice ``t3`` policy flips from stop to cont at the Eq. (18)
  threshold;
* Bob's lattice ``t2`` continuation set approximates the Eq. (24)
  interval;
* the root value approximates ``U^A_{t1}`` / ``U^B_{t1}``.

All terminal payoffs are discounted to ``t1`` (a common positive factor
per decision time, so the induced preferences are identical to the
paper's decision-time convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.parameters import SwapParameters
from repro.games.lattice import LatticeTransition, discretize_law
from repro.games.solver import SolvedGame, solve_game
from repro.games.tree import ChanceNode, DecisionNode, GameNode, TerminalNode
from repro.stochastic.law import step_kernel

__all__ = ["SwapGameTree", "build_swap_game", "lattice_equilibrium_summary"]

ALICE = "alice"
BOB = "bob"


@dataclass(frozen=True)
class SwapGameTree:
    """The built tree plus the lattice bookkeeping needed to read it."""

    root: DecisionNode
    params: SwapParameters
    pstar: float
    t2_lattice: LatticeTransition
    t3_lattices: Tuple[LatticeTransition, ...]
    bob_nodes: Tuple[DecisionNode, ...]
    alice_t3_nodes: Tuple[Tuple[DecisionNode, ...], ...]

    def solve(self) -> SolvedGame:
        """Run generic backward induction on the tree."""
        return solve_game(self.root)


def _terminal_success(params: SwapParameters, pstar: float, p3: float) -> TerminalNode:
    """Both continue: Alice's Eq. (14) / Bob's Eq. (15), discounted to t1."""
    g = params.grid
    alice = (
        (1.0 + params.alice.alpha)
        * p3
        * math.exp(params.mu * params.tau_b)
        * math.exp(-params.alice.r * g.t5)
    )
    bob = (1.0 + params.bob.alpha) * pstar * math.exp(-params.bob.r * g.t6)
    return TerminalNode({ALICE: alice, BOB: bob}, label="success")


def _terminal_alice_stops_t3(
    params: SwapParameters, pstar: float, p3: float
) -> TerminalNode:
    """Alice waives at t3: Eq. (16) / Eq. (17), discounted to t1."""
    g = params.grid
    alice = pstar * math.exp(-params.alice.r * g.t8)
    bob = (
        p3
        * math.exp(2.0 * params.mu * params.tau_b)
        * math.exp(-params.bob.r * g.t7)
    )
    return TerminalNode({ALICE: alice, BOB: bob}, label="alice_stops_t3")


def _terminal_bob_stops_t2(
    params: SwapParameters, pstar: float, p2: float
) -> TerminalNode:
    """Bob walks away at t2: Eq. (22) / Eq. (23), discounted to t1."""
    g = params.grid
    alice = pstar * math.exp(-params.alice.r * g.t8)
    bob = p2 * math.exp(-params.bob.r * g.t2)
    return TerminalNode({ALICE: alice, BOB: bob}, label="bob_stops_t2")


def _terminal_alice_stops_t1(params: SwapParameters, pstar: float) -> TerminalNode:
    """Alice never initiates: Eq. (27) / Eq. (28)."""
    return TerminalNode({ALICE: pstar, BOB: params.p0}, label="alice_stops_t1")


def build_swap_game(
    params: SwapParameters,
    pstar: float,
    n_lattice: int = 64,
) -> SwapGameTree:
    """Build the Section III game on an ``n_lattice``-point price grid.

    The tree has one ``t2`` chance node (lattice of ``P_{t2}``), one
    Bob decision per ``t2`` price, one ``t3`` chance node per continued
    branch (lattice of ``P_{t3}`` conditional on that ``P_{t2}``), and
    one Alice decision per ``t3`` price -- ``O(n_lattice^2)`` nodes.
    """
    if not pstar > 0.0:
        raise ValueError(f"pstar must be positive, got {pstar}")
    kernel_a = step_kernel(params.law, params.mu, params.sigma, params.tau_a)
    kernel_b = step_kernel(params.law, params.mu, params.sigma, params.tau_b)
    t2_lattice = discretize_law(kernel_a.law(params.p0), n_lattice)

    bob_nodes: List[DecisionNode] = []
    alice_t3_nodes: List[Tuple[DecisionNode, ...]] = []
    t3_lattices: List[LatticeTransition] = []
    t2_branches: List[Tuple[float, GameNode]] = []

    for p2, prob2 in zip(t2_lattice.points, t2_lattice.probabilities):
        t3_lattice = discretize_law(kernel_b.law(p2), n_lattice)
        t3_lattices.append(t3_lattice)

        alice_nodes_here: List[DecisionNode] = []
        t3_branches: List[Tuple[float, GameNode]] = []
        for p3, prob3 in zip(t3_lattice.points, t3_lattice.probabilities):
            alice_node = DecisionNode(
                player=ALICE,
                actions={
                    "cont": _terminal_success(params, pstar, p3),
                    "stop": _terminal_alice_stops_t3(params, pstar, p3),
                },
                label=f"alice_t3@{p3:.6g}",
            )
            alice_nodes_here.append(alice_node)
            t3_branches.append((prob3, alice_node))

        chance_t3 = ChanceNode(tuple(t3_branches), label=f"nature_t3@{p2:.6g}")
        bob_node = DecisionNode(
            player=BOB,
            actions={
                "cont": chance_t3,
                "stop": _terminal_bob_stops_t2(params, pstar, p2),
            },
            label=f"bob_t2@{p2:.6g}",
        )
        bob_nodes.append(bob_node)
        alice_t3_nodes.append(tuple(alice_nodes_here))
        t2_branches.append((prob2, bob_node))

    chance_t2 = ChanceNode(tuple(t2_branches), label="nature_t2")
    root = DecisionNode(
        player=ALICE,
        actions={
            "cont": chance_t2,
            "stop": _terminal_alice_stops_t1(params, pstar),
        },
        label="alice_t1",
    )
    return SwapGameTree(
        root=root,
        params=params,
        pstar=pstar,
        t2_lattice=t2_lattice,
        t3_lattices=tuple(t3_lattices),
        bob_nodes=tuple(bob_nodes),
        alice_t3_nodes=tuple(alice_t3_nodes),
    )


@dataclass(frozen=True)
class LatticeEquilibrium:
    """Summary of a solved lattice game, aligned with the continuous solver."""

    initiated: bool
    alice_root_value: float
    bob_root_value: float
    p3_threshold_bracket: Optional[Tuple[float, float]]
    bob_cont_prices: Tuple[float, ...]
    success_rate: float


def lattice_equilibrium_summary(
    tree: SwapGameTree, solved: Optional[SolvedGame] = None
) -> LatticeEquilibrium:
    """Read thresholds and the success rate off a solved lattice game.

    * ``p3_threshold_bracket``: consecutive lattice prices between which
      Alice's ``t3`` policy flips from stop to cont (averaged over all
      ``t2`` branches -- the policy is price-monotone so the bracket is
      well-defined; ``None`` when she never/always continues).
    * ``bob_cont_prices``: the ``t2`` lattice prices where Bob locks.
    * ``success_rate``: lattice analogue of Eq. (31).
    """
    if solved is None:
        solved = tree.solve()

    # Alice t3 policy flip: scan the first continued bob branch
    bracket: Optional[Tuple[float, float]] = None
    for branch_idx, bob_node in enumerate(tree.bob_nodes):
        lattice = tree.t3_lattices[branch_idx]
        policies = [
            solved.action_at(node) for node in tree.alice_t3_nodes[branch_idx]
        ]
        for i in range(len(policies) - 1):
            if policies[i] == "stop" and policies[i + 1] == "cont":
                candidate = (lattice.points[i], lattice.points[i + 1])
                if bracket is None:
                    bracket = candidate
                else:
                    bracket = (
                        min(bracket[0], candidate[0]),
                        max(bracket[1], candidate[1]),
                    )
        del bob_node

    bob_cont_prices = tuple(
        p2
        for p2, node in zip(tree.t2_lattice.points, tree.bob_nodes)
        if solved.action_at(node) == "cont"
    )

    # lattice success rate: P(bob continues and alice then continues)
    rate = 0.0
    for branch_idx, (prob2, bob_node) in enumerate(
        zip(tree.t2_lattice.probabilities, tree.bob_nodes)
    ):
        if solved.action_at(bob_node) != "cont":
            continue
        lattice = tree.t3_lattices[branch_idx]
        for prob3, alice_node in zip(
            lattice.probabilities, tree.alice_t3_nodes[branch_idx]
        ):
            if solved.action_at(alice_node) == "cont":
                rate += prob2 * prob3

    return LatticeEquilibrium(
        initiated=solved.action_at(tree.root) == "cont",
        alice_root_value=solved.root_value(ALICE),
        bob_root_value=solved.root_value(BOB),
        p3_threshold_bracket=bracket,
        bob_cont_prices=bob_cont_prices,
        success_rate=rate,
    )
