"""Generic finite extensive-form games with chance moves.

The paper frames the swap as a finite extensive-form game (Osborne &
Rubinstein). This package provides the general machinery --

* :mod:`repro.games.tree` -- decision, chance and terminal nodes;
* :mod:`repro.games.solver` -- generic backward induction (subgame-
  perfect equilibrium for perfect-information games with chance moves);
* :mod:`repro.games.lattice` -- moment-matched discretisation of a
  lognormal price transition;
* :mod:`repro.games.builders` -- the HTLC swap game expressed as an
  explicit tree on a price lattice --

and serves as an *independent cross-check* of the continuous solver in
:mod:`repro.core`: the lattice equilibrium's thresholds must converge
to the closed-form ones as the lattice is refined (tested).
"""

from repro.games.builders import build_swap_game, lattice_equilibrium_summary
from repro.games.lattice import LatticeTransition, discretize_law
from repro.games.matrix import BimatrixGame, MixedEquilibrium, PureEquilibrium
from repro.games.solver import SolvedGame, solve_game
from repro.games.tree import ChanceNode, DecisionNode, GameValidationError, TerminalNode

__all__ = [
    "ChanceNode",
    "DecisionNode",
    "TerminalNode",
    "GameValidationError",
    "SolvedGame",
    "solve_game",
    "BimatrixGame",
    "PureEquilibrium",
    "MixedEquilibrium",
    "LatticeTransition",
    "discretize_law",
    "build_swap_game",
    "lattice_equilibrium_summary",
]
