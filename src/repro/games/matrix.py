"""Two-player bimatrix games (for simultaneous moves).

Section IV-4 has Alice and Bob decide *simultaneously* at ``t1``
whether to engage. That stage is a 2x2 bimatrix game whose payoffs are
the continuation values computed by the backward induction; this module
provides the general machinery:

* :class:`BimatrixGame` -- payoff matrices for both players with named
  actions;
* pure Nash equilibria by best-response enumeration;
* the mixed equilibrium of a 2x2 game (indifference conditions) when no
  pure one exists or when all four cells are strategically relevant;
* dominance checks used by tests and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["BimatrixGame", "PureEquilibrium", "MixedEquilibrium"]


@dataclass(frozen=True)
class PureEquilibrium:
    """A pure-strategy Nash equilibrium (action indices and names)."""

    row_action: str
    col_action: str
    row_payoff: float
    col_payoff: float


@dataclass(frozen=True)
class MixedEquilibrium:
    """A (possibly degenerate) mixed equilibrium of a 2x2 game.

    ``row_prob`` is the probability the row player plays their *first*
    action; likewise ``col_prob``.
    """

    row_prob: float
    col_prob: float
    row_payoff: float
    col_payoff: float


class BimatrixGame:
    """A finite two-player simultaneous-move game.

    Parameters
    ----------
    row_payoffs, col_payoffs:
        ``(n_row, n_col)`` arrays; entry ``[i, j]`` is the payoff when
        the row player picks action ``i`` and the column player ``j``.
    row_actions, col_actions:
        Action labels.
    """

    def __init__(
        self,
        row_payoffs,
        col_payoffs,
        row_actions: Sequence[str],
        col_actions: Sequence[str],
    ) -> None:
        self.row_payoffs = np.asarray(row_payoffs, dtype=float)
        self.col_payoffs = np.asarray(col_payoffs, dtype=float)
        if self.row_payoffs.shape != self.col_payoffs.shape:
            raise ValueError("payoff matrices must share a shape")
        if self.row_payoffs.shape != (len(row_actions), len(col_actions)):
            raise ValueError(
                f"payoff shape {self.row_payoffs.shape} does not match "
                f"{len(row_actions)} x {len(col_actions)} actions"
            )
        if not np.all(np.isfinite(self.row_payoffs)) or not np.all(
            np.isfinite(self.col_payoffs)
        ):
            raise ValueError("payoffs must be finite")
        self.row_actions = tuple(row_actions)
        self.col_actions = tuple(col_actions)

    # ------------------------------------------------------------------ #
    # best responses and pure equilibria
    # ------------------------------------------------------------------ #

    def row_best_responses(self, col_index: int) -> List[int]:
        """Row actions maximising the row payoff against ``col_index``."""
        column = self.row_payoffs[:, col_index]
        best = column.max()
        return [int(i) for i in np.flatnonzero(column >= best - 1e-12)]

    def col_best_responses(self, row_index: int) -> List[int]:
        """Column actions maximising the column payoff against ``row_index``."""
        row = self.col_payoffs[row_index, :]
        best = row.max()
        return [int(j) for j in np.flatnonzero(row >= best - 1e-12)]

    def pure_equilibria(self) -> List[PureEquilibrium]:
        """All pure Nash equilibria."""
        out: List[PureEquilibrium] = []
        n_row, n_col = self.row_payoffs.shape
        for i in range(n_row):
            for j in range(n_col):
                if i in self.row_best_responses(j) and j in self.col_best_responses(i):
                    out.append(
                        PureEquilibrium(
                            row_action=self.row_actions[i],
                            col_action=self.col_actions[j],
                            row_payoff=float(self.row_payoffs[i, j]),
                            col_payoff=float(self.col_payoffs[i, j]),
                        )
                    )
        return out

    # ------------------------------------------------------------------ #
    # dominance
    # ------------------------------------------------------------------ #

    def row_dominant_action(self) -> Optional[str]:
        """A strictly dominant row action, if one exists."""
        n_row = self.row_payoffs.shape[0]
        for i in range(n_row):
            others = [k for k in range(n_row) if k != i]
            if all(
                np.all(self.row_payoffs[i, :] > self.row_payoffs[k, :])
                for k in others
            ):
                return self.row_actions[i]
        return None

    def col_dominant_action(self) -> Optional[str]:
        """A strictly dominant column action, if one exists."""
        n_col = self.col_payoffs.shape[1]
        for j in range(n_col):
            others = [k for k in range(n_col) if k != j]
            if all(
                np.all(self.col_payoffs[:, j] > self.col_payoffs[:, k])
                for k in others
            ):
                return self.col_actions[j]
        return None

    # ------------------------------------------------------------------ #
    # 2x2 mixed equilibrium
    # ------------------------------------------------------------------ #

    def mixed_equilibrium_2x2(self) -> Optional[MixedEquilibrium]:
        """The interior mixed equilibrium of a 2x2 game, if it exists.

        Solves the standard indifference conditions; returns ``None``
        when the indifference probabilities fall outside ``[0, 1]``
        (then only pure equilibria exist).
        """
        if self.row_payoffs.shape != (2, 2):
            raise ValueError("mixed_equilibrium_2x2 requires a 2x2 game")
        a = self.row_payoffs
        b = self.col_payoffs
        # column player mixes q on their first action so the row player
        # is indifferent: q a00 + (1-q) a01 = q a10 + (1-q) a11
        denom_q = (a[0, 0] - a[1, 0]) + (a[1, 1] - a[0, 1])
        denom_p = (b[0, 0] - b[0, 1]) + (b[1, 1] - b[1, 0])
        if abs(denom_q) < 1e-15 or abs(denom_p) < 1e-15:
            return None
        q = (a[1, 1] - a[0, 1]) / denom_q
        p = (b[1, 1] - b[1, 0]) / denom_p
        if not (0.0 <= p <= 1.0 and 0.0 <= q <= 1.0):
            return None
        row_value = q * a[0, 0] + (1 - q) * a[0, 1]
        col_value = p * b[0, 0] + (1 - p) * b[1, 0]
        return MixedEquilibrium(
            row_prob=float(p),
            col_prob=float(q),
            row_payoff=float(row_value),
            col_payoff=float(col_value),
        )
