"""Generic backward induction for perfect-information games with chance.

:func:`solve_game` computes, for every node, the expected payoff vector
under subgame-perfect play: at a :class:`DecisionNode` the moving
player picks the action maximising *their own* expected payoff; at a
:class:`ChanceNode` payoffs are averaged; at a :class:`TerminalNode`
they are read off. Per-action ``rewards`` (immediate flows) are added
to the subtree value an action leads to before comparison.

Ties in the player's own value are broken *order-independently*: the
canonical :data:`~repro.core.equilibrium.INDIFFERENT_ACTION` (``"stop"``)
wins if it is among the maximisers -- the paper's best responses
(Eqs. (19), (24), (30)) all require a strict improvement to continue --
and otherwise the lexicographically smallest action label wins. The
solved values and policies are therefore invariant under permutation of
the action insertion order (property-tested in
``tests/games/test_random_trees.py``).

The traversal is an explicit post-order stack with memoised node
values, so lattice games with hundreds of thousands of nodes solve
without recursion issues and *recombining* games expressed as DAGs
(shared continuation subtrees, :mod:`repro.swapgraph`) are solved in
time linear in the number of distinct nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.equilibrium import INDIFFERENT_ACTION
from repro.games.tree import ChanceNode, DecisionNode, GameNode, TerminalNode

__all__ = ["SolvedGame", "solve_game"]


@dataclass(frozen=True)
class SolvedGame:
    """Result of backward induction.

    Attributes
    ----------
    root:
        The game that was solved.
    values:
        Node-id -> expected payoff per player under equilibrium play.
    policy:
        Node-id of each decision node -> chosen action label.
    """

    root: GameNode
    values: Mapping[int, Mapping[str, float]]
    policy: Mapping[int, str]

    def value_of(self, node: GameNode) -> Mapping[str, float]:
        """Equilibrium payoff vector at ``node``."""
        return self.values[id(node)]

    def action_at(self, node: DecisionNode) -> str:
        """Equilibrium action at a decision node."""
        return self.policy[id(node)]

    def root_value(self, player: str) -> float:
        """Equilibrium expected payoff of ``player`` at the root."""
        return self.values[id(self.root)][player]


def _children(node: GameNode) -> Tuple[GameNode, ...]:
    if isinstance(node, DecisionNode):
        return tuple(node.actions.values())
    if isinstance(node, ChanceNode):
        return tuple(child for _p, child in node.branches)
    return ()


def _breaks_tie(action: str, incumbent: str) -> bool:
    """Whether ``action`` displaces ``incumbent`` at equal own value.

    The indifference convention first (:data:`INDIFFERENT_ACTION` beats
    everything else), then lexicographic order -- a total order on
    actions, so the winner does not depend on insertion order.
    """
    if action == incumbent:
        return False
    if incumbent == INDIFFERENT_ACTION:
        return False
    if action == INDIFFERENT_ACTION:
        return True
    return action < incumbent


def solve_game(root: GameNode) -> SolvedGame:
    """Backward induction over the whole game (iterative post-order)."""
    values: Dict[int, Dict[str, float]] = {}
    policy: Dict[int, str] = {}

    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in values:
            continue
        if isinstance(node, TerminalNode):
            values[id(node)] = dict(node.payoffs)
            continue
        if not expanded:
            stack.append((node, True))
            for child in _children(node):
                if id(child) not in values:
                    stack.append((child, False))
            continue

        if isinstance(node, DecisionNode):
            best_action = None
            best_value: Dict[str, float] = {}
            best_own = float("-inf")
            for action, child in node.actions.items():
                child_value = values[id(child)]
                flows = node.rewards.get(action) if node.rewards else None
                if flows:
                    combined = dict(child_value)
                    for player, flow in flows.items():
                        combined[player] = combined.get(player, 0.0) + flow
                else:
                    combined = child_value
                own = combined.get(node.player, 0.0)
                if own > best_own or (
                    own == best_own
                    and best_action is not None
                    and _breaks_tie(action, best_action)
                ):
                    best_own = own
                    best_action = action
                    best_value = dict(combined)
            values[id(node)] = best_value
            policy[id(node)] = best_action  # type: ignore[assignment]
        else:  # ChanceNode
            acc: Dict[str, float] = {}
            for prob, child in node.branches:
                for player, value in values[id(child)].items():
                    acc[player] = acc.get(player, 0.0) + prob * value
            values[id(node)] = acc

    return SolvedGame(root=root, values=values, policy=policy)
