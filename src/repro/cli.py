"""Command-line entry point: regenerate any paper artifact, or serve batches.

Usage::

    repro-swaps table1
    repro-swaps table3
    repro-swaps figure3 ... figure9
    repro-swaps solve --pstar 2.0 [--collateral 0.5]
    repro-swaps solve --pstar 2.0 --law merton:jump_intensity=0.05
    repro-swaps sweep --pstars 1.6,2.0,2.4 [--legacy]
    repro-swaps sweep --law regime:sigma_turbulent=0.2
    repro-swaps validate --pstar 2.0 --paths 50000
    repro-swaps backtest --market jumps --law merton
    repro-swaps graph --parties 3 --replay
    repro-swaps graph --parties 2 --packets 4 --step-time 1.0
    repro-swaps graph --spec spec.json --n-lattice 9
    repro-swaps batch requests.jsonl --workers 4 --cache-dir cache
    repro-swaps batch requests.jsonl --metrics-out metrics.prom
    repro-swaps batch requests.jsonl --fault-plan plan.json
    repro-swaps stats requests.jsonl
    repro-swaps serve --port 8100 --workers 4 --queue-depth 32
    repro-swaps serve --port 8100 --replicas 4
    repro-swaps serve --port 8100 --fault-plan plan.json
    repro-swaps warm --out surface.srf --axis pstar:1.2:3.0:65
    repro-swaps serve --port 8100 --surface surface.srf --tolerance 1e-3
    repro-swaps all

(or ``python -m repro.cli ...``).

Every subcommand accepts ``--json``, which wraps its output in one
machine-readable envelope ``{"ok": ..., "result": ..., "error": ...}``
-- the same in-band error style the ``batch`` command uses per line.
Without ``--json``, output is human text (or, for ``batch``, the
historical JSON-lines stream, byte-for-byte unchanged).

``batch`` reads one JSON request per line (``kind`` = ``solve`` or
``validate``; see :mod:`repro.service.requests`) from a file or stdin
(``-``) and emits one JSON result line per request, errors included.
``--metrics-out`` additionally writes the process metrics registry
(cache hits, per-stage latency histograms, pool gauges; see
:mod:`repro.obs`) in Prometheus text format after the run, and
``--log-out`` tees structured JSON-lines trace events to a file.
``stats`` runs an (optional) batch quietly and prints the registry
snapshot itself. The exit status of ``batch`` is 0 iff every line
parsed as JSON.

``serve`` starts the HTTP layer (:mod:`repro.server`) on
``--host``/``--port`` and blocks until SIGTERM/SIGINT, then drains
gracefully; ``--queue-depth`` bounds concurrent admission, and the
batch flags (``--workers``, ``--cache-dir``, ``--cache-entries``,
``--metrics-out``) configure the service behind it. ``--replicas N``
swaps in the sharded topology (:mod:`repro.server.aio`): an asyncio
router on the bind port consistent-hashing each request's canonical
key across N replica subprocesses, so every shard's cache stays hot
for its keyslice.

``graph`` solves a multi-party / packetized swap graph
(:mod:`repro.swapgraph`) as an extensive-form game: ``--parties N``
builds an N-party cycle (``--parties 2`` the paper-shaped two-party
swap), ``--packets K`` splits every leg into K sequential packets, and
``--spec FILE`` loads an arbitrary :class:`SwapGraphSpec` JSON
document instead. ``--replay`` re-runs the solved equilibrium strategy
on simulated chains (:mod:`repro.chain`) and checks the empirical
success rate against the game-theoretic prediction.

``warm`` precomputes an equilibrium surface (:mod:`repro.surface`)
over axes given as repeatable ``--axis name:lo:hi:points`` flags and
writes a checksummed, memory-mapped artifact to ``--out``. Pointing
``batch``, ``serve`` or ``sweep`` at it with ``--surface`` installs
certified interpolation as the first answer tier; tolerance-less
requests stay exact unless ``--tolerance`` grants a default error
budget (``--surface-tolerance`` is the deprecated spelling, kept for
one release).

Invalid artifact names and invalid ``--pstar``/``--collateral`` values
exit non-zero with a one-line error instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import (
    figure2_timeline,
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
    figure7_bob_t2_collateral,
    figure8_t1_collateral,
    figure9_sr_collateral,
    table1_balance_change,
    table3_default_parameters,
)
from repro.core import SwapParameters

__all__ = ["main"]

# (exit_status, result) -- result is a string for text commands, or an
# already-JSON-safe object for commands with structured output
CommandOutcome = Tuple[int, object]


def _artifact_commands() -> Dict[str, Callable[[], str]]:
    return {
        "table1": lambda: table1_balance_change()[1],
        "table3": lambda: table3_default_parameters()[1],
        "figure2": lambda: figure2_timeline().render(),
        "figure3": lambda: figure3_alice_t3().render(),
        "figure4": lambda: figure4_bob_t2().render(),
        "figure5": lambda: figure5_alice_t1().render(),
        "figure6": lambda: figure6_success_rate().render(),
        "figure7": lambda: figure7_bob_t2_collateral().render(),
        "figure8": lambda: figure8_t1_collateral().render(),
        "figure9": lambda: figure9_sr_collateral().render(),
    }


def _params_with_law(args: argparse.Namespace) -> SwapParameters:
    """Default parameters, with ``--law`` applied when given.

    ``parse_law`` raises ``ValueError`` for unknown kinds or malformed
    ``kind:key=value,...`` tokens, which :func:`main` turns into a
    clean one-line error.
    """
    params = SwapParameters.default()
    law = getattr(args, "law", None)
    if law:
        from repro.stochastic.law import parse_law

        params = params.replace(law=parse_law(law))
    return params


def _cmd_solve(args: argparse.Namespace) -> str:
    from repro.api import solve
    from repro.service.requests import SolveRequest

    params = _params_with_law(args)
    # constructing the request validates pstar/collateral with clean errors
    request = SolveRequest(
        pstar=args.pstar, collateral=args.collateral, params=params
    )
    if request.collateral > 0.0:
        eq = solve(params, request.pstar, collateral=request.collateral)
        region = "; ".join(
            f"({lo:.4f}, {hi:.4f})" for lo, hi in eq.bob_t2_region.intervals
        )
        return (
            f"Collateral game at P* = {eq.pstar}, Q = {eq.collateral}\n"
            f"  Alice reveal threshold : {eq.p3_threshold:.4f}\n"
            f"  Bob continuation region: {region or 'empty'}\n"
            f"  Alice t1 cont/stop     : {eq.alice_t1.cont:.4f} / {eq.alice_t1.stop:.4f}\n"
            f"  Bob   t1 cont/stop     : {eq.bob_t1.cont:.4f} / {eq.bob_t1.stop:.4f}\n"
            f"  engaged                : {eq.engaged}\n"
            f"  success rate (Eq. 40)  : {eq.success_rate:.4f}"
        )
    return solve(params, request.pstar).summary()


def _cmd_sweep(args: argparse.Namespace) -> object:
    """Success-rate curve over a ``P*`` grid, engine-vectorised by default.

    ``--legacy`` answers the same grid with one scalar backward
    induction per point -- the reference path the grid engine is
    property-tested against; the two outputs agree to ~1e-12.
    """
    params = _params_with_law(args)
    if args.pstars is not None:
        try:
            pstars = [float(token) for token in args.pstars.split(",") if token.strip()]
        except ValueError:
            raise ValueError(f"--pstars must be comma-separated numbers, got {args.pstars!r}")
    else:
        if args.points < 1:
            raise ValueError(f"--points must be positive, got {args.points}")
        from repro.core import feasible_pstar_range

        bounds = feasible_pstar_range(params)
        if bounds is None:
            raise ValueError("no feasible P* range under the default parameters")
        lo, hi = bounds
        pstars = [
            lo + (hi - lo) * (i + 0.5) / args.points for i in range(args.points)
        ]
    if not pstars:
        raise ValueError("empty P* grid")

    if args.surface is not None:
        if args.legacy:
            raise ValueError("--surface and --legacy are mutually exclusive")
        from repro.service import SwapService

        service = SwapService(surface=args.surface)
        if service.surface is None:
            raise ValueError(f"could not load surface artifact {args.surface}")
        tolerance = args.tolerance
        if tolerance is None:  # pointing at a surface opts in; use its default
            tolerance = service.surface.spec.default_tolerance
        items = service.sweep(
            pstars,
            params=params,
            collateral=args.collateral,
            tolerance=tolerance,
        )
        rates = [float(item.unwrap().success_rate) for item in items]
        return {
            "pstars": pstars,
            "success_rate": rates,
            "collateral": args.collateral,
            "engine": "chain",
            "sources": [item.source for item in items],
            "tolerance": tolerance,
        }

    if args.legacy:
        from repro.core.backward_induction import BackwardInduction
        from repro.core.collateral import CollateralBackwardInduction

        if args.collateral > 0.0:
            rates = [
                CollateralBackwardInduction(params, k, args.collateral).success_rate()
                for k in pstars
            ]
        else:
            rates = [BackwardInduction(params, k).success_rate() for k in pstars]
    else:
        from repro.core.engine import solve_grid

        rates = [
            float(rate)
            for rate in solve_grid(
                params, pstars, collateral=args.collateral
            ).success_rate
        ]
    return {
        "pstars": pstars,
        "success_rate": rates,
        "collateral": args.collateral,
        "engine": "scalar" if args.legacy else "grid",
    }


def _cmd_validate(args: argparse.Namespace) -> str:
    from repro.api import validate as validate_point
    from repro.service.requests import ValidateRequest

    params = _params_with_law(args)
    ValidateRequest(  # validates pstar/collateral/paths with clean errors
        pstar=args.pstar,
        collateral=args.collateral,
        n_paths=args.paths,
        seed=args.seed,
        params=params,
    )
    outcome = validate_point(
        params,
        args.pstar,
        collateral=args.collateral,
        n_paths=args.paths,
        seed=args.seed,
        protocol_level=args.protocol_level,
    )
    empirical, analytic = outcome.empirical, outcome.analytic
    level = "protocol" if args.protocol_level else "strategy"
    verdict = "PASS" if outcome.passed else "MISMATCH"
    return (
        f"Monte Carlo validation ({level} level, {args.paths} paths)\n"
        f"  analytic SR : {analytic:.4f}\n"
        f"  empirical SR: {empirical.success_rate:.4f} "
        f"(95% CI [{empirical.ci_low:.4f}, {empirical.ci_high:.4f}])\n"
        f"  {verdict}: analytic value "
        f"{'inside' if outcome.passed else 'outside'} the CI"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-swaps",
        description="Regenerate artifacts from the HTLC atomic-swap paper.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json",
        action="store_true",
        help='emit one {"ok", "result", "error"} JSON envelope',
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in list(_artifact_commands()) + ["all"]:
        sub.add_parser(name, parents=[common], help=f"print {name}")

    solve = sub.add_parser("solve", parents=[common], help="solve one swap game")
    solve.add_argument("--pstar", type=float, default=2.0)
    solve.add_argument("--collateral", type=float, default=0.0)
    _add_law_argument(solve)

    sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="success-rate curve over a P* grid (one vectorised solve)",
    )
    sweep.add_argument(
        "--pstars",
        default=None,
        help="comma-separated P* grid (default: --points over the feasible range)",
    )
    sweep.add_argument(
        "--points",
        type=int,
        default=33,
        help="grid size when --pstars is not given",
    )
    sweep.add_argument("--collateral", type=float, default=0.0)
    sweep.add_argument(
        "--legacy",
        action="store_true",
        help="one scalar backward induction per point (reference path)",
    )
    sweep.add_argument(
        "--surface",
        default=None,
        metavar="PATH",
        help="answer through a precomputed surface artifact (repro-swaps warm)",
    )
    sweep.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="interpolation error budget for --surface (default: the "
        "artifact's); 0 demands exactness",
    )
    _add_law_argument(sweep)

    validate = sub.add_parser(
        "validate", parents=[common], help="Monte Carlo vs analytic SR"
    )
    validate.add_argument("--pstar", type=float, default=2.0)
    validate.add_argument("--paths", type=int, default=50_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--collateral", type=float, default=0.0)
    validate.add_argument("--protocol-level", action="store_true")
    _add_law_argument(validate)

    graph = sub.add_parser(
        "graph",
        parents=[common],
        help="solve a multi-party / packetized swap graph",
    )
    graph.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="SwapGraphSpec JSON document (overrides --parties/--pstar)",
    )
    graph.add_argument(
        "--parties",
        type=int,
        default=2,
        help="cycle size when --spec is not given (2 = the paper's "
        "two-party swap)",
    )
    graph.add_argument(
        "--packets",
        type=int,
        default=1,
        help="split every leg into K sequential packets",
    )
    graph.add_argument("--pstar", type=float, default=2.0)
    graph.add_argument(
        "--collateral",
        type=float,
        default=0.0,
        help="per-party collateral posted at initiation",
    )
    graph.add_argument(
        "--step-time",
        type=float,
        default=None,
        help="hours between decision steps (default: the largest "
        "confirmation delay)",
    )
    graph.add_argument(
        "--n-lattice",
        type=int,
        default=None,
        help="price-lattice branching factor (default: auto-sized; "
        "forces lattice mode even for paper-shaped specs)",
    )
    graph.add_argument(
        "--replay",
        action="store_true",
        help="replay the equilibrium on simulated chains",
    )
    graph.add_argument("--replay-paths", type=int, default=400)
    graph.add_argument(
        "--seed", type=int, default=None, help="replay RNG seed"
    )

    backtest = sub.add_parser(
        "backtest",
        parents=[common],
        help="walk-forward backtest on a synthetic market",
    )
    backtest.add_argument(
        "--market", choices=["gbm", "regime", "jumps"], default="gbm"
    )
    backtest.add_argument(
        "--law",
        choices=["lognormal", "merton", "regime"],
        default="lognormal",
        help="price law each rolling window is calibrated to "
        "(lognormal = the paper's GBM estimator)",
    )
    backtest.add_argument("--hours", type=int, default=1200)
    backtest.add_argument("--seed", type=int, default=0)

    market = sub.add_parser(
        "market",
        parents=[common],
        help="heterogeneous-population failure rate vs volatility",
    )
    market.add_argument("--pairs", type=int, default=30)
    market.add_argument("--seed", type=int, default=0)

    uncertainty = sub.add_parser(
        "uncertainty",
        parents=[common],
        help="success rate under belief uncertainty about alpha",
    )
    uncertainty.add_argument("--pstar", type=float, default=2.0)
    uncertainty.add_argument("--spread", type=float, default=0.2)

    experiments = sub.add_parser(
        "experiments",
        parents=[common],
        help="run the full reproduction record (EXPERIMENTS.md)",
    )
    experiments.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )

    export = sub.add_parser(
        "export", parents=[common], help="write per-figure CSV data files"
    )
    export.add_argument("--out", default="results")

    batch = sub.add_parser(
        "batch", parents=[common], help="serve JSON-lines solve/validate requests"
    )
    _add_batch_arguments(batch)

    stats = sub.add_parser(
        "stats",
        parents=[common],
        help="print the metrics-registry snapshot (optionally after a batch)",
    )
    stats.add_argument(
        "input",
        nargs="?",
        default=None,
        help="optional request file to serve first ('-' = stdin)",
    )
    stats.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    stats.add_argument(
        "--cache-dir", default=None, help="directory for the persistent cache"
    )
    stats.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="bound on disk-cache entries (oldest pruned on write)",
    )
    stats.add_argument(
        "--timeout", type=float, default=None, help="per-request seconds budget"
    )
    stats.add_argument(
        "--format",
        choices=["prom", "json"],
        default="prom",
        help="snapshot rendering (Prometheus text or JSON)",
    )
    _add_surface_arguments(stats)

    serve = sub.add_parser(
        "serve",
        parents=[common],
        help="serve the solver over HTTP until SIGTERM/SIGINT",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8100, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="shard across N replica subprocesses behind an asyncio "
        "router (0 = the single threaded server)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="max concurrently admitted API requests (excess sheds 429)",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=1 << 20,
        help="request-body ceiling (larger uploads get 413)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-request wall-clock budget in seconds (504 past it)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="grace period for in-flight requests at shutdown",
    )
    serve.add_argument(
        "--cache-dir", default=None, help="directory for the persistent cache"
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="bound on disk-cache entries (oldest pruned on write)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-solve pool budget"
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="flush the metrics registry (Prometheus text) here on drain",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject faults per this JSON plan (chaos testing; see repro.faults)",
    )
    serve.add_argument(
        "--probe-interval",
        type=float,
        default=None,
        help="sharded tier: actively probe each replica's /readyz every "
        "N seconds, ejecting/readmitting on the hash ring (default: off)",
    )
    serve.add_argument(
        "--probe-failures",
        type=int,
        default=3,
        help="consecutive probe failures before a replica is ejected",
    )
    serve.add_argument(
        "--no-supervise",
        dest="supervise",
        action="store_false",
        help="sharded tier: do not restart replicas that die "
        "(default: the router supervises its own replicas)",
    )
    serve.add_argument(
        "--restart-backoff",
        type=float,
        default=0.5,
        help="supervisor: base restart delay, doubled per consecutive "
        "death up to --restart-backoff-cap, with jitter",
    )
    serve.add_argument(
        "--restart-backoff-cap",
        type=float,
        default=10.0,
        help="supervisor: ceiling on the restart backoff delay",
    )
    serve.add_argument(
        "--flap-limit",
        type=int,
        default=5,
        help="supervisor: deaths within --flap-window before a "
        "crash-looping replica is parked (no more restarts)",
    )
    serve.add_argument(
        "--flap-window",
        type=float,
        default=30.0,
        help="supervisor: sliding window (seconds) for the flap detector",
    )
    serve.add_argument(
        "--admin-token",
        default=None,
        metavar="TOKEN",
        help="enable the router's /admin/v1/* control surface, "
        "authenticated by this bearer token (default: disabled)",
    )
    serve.add_argument(
        "--router-cache",
        type=int,
        default=0,
        help="router-side hot-key response cache capacity (entries; "
        "0 = off, invalidated on every topology change)",
    )
    serve.add_argument(
        "--overload-target",
        type=float,
        default=None,
        help="admission gate: sliding-p95 latency (seconds) above which "
        "load is shed pre-deadline (default: deadline / 2)",
    )
    _add_surface_arguments(serve)

    admin = sub.add_parser(
        "admin",
        parents=[common],
        help="drive a running router's /admin/v1/* control surface",
    )
    admin.add_argument(
        "action",
        choices=("topology", "add", "remove"),
        help="topology: print ring + replica states; add: grow the "
        "fleet by one replica; remove: drain and stop one replica",
    )
    admin.add_argument(
        "name",
        nargs="?",
        default=None,
        help="replica name (required for remove; optional label for "
        "add with --replica-url)",
    )
    admin.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="the router's base URL, e.g. http://127.0.0.1:8100",
    )
    admin.add_argument(
        "--token",
        default=None,
        metavar="TOKEN",
        help="bearer token (must match the router's --admin-token)",
    )
    admin.add_argument(
        "--replica-url",
        default=None,
        metavar="URL",
        help="add: adopt an externally managed replica at this URL "
        "instead of spawning a supervised subprocess",
    )

    warm = sub.add_parser(
        "warm",
        parents=[common],
        help="precompute an equilibrium surface artifact for --surface",
    )
    warm.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="artifact output path (written atomically)",
    )
    warm.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME:LO:HI:POINTS",
        help="one grid axis (repeatable; a pstar axis is required; "
        "names: pstar, collateral, alpha, r, sigma, tau_a, tau_b, ...)",
    )
    warm.add_argument(
        "--collateral",
        type=float,
        default=0.0,
        help="fixed Q when collateral is not an axis",
    )
    warm.add_argument(
        "--tolerance",
        type=float,
        default=1e-3,
        help="default answer tolerance recorded in the artifact",
    )
    warm.add_argument(
        "--quad-order",
        type=int,
        default=None,
        help="Gauss-Legendre order for the builder's solves",
    )
    warm.add_argument(
        "--scan-points",
        type=int,
        default=512,
        help="threshold-scan resolution for the builder's solves",
    )

    return parser


def _add_law_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--law",
        default=None,
        metavar="KIND[:K=V,...]",
        help="price law for the swap (default lognormal); e.g. "
        "'merton:jump_intensity=0.05,jump_mean=-0.08' or "
        "'regime:sigma_turbulent=0.2'",
    )


def _add_surface_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--surface",
        default=None,
        metavar="PATH",
        help="precomputed surface artifact (repro-swaps warm) as the "
        "first answer tier",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="service-wide interpolation error budget; without it, "
        "tolerance-less requests stay exact",
    )
    parser.add_argument(
        "--surface-tolerance",
        type=float,
        default=None,
        help="deprecated spelling of --tolerance (one release of grace)",
    )


def _resolve_tolerance(args: argparse.Namespace) -> Optional[float]:
    """The canonical ``tolerance`` value, honouring the deprecated flag."""
    if args.surface_tolerance is not None:
        from repro.deprecation import warn_once

        warn_once(
            "cli.surface-tolerance",
            "--surface-tolerance is deprecated; use --tolerance",
        )
        if args.tolerance is None:
            return args.surface_tolerance
    return args.tolerance


def _add_batch_arguments(batch: argparse.ArgumentParser) -> None:
    batch.add_argument(
        "input",
        nargs="?",
        default="-",
        help="request file, one JSON object per line ('-' = stdin)",
    )
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    batch.add_argument(
        "--cache-dir", default=None, help="directory for the persistent cache"
    )
    batch.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="bound on disk-cache entries (oldest pruned on write)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-request seconds budget"
    )
    batch.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics registry (Prometheus text) here after the run",
    )
    batch.add_argument(
        "--log-out",
        default=None,
        metavar="PATH",
        help="append structured JSON-lines trace events to this file",
    )
    batch.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="inject faults per this JSON plan (chaos testing; see repro.faults)",
    )
    _add_surface_arguments(batch)


def _cmd_graph(args: argparse.Namespace) -> object:
    """Solve (and optionally chain-replay) one swap graph."""
    from repro.api import swap_graph
    from repro.swapgraph import SwapGraphSpec

    if args.spec is not None:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read {args.spec}: {exc.strerror}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"{args.spec} is not valid JSON: {exc}") from None
        spec = SwapGraphSpec.from_dict(document)
    elif args.parties == 2:
        spec = SwapGraphSpec.two_party(
            SwapParameters.default(),
            pstar=args.pstar,
            packets=args.packets,
            collateral=args.collateral,
        )
    else:
        spec = SwapGraphSpec.cycle(
            args.parties,
            packets=args.packets,
            p0=args.pstar,
            collateral=args.collateral,
        )
    if args.step_time is not None:
        spec = spec.replace(step_time=args.step_time)

    result = swap_graph(
        spec,
        n_lattice=args.n_lattice,
        replay=args.replay,
        replay_paths=args.replay_paths,
        seed=args.seed,
    )
    if args.json:
        return result.to_dict()
    eq = result.equilibrium
    lines = [
        f"Swap graph: {len(spec.parties)} parties, {len(spec.edges)} edges, "
        f"{spec.packets} packet(s)",
        f"  solver mode   : {eq.mode}"
        + (f" ({eq.node_count} nodes, m={eq.n_lattice})" if eq.node_count else ""),
        f"  initiated     : {eq.initiated}",
        f"  success rate  : {eq.success_rate:.4f} (conditional on initiation)",
    ]
    for name in sorted(eq.utilities):
        lines.append(f"  utility {name:<6}: {eq.utilities[name]:.4f}")
    if result.replay is not None:
        replay = result.replay
        verdict = "PASS" if replay.passed else "MISMATCH"
        lines.append(
            f"  chain replay  : {verdict} -- empirical "
            f"{replay.empirical_rate:.4f} vs predicted "
            f"{replay.predicted_rate:.4f} over {replay.n_paths} paths "
            f"({replay.mechanical_failures} mechanical failures)"
        )
    return "\n".join(lines)


def _cmd_backtest(args: argparse.Namespace) -> str:
    from repro.marketdata import (
        JumpDiffusionGenerator,
        PlainGBMGenerator,
        RegimeSwitchingGenerator,
        SwapBacktester,
    )
    from repro.stochastic.rng import RandomState

    rng = RandomState(args.seed)
    if args.market == "gbm":
        series = PlainGBMGenerator(mu=0.002, sigma=0.08).generate(
            2.0, args.hours, rng
        )
    elif args.market == "regime":
        series, _regimes = RegimeSwitchingGenerator().generate(2.0, args.hours, rng)
    else:
        series = JumpDiffusionGenerator().generate(2.0, args.hours, rng)
    report = SwapBacktester(
        SwapParameters.default(), window=168, step=24, law_kind=args.law
    ).run(series)
    return (
        f"backtest on {args.market} market ({args.law} calibration):\n"
        f"{report.describe()}"
    )


def _cmd_market(args: argparse.Namespace) -> str:
    from repro.simulation.population import PopulationSpec, volatility_failure_curve

    curve = volatility_failure_curve(
        SwapParameters.default(),
        PopulationSpec(),
        sigmas=(0.03, 0.06, 0.1, 0.15),
        n_pairs=args.pairs,
        seed=args.seed,
    )
    lines = ["sigma  participation  failure"]
    for outcome in curve:
        lines.append(
            f"{outcome.sigma:5.2f}  {outcome.participation_rate:13.1%}  "
            f"{outcome.failure_rate:7.1%}"
        )
    return "\n".join(lines)


def _cmd_uncertainty(args: argparse.Namespace) -> str:
    from repro.core.bayesian import BayesianSwapGame, TypeDistribution
    from repro.core.backward_induction import BackwardInduction

    params = SwapParameters.default()
    complete = BackwardInduction(params, args.pstar).success_rate()
    centre = params.alice.alpha
    if args.spread <= 0.0:
        belief = TypeDistribution.point(centre)
    else:
        belief = TypeDistribution.uniform(
            [max(centre - args.spread, 0.0), centre, centre + args.spread]
        )
    game = BayesianSwapGame(params, args.pstar, belief, belief)
    return (
        f"complete-information SR : {complete:.4f}\n"
        f"realised SR (belief +/- {args.spread:g}) : "
        f"{game.realised_success_rate():.4f}\n"
        f"ex-ante SR              : {game.ex_ante_success_rate():.4f}\n"
        f"Alice initiates         : {game.alice_initiates()}"
    )


def _read_request_lines(source: str) -> List[str]:
    if source == "-":
        return sys.stdin.read().splitlines()
    try:
        with open(source, "r", encoding="utf-8") as handle:
            return handle.read().splitlines()
    except OSError as exc:
        raise ValueError(f"cannot read {source}: {exc.strerror}") from exc


def _serve_batch(
    lines: List[str],
    workers: int,
    cache_dir: Optional[str],
    timeout: Optional[float],
    cache_entries: Optional[int] = None,
    fault_plan: Optional[str] = None,
    surface: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> Tuple[bool, List[dict]]:
    """Parse and execute a JSON-lines batch.

    Thin wrapper over :func:`repro.service.jsonl.serve_lines` (the same
    wire logic ``POST /v1/batch`` speaks) that constructs a one-shot
    service from the CLI flags. ``fault_plan`` (a JSON file path)
    activates deterministic fault injection; a malformed plan raises
    ``ValueError`` -> clean exit 2 in :func:`main`. ``surface``
    installs a precomputed artifact as the first answer tier.
    """
    from repro.service import SwapService, serve_lines

    service = SwapService(
        max_workers=workers,
        cache_dir=cache_dir,
        cache_entries=cache_entries,
        timeout=timeout,
        faults=fault_plan,
        surface=surface,
        tolerance=tolerance,
    )
    return serve_lines(service, lines)


def _cmd_batch(args: argparse.Namespace) -> CommandOutcome:
    """Serve a JSON-lines request stream; one result record per request.

    Exit status 0 iff every non-blank input line parsed as JSON.
    Semantically invalid requests (bad field values, unknown kinds) and
    solver failures still produce a structured error record but do not
    fail the run -- they are results, not stream corruption.
    """
    log_handle = None
    if args.log_out is not None:
        from repro.obs.logging import JsonLinesLogger, set_logger

        log_handle = open(args.log_out, "a", encoding="utf-8")
        previous_logger = set_logger(JsonLinesLogger(log_handle))
    try:
        lines = _read_request_lines(args.input)
        all_parsed, records = _serve_batch(
            lines,
            args.workers,
            args.cache_dir,
            args.timeout,
            cache_entries=args.cache_entries,
            fault_plan=args.fault_plan,
            surface=args.surface,
            tolerance=_resolve_tolerance(args),
        )
    finally:
        if log_handle is not None:
            from repro.obs.logging import set_logger

            set_logger(previous_logger)
            log_handle.close()

    if args.metrics_out is not None:
        from repro.obs import write_metrics

        write_metrics(args.metrics_out)
    return (0 if all_parsed else 1), records


def _cmd_stats(args: argparse.Namespace) -> CommandOutcome:
    """Print the metrics-registry snapshot, optionally after a batch."""
    from repro.obs import get_registry, to_prometheus_text

    if args.input is not None:
        lines = _read_request_lines(args.input)
        _serve_batch(
            lines,
            args.workers,
            args.cache_dir,
            args.timeout,
            cache_entries=args.cache_entries,
            surface=args.surface,
            tolerance=_resolve_tolerance(args),
        )
    if args.format == "json" or args.json:
        return 0, get_registry().snapshot()
    return 0, to_prometheus_text(get_registry())


def _cmd_serve(args: argparse.Namespace) -> CommandOutcome:
    """Run the HTTP server until SIGTERM/SIGINT, then drain."""
    from repro.server import ServerConfig, serve

    # ServerConfig validation raises ValueError -> clean exit 2 in main()
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_body_bytes=args.max_body_bytes,
        deadline=args.deadline,
        drain_timeout=args.drain_timeout,
        cache_dir=args.cache_dir,
        cache_entries=args.cache_entries,
        timeout=args.timeout,
        metrics_out=args.metrics_out,
        fault_plan=args.fault_plan,
        surface=args.surface,
        tolerance=_resolve_tolerance(args),
        replicas=args.replicas,
        probe_interval=args.probe_interval,
        probe_failures=args.probe_failures,
        supervise=args.supervise,
        restart_backoff=args.restart_backoff,
        restart_backoff_cap=args.restart_backoff_cap,
        flap_limit=args.flap_limit,
        flap_window=args.flap_window,
        admin_token=args.admin_token,
        router_cache=args.router_cache,
        overload_target=args.overload_target,
    )
    status = serve(config)
    return status, {"ok": status == 0, "drained": status == 0}


def _cmd_admin(args: argparse.Namespace) -> CommandOutcome:
    """Drive a running router's admin surface over HTTP."""
    from repro.server.client import ServerReplyError, SwapClient

    client = SwapClient(args.url, admin_token=args.token)
    try:
        if args.action == "topology":
            return 0, client.admin_topology()
        if args.action == "add":
            return 0, client.admin_add(url=args.replica_url, name=args.name)
        if args.name is None:
            raise ValueError("admin remove needs a replica name")
        return 0, client.admin_remove(args.name)
    except ServerReplyError as exc:
        # the router's typed envelope, surfaced as a clean CLI error
        raise ValueError(str(exc)) from None


def _cmd_warm(args: argparse.Namespace) -> object:
    """Precompute a surface artifact from ``--axis`` specs.

    Exact solves fill the grid; midpoint probes certify a per-cell
    interpolation error bound. The resulting file is self-describing
    (axes, parameters, checksum) and memory-mapped at load time.
    """
    from repro.surface import AxisSpec, SurfaceSpec, warm_surface

    if not args.axis:
        raise ValueError("at least one --axis name:lo:hi:points is required")
    axes = tuple(AxisSpec.parse(token) for token in args.axis)
    spec = SurfaceSpec(
        axes=axes,
        params=SwapParameters.default(),
        collateral=args.collateral,
        default_tolerance=args.tolerance,
    )
    kwargs = {"scan_points": args.scan_points}
    if args.quad_order is not None:
        kwargs["quad_order"] = args.quad_order
    surface = warm_surface(spec, args.out, **kwargs)
    return surface.info()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the exit status, never raises for
    invalid values)."""
    from repro.service.errors import ServiceError, ServiceErrorInfo

    args = build_parser().parse_args(argv)
    json_mode = getattr(args, "json", False)
    try:
        status, result = _dispatch(args)
    except ValueError as exc:
        info = ServiceErrorInfo(code="invalid_value", message=str(exc))
        _emit_failure(info, json_mode)
        return 2
    except ServiceError as exc:
        _emit_failure(ServiceErrorInfo.from_exception(exc), json_mode)
        return 2
    _emit_success(args, status, result, json_mode)
    return status


def _emit_failure(info, json_mode: bool) -> None:
    if json_mode:
        envelope = {"ok": False, "result": None, "error": info.to_dict()}
        print(json.dumps(envelope, separators=(",", ":")))
    else:
        print(f"error: {info.message}", file=sys.stderr)


def _emit_success(args, status: int, result, json_mode: bool) -> None:
    if json_mode:
        envelope = {"ok": status == 0, "result": result, "error": None}
        print(json.dumps(envelope, separators=(",", ":")))
    elif args.command == "batch":
        # the historical JSON-lines stream: one record per request line
        for record in result:
            print(json.dumps(record, separators=(",", ":")))
    elif isinstance(result, str):
        print(result)
    else:
        print(json.dumps(result, indent=2, sort_keys=True))


def _dispatch(args: argparse.Namespace) -> CommandOutcome:
    artifacts = _artifact_commands()
    if args.command in artifacts:
        return 0, artifacts[args.command]()
    if args.command == "all":
        sections = []
        for name, producer in artifacts.items():
            sections.append(f"\n===== {name} =====\n{producer()}")
        return 0, "\n".join(sections)
    if args.command == "solve":
        return 0, _cmd_solve(args)
    if args.command == "sweep":
        return 0, _cmd_sweep(args)
    if args.command == "validate":
        return 0, _cmd_validate(args)
    if args.command == "graph":
        return 0, _cmd_graph(args)
    if args.command == "backtest":
        return 0, _cmd_backtest(args)
    if args.command == "market":
        return 0, _cmd_market(args)
    if args.command == "uncertainty":
        return 0, _cmd_uncertainty(args)
    if args.command == "experiments":
        from repro.analysis.experiments import render_markdown, run_all_experiments
        from repro.service import SwapService

        results = run_all_experiments(service=SwapService(max_workers=args.workers))
        text = render_markdown(results)
        text += f"\n\n{sum(r.holds for r in results)}/{len(results)} claims hold"
        return 0, text
    if args.command == "export":
        from pathlib import Path

        from repro.analysis.export import export_all_figures

        written = export_all_figures(Path(args.out))
        return 0, "\n".join(f"wrote {path}" for path in written.values())
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "admin":
        return _cmd_admin(args)
    if args.command == "warm":
        return 0, _cmd_warm(args)
    raise ValueError(f"unknown command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
