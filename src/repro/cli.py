"""Command-line entry point: regenerate any paper artifact, or serve batches.

Usage::

    repro-swaps table1
    repro-swaps table3
    repro-swaps figure3 ... figure9
    repro-swaps solve --pstar 2.0 [--collateral 0.5]
    repro-swaps validate --pstar 2.0 --paths 50000
    repro-swaps batch requests.jsonl --workers 4 --cache-dir cache
    repro-swaps all

(or ``python -m repro.cli ...``).

``batch`` reads one JSON request per line (``kind`` = ``solve`` or
``validate``; see :mod:`repro.service.requests`) from a file or stdin
(``-``) and emits one JSON result line per request, errors included.
The exit status is 0 iff every line parsed as JSON.

Invalid artifact names and invalid ``--pstar``/``--collateral`` values
exit non-zero with a one-line error instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis import (
    figure2_timeline,
    figure3_alice_t3,
    figure4_bob_t2,
    figure5_alice_t1,
    figure6_success_rate,
    figure7_bob_t2_collateral,
    figure8_t1_collateral,
    figure9_sr_collateral,
    table1_balance_change,
    table3_default_parameters,
)
from repro.core import (
    SwapParameters,
    solve_collateral_game,
    solve_swap_game,
)
from repro.simulation import validate_against_analytic

__all__ = ["main"]


def _artifact_commands() -> Dict[str, Callable[[], str]]:
    return {
        "table1": lambda: table1_balance_change()[1],
        "table3": lambda: table3_default_parameters()[1],
        "figure2": lambda: figure2_timeline().render(),
        "figure3": lambda: figure3_alice_t3().render(),
        "figure4": lambda: figure4_bob_t2().render(),
        "figure5": lambda: figure5_alice_t1().render(),
        "figure6": lambda: figure6_success_rate().render(),
        "figure7": lambda: figure7_bob_t2_collateral().render(),
        "figure8": lambda: figure8_t1_collateral().render(),
        "figure9": lambda: figure9_sr_collateral().render(),
    }


def _cmd_solve(args: argparse.Namespace) -> str:
    from repro.service.requests import SolveRequest

    params = SwapParameters.default()
    # constructing the request validates pstar/collateral with clean errors
    request = SolveRequest(
        pstar=args.pstar, collateral=args.collateral, params=params
    )
    if request.collateral > 0.0:
        eq = solve_collateral_game(params, request.pstar, request.collateral)
        region = "; ".join(
            f"({lo:.4f}, {hi:.4f})" for lo, hi in eq.bob_t2_region.intervals
        )
        return (
            f"Collateral game at P* = {eq.pstar}, Q = {eq.collateral}\n"
            f"  Alice reveal threshold : {eq.p3_threshold:.4f}\n"
            f"  Bob continuation region: {region or 'empty'}\n"
            f"  Alice t1 cont/stop     : {eq.alice_t1.cont:.4f} / {eq.alice_t1.stop:.4f}\n"
            f"  Bob   t1 cont/stop     : {eq.bob_t1.cont:.4f} / {eq.bob_t1.stop:.4f}\n"
            f"  engaged                : {eq.engaged}\n"
            f"  success rate (Eq. 40)  : {eq.success_rate:.4f}"
        )
    return solve_swap_game(params, args.pstar).summary()


def _cmd_validate(args: argparse.Namespace) -> str:
    from repro.service.requests import ValidateRequest

    params = SwapParameters.default()
    ValidateRequest(  # validates pstar/collateral/paths with clean errors
        pstar=args.pstar,
        collateral=args.collateral,
        n_paths=args.paths,
        seed=args.seed,
        params=params,
    )
    empirical, analytic = validate_against_analytic(
        params,
        args.pstar,
        n_paths=args.paths,
        seed=args.seed,
        collateral=args.collateral,
        protocol_level=args.protocol_level,
    )
    level = "protocol" if args.protocol_level else "strategy"
    verdict = "PASS" if empirical.contains(analytic) else "MISMATCH"
    return (
        f"Monte Carlo validation ({level} level, {args.paths} paths)\n"
        f"  analytic SR : {analytic:.4f}\n"
        f"  empirical SR: {empirical.success_rate:.4f} "
        f"(95% CI [{empirical.ci_low:.4f}, {empirical.ci_high:.4f}])\n"
        f"  {verdict}: analytic value "
        f"{'inside' if empirical.contains(analytic) else 'outside'} the CI"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-swaps",
        description="Regenerate artifacts from the HTLC atomic-swap paper.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in list(_artifact_commands()) + ["all"]:
        sub.add_parser(name, help=f"print {name}")

    solve = sub.add_parser("solve", help="solve one swap game")
    solve.add_argument("--pstar", type=float, default=2.0)
    solve.add_argument("--collateral", type=float, default=0.0)

    validate = sub.add_parser("validate", help="Monte Carlo vs analytic SR")
    validate.add_argument("--pstar", type=float, default=2.0)
    validate.add_argument("--paths", type=int, default=50_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--collateral", type=float, default=0.0)
    validate.add_argument("--protocol-level", action="store_true")

    backtest = sub.add_parser(
        "backtest", help="walk-forward backtest on a synthetic market"
    )
    backtest.add_argument(
        "--market", choices=["gbm", "regime", "jumps"], default="gbm"
    )
    backtest.add_argument("--hours", type=int, default=1200)
    backtest.add_argument("--seed", type=int, default=0)

    market = sub.add_parser(
        "market", help="heterogeneous-population failure rate vs volatility"
    )
    market.add_argument("--pairs", type=int, default=30)
    market.add_argument("--seed", type=int, default=0)

    uncertainty = sub.add_parser(
        "uncertainty", help="success rate under belief uncertainty about alpha"
    )
    uncertainty.add_argument("--pstar", type=float, default=2.0)
    uncertainty.add_argument("--spread", type=float, default=0.2)

    experiments = sub.add_parser(
        "experiments", help="run the full reproduction record (EXPERIMENTS.md)"
    )
    experiments.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )

    export = sub.add_parser("export", help="write per-figure CSV data files")
    export.add_argument("--out", default="results")

    batch = sub.add_parser(
        "batch", help="serve JSON-lines solve/validate requests"
    )
    batch.add_argument(
        "input",
        nargs="?",
        default="-",
        help="request file, one JSON object per line ('-' = stdin)",
    )
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = serial)"
    )
    batch.add_argument(
        "--cache-dir", default=None, help="directory for the persistent cache"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-request seconds budget"
    )

    return parser


def _cmd_backtest(args: argparse.Namespace) -> str:
    from repro.marketdata import (
        JumpDiffusionGenerator,
        PlainGBMGenerator,
        RegimeSwitchingGenerator,
        SwapBacktester,
    )
    from repro.stochastic.rng import RandomState

    rng = RandomState(args.seed)
    if args.market == "gbm":
        series = PlainGBMGenerator(mu=0.002, sigma=0.08).generate(
            2.0, args.hours, rng
        )
    elif args.market == "regime":
        series, _regimes = RegimeSwitchingGenerator().generate(2.0, args.hours, rng)
    else:
        series = JumpDiffusionGenerator().generate(2.0, args.hours, rng)
    report = SwapBacktester(SwapParameters.default(), window=168, step=24).run(series)
    return f"backtest on {args.market} market:\n{report.describe()}"


def _cmd_market(args: argparse.Namespace) -> str:
    from repro.simulation.population import PopulationSpec, volatility_failure_curve

    curve = volatility_failure_curve(
        SwapParameters.default(),
        PopulationSpec(),
        sigmas=(0.03, 0.06, 0.1, 0.15),
        n_pairs=args.pairs,
        seed=args.seed,
    )
    lines = ["sigma  participation  failure"]
    for outcome in curve:
        lines.append(
            f"{outcome.sigma:5.2f}  {outcome.participation_rate:13.1%}  "
            f"{outcome.failure_rate:7.1%}"
        )
    return "\n".join(lines)


def _cmd_uncertainty(args: argparse.Namespace) -> str:
    from repro.core.bayesian import BayesianSwapGame, TypeDistribution
    from repro.core.backward_induction import BackwardInduction

    params = SwapParameters.default()
    complete = BackwardInduction(params, args.pstar).success_rate()
    centre = params.alice.alpha
    if args.spread <= 0.0:
        belief = TypeDistribution.point(centre)
    else:
        belief = TypeDistribution.uniform(
            [max(centre - args.spread, 0.0), centre, centre + args.spread]
        )
    game = BayesianSwapGame(params, args.pstar, belief, belief)
    return (
        f"complete-information SR : {complete:.4f}\n"
        f"realised SR (belief +/- {args.spread:g}) : "
        f"{game.realised_success_rate():.4f}\n"
        f"ex-ante SR              : {game.ex_ante_success_rate():.4f}\n"
        f"Alice initiates         : {game.alice_initiates()}"
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve a JSON-lines request stream; one result line per request.

    Exit status 0 iff every non-blank input line parsed as JSON.
    Semantically invalid requests (bad field values, unknown kinds) and
    solver failures still produce a structured error line but do not
    fail the run -- they are results, not stream corruption.
    """
    from repro.service import SwapService, error_payload, parse_request
    from repro.service.errors import ServiceError
    from repro.service.serialize import encode_result

    if args.input == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise ValueError(f"cannot read {args.input}: {exc.strerror}") from exc

    service = SwapService(
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
    )

    # parse every line first so the batch executes (and dedupes) as one
    records = []  # (line_no, request | None, error_payload | None)
    all_parsed = True
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            all_parsed = False
            records.append(
                (line_no, None, {"code": "parse_error", "message": str(exc)})
            )
            continue
        try:
            records.append((line_no, parse_request(data), None))
        except ServiceError as exc:
            records.append((line_no, None, error_payload(exc)))

    requests = [request for _, request, _ in records if request is not None]
    items = iter(service.run_batch(requests))
    for line_no, request, error in records:
        if request is None:
            out = {"line": line_no, "ok": False, "error": error}
        else:
            item = next(items)
            out = {
                "line": line_no,
                "ok": item.ok,
                "kind": request.to_dict()["kind"],
                "key": item.key,
                "cached": item.cached,
            }
            if item.ok:
                out["result"] = encode_result(item.value)
            else:
                out["error"] = item.error
        print(json.dumps(out, separators=(",", ":")))
    return 0 if all_parsed else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the exit status, never raises for
    invalid values -- see :func:`_dispatch`)."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    from repro.service.errors import ServiceError

    artifacts = _artifact_commands()
    try:
        return _run_command(args, artifacts)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_command(args: argparse.Namespace, artifacts) -> int:
    if args.command in artifacts:
        print(artifacts[args.command]())
    elif args.command == "all":
        for name, producer in artifacts.items():
            print(f"\n===== {name} =====")
            print(producer())
    elif args.command == "solve":
        print(_cmd_solve(args))
    elif args.command == "validate":
        print(_cmd_validate(args))
    elif args.command == "backtest":
        print(_cmd_backtest(args))
    elif args.command == "market":
        print(_cmd_market(args))
    elif args.command == "uncertainty":
        print(_cmd_uncertainty(args))
    elif args.command == "experiments":
        from repro.analysis.experiments import render_markdown, run_all_experiments
        from repro.service import SwapService

        results = run_all_experiments(service=SwapService(max_workers=args.workers))
        print(render_markdown(results))
        print(f"\n{sum(r.holds for r in results)}/{len(results)} claims hold")
    elif args.command == "export":
        from pathlib import Path

        from repro.analysis.export import export_all_figures

        written = export_all_figures(Path(args.out))
        for name, path in written.items():
            print(f"wrote {path}")
    elif args.command == "batch":
        return _cmd_batch(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
