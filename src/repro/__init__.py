"""repro -- reproduction of "A Game-Theoretic Analysis of Cross-Chain
Atomic Swaps with HTLCs" (Xu, Ackerer, Dubovitskaya; ICDCS 2021).

The package has four layers:

* **analytics** (:mod:`repro.core`, :mod:`repro.stochastic`,
  :mod:`repro.games`): the paper's backward-induction model, its
  collateral extension, a premium-mechanism baseline, and a generic
  extensive-form-game substrate used as an independent cross-check;
* **system** (:mod:`repro.chain`, :mod:`repro.protocol`,
  :mod:`repro.agents`): a simulated two-chain environment with real
  hashlock semantics, the HTLC swap protocol state machine, and agent
  implementations (rational/honest/adversarial/crashing);
* **experiments** (:mod:`repro.simulation`, :mod:`repro.analysis`):
  Monte Carlo validation of the analytics against protocol-level
  simulation, and generators for every table and figure in the paper;
* **serving** (:mod:`repro.service`, :mod:`repro.obs`): the batched,
  cached, parallel solve-and-validate engine and its observability
  substrate (metrics, tracing spans, Prometheus/JSON export).

The public solver API is the :mod:`repro.api` facade, re-exported
here::

    from repro import SwapParameters, solve, sweep, success_rate

    eq = solve(SwapParameters.default(), pstar=2.0)
    print(eq.summary())
    rates = [e.success_rate for e in sweep([1.8, 2.0, 2.2])]

The pre-facade entry points (``solve_swap_game``,
``solve_collateral_game``, ``solve_premium_game``) completed their
deprecation cycle (a :class:`DeprecationWarning` through v1.1) and are
now hard errors at the top level: accessing them raises
:class:`ImportError` pointing at the :mod:`repro.api` facade. The
originals still live in :mod:`repro.core` for callers that want the
raw per-model solvers.
"""

from repro.api import (
    Equilibrium,
    EquilibriumGrid,
    solve,
    solve_grid,
    success_rate,
    sweep,
    validate,
)
from repro.core import (
    AgentParameters,
    SwapParameters,
    SwapEquilibrium,
    success_rate_curve,
    max_success_rate,
    feasible_pstar_range,
    equilibrium_strategies,
)
from repro.service.executor import ValidationResult
from repro.stochastic import GeometricBrownianMotion, RandomState

__version__ = "1.2.0"

# v1.0 shipped these as top-level aliases, v1.1 deprecated them with a
# warning; their cycle is over. The mapping keeps the failure mode a
# guided one: the old name raises ImportError naming its replacement
# instead of a bare AttributeError.
_REMOVED_ALIASES = {
    "solve_swap_game": "repro.solve(params, pstar)",
    "solve_collateral_game": "repro.solve(params, pstar, collateral=...)",
    "solve_premium_game": "repro.solve(params, pstar, premium=...)",
}


def __getattr__(name: str):
    if name in _REMOVED_ALIASES:
        raise ImportError(
            f"repro.{name} was removed in v1.2 after its deprecation "
            f"cycle; use {_REMOVED_ALIASES[name]} via the repro.api "
            f"facade, or import the raw solver from repro.core",
            name=name,
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # unified facade
    "Equilibrium",
    "EquilibriumGrid",
    "solve",
    "solve_grid",
    "validate",
    "sweep",
    "success_rate",
    "ValidationResult",
    # configuration and results
    "AgentParameters",
    "SwapParameters",
    "SwapEquilibrium",
    # analytic helpers
    "success_rate_curve",
    "max_success_rate",
    "feasible_pstar_range",
    "equilibrium_strategies",
    # stochastic substrate
    "GeometricBrownianMotion",
    "RandomState",
    "__version__",
]
