"""repro -- reproduction of "A Game-Theoretic Analysis of Cross-Chain
Atomic Swaps with HTLCs" (Xu, Ackerer, Dubovitskaya; ICDCS 2021).

The package has four layers:

* **analytics** (:mod:`repro.core`, :mod:`repro.stochastic`,
  :mod:`repro.games`): the paper's backward-induction model, its
  collateral extension, a premium-mechanism baseline, and a generic
  extensive-form-game substrate used as an independent cross-check;
* **system** (:mod:`repro.chain`, :mod:`repro.protocol`,
  :mod:`repro.agents`): a simulated two-chain environment with real
  hashlock semantics, the HTLC swap protocol state machine, and agent
  implementations (rational/honest/adversarial/crashing);
* **experiments** (:mod:`repro.simulation`, :mod:`repro.analysis`):
  Monte Carlo validation of the analytics against protocol-level
  simulation, and generators for every table and figure in the paper;
* **serving** (:mod:`repro.service`, :mod:`repro.obs`): the batched,
  cached, parallel solve-and-validate engine and its observability
  substrate (metrics, tracing spans, Prometheus/JSON export).

The public solver API is the :mod:`repro.api` facade, re-exported
here::

    from repro import SwapParameters, solve, sweep, success_rate

    eq = solve(SwapParameters.default(), pstar=2.0)
    print(eq.summary())
    rates = [e.success_rate for e in sweep([1.8, 2.0, 2.2])]

The pre-facade entry points (``solve_swap_game``,
``solve_collateral_game``, ``solve_premium_game``) still work at the
top level but emit a :class:`DeprecationWarning` (once per name per
process); import them from :mod:`repro.core` to keep the old
warning-free behaviour.
"""

import warnings as _warnings

from repro.api import (
    Equilibrium,
    EquilibriumGrid,
    solve,
    solve_grid,
    success_rate,
    sweep,
    validate,
)
from repro.core import (
    AgentParameters,
    SwapParameters,
    SwapEquilibrium,
    success_rate_curve,
    max_success_rate,
    feasible_pstar_range,
    equilibrium_strategies,
)
from repro.core import solve_collateral_game as _core_solve_collateral_game
from repro.core import solve_premium_game as _core_solve_premium_game
from repro.core import solve_swap_game as _core_solve_swap_game
from repro.service.executor import ValidationResult
from repro.stochastic import GeometricBrownianMotion, RandomState

__version__ = "1.1.0"

_warned_names = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _warned_names:
        return
    _warned_names.add(name)
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} "
        f"(or import it from repro.core)",
        DeprecationWarning,
        stacklevel=3,
    )


def solve_swap_game(params, pstar):
    """Deprecated alias of :func:`repro.core.solver.solve_swap_game`.

    Use :func:`repro.solve` (the unified facade) instead.
    """
    _warn_deprecated("solve_swap_game", "repro.solve(params, pstar)")
    return _core_solve_swap_game(params, pstar)


def solve_collateral_game(params, pstar, collateral):
    """Deprecated alias of
    :func:`repro.core.collateral.solve_collateral_game`.

    Use :func:`repro.solve` with ``collateral=...`` instead.
    """
    _warn_deprecated(
        "solve_collateral_game",
        "repro.solve(params, pstar, collateral=...)",
    )
    return _core_solve_collateral_game(params, pstar, collateral)


def solve_premium_game(params, pstar, premium):
    """Deprecated alias of :func:`repro.core.premium.solve_premium_game`.

    Use :func:`repro.solve` with ``premium=...`` instead.
    """
    _warn_deprecated(
        "solve_premium_game", "repro.solve(params, pstar, premium=...)"
    )
    return _core_solve_premium_game(params, pstar, premium)


__all__ = [
    # unified facade
    "Equilibrium",
    "EquilibriumGrid",
    "solve",
    "solve_grid",
    "validate",
    "sweep",
    "success_rate",
    "ValidationResult",
    # configuration and results
    "AgentParameters",
    "SwapParameters",
    "SwapEquilibrium",
    # analytic helpers
    "success_rate_curve",
    "max_success_rate",
    "feasible_pstar_range",
    "equilibrium_strategies",
    # deprecated aliases (import from repro.core for the originals)
    "solve_swap_game",
    "solve_collateral_game",
    "solve_premium_game",
    # stochastic substrate
    "GeometricBrownianMotion",
    "RandomState",
    "__version__",
]
