"""repro -- reproduction of "A Game-Theoretic Analysis of Cross-Chain
Atomic Swaps with HTLCs" (Xu, Ackerer, Dubovitskaya; ICDCS 2021).

The package has three layers:

* **analytics** (:mod:`repro.core`, :mod:`repro.stochastic`,
  :mod:`repro.games`): the paper's backward-induction model, its
  collateral extension, a premium-mechanism baseline, and a generic
  extensive-form-game substrate used as an independent cross-check;
* **system** (:mod:`repro.chain`, :mod:`repro.protocol`,
  :mod:`repro.agents`): a simulated two-chain environment with real
  hashlock semantics, the HTLC swap protocol state machine, and agent
  implementations (rational/honest/adversarial/crashing);
* **experiments** (:mod:`repro.simulation`, :mod:`repro.analysis`):
  Monte Carlo validation of the analytics against protocol-level
  simulation, and generators for every table and figure in the paper.

Quickstart::

    from repro import SwapParameters, solve_swap_game

    eq = solve_swap_game(SwapParameters.default(), pstar=2.0)
    print(eq.summary())
"""

from repro.core import (
    AgentParameters,
    SwapParameters,
    SwapEquilibrium,
    solve_swap_game,
    solve_collateral_game,
    solve_premium_game,
    success_rate,
    success_rate_curve,
    max_success_rate,
    feasible_pstar_range,
    equilibrium_strategies,
)
from repro.stochastic import GeometricBrownianMotion, RandomState

__version__ = "1.0.0"

__all__ = [
    "AgentParameters",
    "SwapParameters",
    "SwapEquilibrium",
    "solve_swap_game",
    "solve_collateral_game",
    "solve_premium_game",
    "success_rate",
    "success_rate_curve",
    "max_success_rate",
    "feasible_pstar_range",
    "equilibrium_strategies",
    "GeometricBrownianMotion",
    "RandomState",
    "__version__",
]
