"""Equilibrium strategies as executable policy objects.

The backward induction yields *threshold* strategies. This module
packages them as plain callables so that the agent-based simulator
(:mod:`repro.agents`, :mod:`repro.simulation`) can execute exactly the
strategies the analysis derives:

* Alice at ``t1``: initiate iff ``P*`` lies in her feasible range;
* Bob at ``t2``: lock iff ``P_{t2}`` lies in his continuation region;
* Alice at ``t3``: reveal iff ``P_{t3} > P̲_{t3}``;
* Bob at ``t4``: always redeem.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.stochastic.rootfind import IntervalUnion

__all__ = ["Action", "AliceStrategy", "BobStrategy", "equilibrium_strategies"]


class Action(str, enum.Enum):
    """The two-element action set of the game (paper Section III-E)."""

    CONT = "cont"
    STOP = "stop"


@dataclass(frozen=True)
class AliceStrategy:
    """Alice's equilibrium policy.

    Attributes
    ----------
    initiate_at_t1:
        Her ``t1`` decision for the agreed ``P*`` (it does not depend on
        any yet-unrealised price: ``P_{t1} = p0`` is known).
    p3_threshold:
        Reveal threshold ``P̲_{t3}`` (Eq. (18)).
    """

    initiate_at_t1: bool
    p3_threshold: float

    def decide_t1(self) -> Action:
        """Initiate the swap or keep Token_a."""
        return Action.CONT if self.initiate_at_t1 else Action.STOP

    def decide_t3(self, p3: float) -> Action:
        """Reveal the secret iff the price cleared the threshold (Eq. (19)).

        The comparison is strict: at ``P_{t3} == P̲_{t3}`` Alice is
        exactly indifferent and stops, per the tie-breaking convention
        (:data:`repro.core.equilibrium.INDIFFERENT_ACTION`).
        """
        return Action.CONT if p3 > self.p3_threshold else Action.STOP


@dataclass(frozen=True)
class BobStrategy:
    """Bob's equilibrium policy.

    Attributes
    ----------
    t2_region:
        Continuation region for ``P_{t2}`` (Eq. (24); an interval union
        to also cover the collateral extension's 3-root case).
    """

    t2_region: IntervalUnion

    def decide_t2(self, p2: float) -> Action:
        """Lock Token_b iff the price is *strictly* inside the region.

        The region's endpoints are the indifference roots of
        ``U^B_{t2}(cont) - U^B_{t2}(stop)``; at an endpoint Bob stops,
        per the shared tie-breaking convention
        (:data:`repro.core.equilibrium.INDIFFERENT_ACTION`). This is
        why membership is checked on the open interiors rather than via
        ``IntervalUnion.__contains__`` (whose half-open ``(lo, hi]``
        convention exists for set algebra, not for tie-breaking).
        """
        inside = any(lo < p2 < hi for lo, hi in self.t2_region.intervals)
        return Action.CONT if inside else Action.STOP

    def decide_t4(self) -> Action:
        """Redeeming with the revealed secret is strictly dominant."""
        return Action.CONT


def equilibrium_strategies(
    params: SwapParameters, pstar: float
) -> "tuple[AliceStrategy, BobStrategy]":
    """Derive both agents' equilibrium policies for a fixed ``pstar``."""
    solver = BackwardInduction(params, pstar)
    alice = AliceStrategy(
        initiate_at_t1=solver.alice_initiates(),
        p3_threshold=solver.p3_threshold(),
    )
    bob = BobStrategy(t2_region=solver.bob_t2_region())
    return alice, bob
