"""HTLC swap with collateral deposits (paper Section IV).

Both agents escrow ``Q`` Token_a with an Oracle-connected contract on
Chain_a before the swap. The Oracle returns an agent's collateral once
that agent has discharged all obligations, and forfeits a deviating
agent's collateral to the counterparty:

* Alice's collateral is released when she reveals the secret (received
  at ``t4 + tau_a``) and forfeited to Bob if she waives at ``t3``;
* Bob's collateral is released when he writes the Chain_b HTLC
  (decided at ``t3``, received at ``t3 + tau_a``) and both deposits go
  to Alice if he walks away at ``t2``;
* if the swap is never engaged at ``t1``, both keep their deposits.

Timing/discount conventions follow the paper's Eqs. (33)-(39) read
literally, with the typo normalisations listed in DESIGN.md ("tau_e"
:= ``eps_b``; Eq. (37)'s outer discount uses Bob's own rate).

Setting ``Q = 0`` reproduces the basic model exactly (property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.core.backward_induction import BackwardInduction, _as_array
from repro.core.equilibrium import StageUtilities
from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.stochastic.quadrature import expectation_on_interval
from repro.stochastic.rootfind import IntervalUnion

__all__ = [
    "CollateralBackwardInduction",
    "t1_engagement_game",
    "CollateralEquilibrium",
    "solve_collateral_game",
    "collateral_success_rate",
    "feasible_pstar_region_with_collateral",
]


class CollateralBackwardInduction(BackwardInduction):
    """Backward induction for the collateralised game (Section IV).

    Parameters
    ----------
    collateral:
        Deposit ``Q`` (in Token_a) escrowed by *each* agent. ``Q = 0``
        degenerates to the basic game.
    """

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        collateral: float,
        **kwargs,
    ) -> None:
        if collateral < 0.0:
            raise ValueError(f"collateral must be non-negative, got {collateral}")
        super().__init__(params, pstar, **kwargs)
        self.collateral = float(collateral)

    # ------------------------------------------------------------------ #
    # t3: Alice's threshold shifts down (Eqs. (33)-(34))
    # ------------------------------------------------------------------ #

    def p3_threshold(self) -> float:
        """Eq. (34): ``P̲_{t3,c}``, zero when the collateral dominates.

        Continuing now also recovers Alice's own deposit (received at
        ``t4 + tau_a``), so the stop branch must beat the refund value
        *minus* the discounted deposit.
        """
        p = self.params
        a = self._alice
        stop_value = self.pstar * math.exp(-a.r * (p.eps_b + 2.0 * p.tau_a))
        deposit_value = self.collateral * math.exp(-a.r * (p.eps_b + p.tau_a))
        net = max(stop_value - deposit_value, 0.0)
        return math.exp((a.r - p.mu) * p.tau_b) * net / (1.0 + a.alpha)

    # ------------------------------------------------------------------ #
    # t2 utilities (Eq. (35))
    # ------------------------------------------------------------------ #

    def alice_t2_cont(self, p2):
        """Eq. (35, first): basic Eq. (20) plus Alice's recovered deposit.

        The deposit flows back only on the continuation branch; when
        Alice waives at ``t3`` it is forfeited to Bob.
        """
        base = _as_array(super().alice_t2_cont(p2))
        p = self.params
        a = self._alice
        _, survival, _ = self._t2_law_pieces(p2)
        deposit = (
            self.collateral
            * math.exp(-a.r * (p.eps_b + p.tau_a))
            * survival
            * math.exp(-a.r * p.tau_b)
        )
        out = base + deposit
        return out if out.ndim else float(out)

    def bob_t2_cont(self, p2):
        """Eq. (35, second): locking recovers Bob's deposit, and if Alice
        then waives Bob additionally receives *her* forfeited deposit.
        """
        base = _as_array(super().bob_t2_cont(p2))
        p = self.params
        b = self._bob
        cdf, _, _ = self._t2_law_pieces(p2)
        own_deposit = self.collateral * math.exp(-b.r * p.tau_a)
        alices_deposit = (
            self.collateral * math.exp(-b.r * (p.eps_b + p.tau_a)) * cdf
        )
        out = base + (own_deposit + alices_deposit) * math.exp(-b.r * p.tau_b)
        return out if out.ndim else float(out)

    def alice_t2_stop_value(self) -> float:
        """Alice's ``t2`` value when Bob walks away: refund plus both deposits.

        The Oracle hands her ``2Q`` at ``t3``, received at
        ``t3 + tau_a`` (Eq. (36)'s stop branch).
        """
        p = self.params
        a = self._alice
        return self.alice_t2_stop() + 2.0 * self.collateral * math.exp(
            -a.r * (p.tau_b + p.tau_a)
        )

    # ------------------------------------------------------------------ #
    # t1 utilities (Eqs. (36)-(39))
    # ------------------------------------------------------------------ #

    def alice_t1_cont(self) -> float:
        """Eq. (36): like Eq. (25) but with collateral-adjusted branch values."""
        p = self.params
        a = self._alice
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.alice_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        prob_inside = region.probability(law)
        outside = (1.0 - prob_inside) * self.alice_t2_stop_value()
        return (inside + outside) * math.exp(-a.r * p.tau_a)

    def alice_t1_stop(self) -> float:
        """Eq. (38): walk away with ``P*`` Token_a and the deposit."""
        return self.pstar + self.collateral

    def bob_t1_stop(self) -> float:
        """Eq. (39): keep Token_b (worth ``p0``) and the deposit."""
        return self.params.p0 + self.collateral

    # bob_t1_cont is inherited: Eq. (37) has the same structure as Eq. (26)
    # with the collateral-adjusted bob_t2_cont on the inside branch and the
    # unadjusted "keep Token_b" value outside (Bob's deposit is forfeited
    # there, so no extra term appears).


@dataclass(frozen=True)
class CollateralEquilibrium:
    """Solved collateralised game (Section IV analogue of SwapEquilibrium)."""

    params: SwapParameters
    pstar: float
    collateral: float
    p3_threshold: float
    bob_t2_region: IntervalUnion
    alice_t1: StageUtilities
    bob_t1: StageUtilities
    success_rate: float
    alice_engages: bool
    bob_engages: bool
    alice_strategy: AliceStrategy
    bob_strategy: BobStrategy

    @property
    def engaged(self) -> bool:
        """Both agents prefer the game to their outside option at ``t1``.

        The ``t1`` decision is simultaneous in Section IV-4; the paper's
        ``𝔓* = 𝔓^A ∪ 𝔓^B`` is read as the intersection (see DESIGN.md).
        """
        return self.alice_engages and self.bob_engages

    @property
    def unconditional_success_rate(self) -> float:
        """Success probability including the engagement decision."""
        return self.success_rate if self.engaged else 0.0


def solve_collateral_game(
    params: SwapParameters, pstar: float, collateral: float
) -> CollateralEquilibrium:
    """Solve the Section IV game at a fixed rate and deposit."""
    import time

    from repro.core.solver import observe_solver

    started = time.perf_counter()
    solver = CollateralBackwardInduction(params, pstar, collateral)
    region = solver.bob_t2_region()
    alice_t1 = StageUtilities(cont=solver.alice_t1_cont(), stop=solver.alice_t1_stop())
    bob_t1 = StageUtilities(cont=solver.bob_t1_cont(), stop=solver.bob_t1_stop())
    alice_engages = alice_t1.advantage > 0.0
    equilibrium = CollateralEquilibrium(
        params=params,
        pstar=float(pstar),
        collateral=float(collateral),
        p3_threshold=solver.p3_threshold(),
        bob_t2_region=region,
        alice_t1=alice_t1,
        bob_t1=bob_t1,
        success_rate=solver.success_rate(),
        alice_engages=alice_engages,
        bob_engages=bob_t1.advantage > 0.0,
        alice_strategy=AliceStrategy(
            initiate_at_t1=alice_engages, p3_threshold=solver.p3_threshold()
        ),
        bob_strategy=BobStrategy(t2_region=region),
    )
    observe_solver("collateral", time.perf_counter() - started)
    return equilibrium


def collateral_success_rate(
    params: SwapParameters, pstar: float, collateral: float
) -> float:
    """Eq. (40): success rate of an initiated collateralised swap."""
    from repro.core.engine import solve_grid

    return float(solve_grid(params, [pstar], collateral=collateral).success_rate[0])


def feasible_pstar_region_with_collateral(
    params: SwapParameters,
    collateral: float,
    rel_lo: float = 0.05,
    rel_hi: float = 20.0,
    n_scan: int = 96,
) -> "Tuple[IntervalUnion, IntervalUnion]":
    """Feasible ``P*`` regions ``(alice, bob)`` for the Section IV game.

    ``alice`` is where ``U^A_{t1,c}(cont) > P* + Q``; ``bob`` where
    ``U^B_{t1,c}(cont) > p0 + Q``. Combine with
    :meth:`IntervalUnion.intersect` (our reading) or
    :meth:`IntervalUnion.union` (the paper's literal ``𝔓*``). Both
    regions come out of one vectorised engine scan
    (:func:`repro.core.engine.feasible_regions_grid`).
    """
    from repro.core.engine import feasible_regions_grid

    lo = rel_lo * params.p0
    hi = rel_hi * params.p0
    return feasible_regions_grid(params, lo, hi, n_scan=n_scan, collateral=collateral)


def t1_engagement_game(
    params: SwapParameters, pstar: float, collateral: float
) -> "BimatrixGame":
    """The simultaneous ``t1`` decision as an explicit 2x2 game.

    Section IV-4 has both agents decide *simultaneously* whether to
    engage. A swap needs both: if either refuses, both keep their token
    and deposit, so the off-diagonal and (stop, stop) cells coincide.
    The game therefore always has the no-trade coordination equilibrium;
    trade is the (payoff-dominant) second equilibrium exactly when both
    continuation values beat the outside options -- the condition
    :func:`solve_collateral_game` reports as ``engaged``.
    """
    from repro.games.matrix import BimatrixGame

    solver = CollateralBackwardInduction(params, pstar, collateral)
    alice_cont = solver.alice_t1_cont()
    alice_stop = solver.alice_t1_stop()
    bob_cont = solver.bob_t1_cont()
    bob_stop = solver.bob_t1_stop()
    row = [[alice_cont, alice_stop], [alice_stop, alice_stop]]
    col = [[bob_cont, bob_stop], [bob_stop, bob_stop]]
    return BimatrixGame(
        row_payoffs=row,
        col_payoffs=col,
        row_actions=("engage", "stay_out"),
        col_actions=("engage", "stay_out"),
    )
