"""Quantifying the swap's embedded optionality.

Han et al. (cited in Section II-C) view the atomic swap as a *free
American option* held by the initiator: Alice can watch the price and
decide at ``t3`` whether to complete. The paper's own contribution is
that *Bob too* holds optionality -- he can walk away at ``t2``. This
module makes both statements quantitative by comparing the equilibrium
against *committed* variants:

* ``alice_option_value`` -- Alice's ``t1`` continuation value minus her
  value when she is committed to revealing at ``t3`` whatever the
  price (Bob best-responds to the commitment: with a committed Alice
  his lock decision changes too);
* ``bob_option_value`` -- Bob's ``t1`` value minus his value when he is
  committed to locking at ``t2`` whatever the price;
* the *counterparty cost* of each option: how much the other agent's
  value falls because the option exists.

Everything reuses the closed-form stage utilities; commitment variants
are tiny solver subclasses that pin one decision to *cont*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.stochastic.rootfind import IntervalUnion

__all__ = [
    "CommittedAliceSolver",
    "CommittedBobSolver",
    "OptionalityReport",
    "optionality_report",
]


class CommittedAliceSolver(BackwardInduction):
    """Alice is bound to reveal at ``t3`` regardless of the price.

    Equivalent to a zero reveal threshold: the swap completes whenever
    Bob locks. Bob best-responds to the commitment -- his ``t2`` region
    is recomputed under ``P̲_{t3} = 0``.
    """

    def p3_threshold(self) -> float:
        return 0.0


class CommittedBobSolver(BackwardInduction):
    """Bob is bound to lock at ``t2`` regardless of the price.

    His continuation region is all of ``(0, inf)``; Alice keeps her
    ``t3`` optionality.
    """

    def bob_t2_region(self) -> IntervalUnion:
        scale = max(self.pstar, self.params.p0, self.p3_threshold())
        return IntervalUnion.single(1e-9 * scale, 1e6 * scale)


@dataclass(frozen=True)
class OptionalityReport:
    """Value decomposition of both agents' options at one ``(params, P*)``.

    All quantities are ``t1`` expected utilities in Token_a.
    """

    pstar: float
    alice_equilibrium: float
    bob_equilibrium: float
    alice_committed_alice: float  # Alice's value when she is committed
    bob_committed_alice: float    # Bob's value when Alice is committed
    alice_committed_bob: float    # Alice's value when Bob is committed
    bob_committed_bob: float      # Bob's value when Bob is committed
    sr_equilibrium: float
    sr_committed_alice: float
    sr_committed_bob: float

    @property
    def alice_option_value(self) -> float:
        """What Alice's right to waive at ``t3`` is worth to her."""
        return self.alice_equilibrium - self.alice_committed_alice

    @property
    def bob_option_value(self) -> float:
        """What Bob's right to walk at ``t2`` is worth to him."""
        return self.bob_equilibrium - self.bob_committed_bob

    @property
    def alice_option_cost_to_bob(self) -> float:
        """How much Bob's value rises if Alice gives up her option."""
        return self.bob_committed_alice - self.bob_equilibrium

    @property
    def bob_option_cost_to_alice(self) -> float:
        """How much Alice's value rises if Bob gives up his option."""
        return self.alice_committed_bob - self.alice_equilibrium

    def describe(self) -> str:
        """Multi-line report."""
        return "\n".join(
            [
                f"optionality at P* = {self.pstar}",
                f"  Alice option value          : {self.alice_option_value:+.4f}"
                f" (costs Bob {self.alice_option_cost_to_bob:+.4f})",
                f"  Bob   option value          : {self.bob_option_value:+.4f}"
                f" (costs Alice {self.bob_option_cost_to_alice:+.4f})",
                f"  SR: equilibrium {self.sr_equilibrium:.4f}"
                f" | Alice committed {self.sr_committed_alice:.4f}"
                f" | Bob committed {self.sr_committed_bob:.4f}",
            ]
        )


def optionality_report(params: SwapParameters, pstar: float) -> OptionalityReport:
    """Compute the full option-value decomposition."""
    equilibrium = BackwardInduction(params, pstar)
    committed_alice = CommittedAliceSolver(params, pstar)
    committed_bob = CommittedBobSolver(params, pstar)
    return OptionalityReport(
        pstar=float(pstar),
        alice_equilibrium=equilibrium.alice_t1_cont(),
        bob_equilibrium=equilibrium.bob_t1_cont(),
        alice_committed_alice=committed_alice.alice_t1_cont(),
        bob_committed_alice=committed_alice.bob_t1_cont(),
        alice_committed_bob=committed_bob.alice_t1_cont(),
        bob_committed_bob=committed_bob.bob_t1_cont(),
        sr_equilibrium=equilibrium.success_rate(),
        sr_committed_alice=committed_alice.success_rate(),
        sr_committed_bob=committed_bob.success_rate(),
    )
