"""Model parameters (paper Table III) and their validation.

:class:`AgentParameters` holds one agent's preference pair
``(alpha, r)`` -- the success premium and the discount rate of the
utility function (paper Eq. (2)). :class:`SwapParameters` bundles both
agents, the two chains' timing constants, and the price process, and is
the single configuration object every solver, simulator and benchmark
consumes.

All time quantities are in hours, matching the paper's unit choices.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict

from repro.stochastic.gbm import GeometricBrownianMotion
from repro.stochastic.law import LOGNORMAL, LawSpec
from repro.stochastic.paths import DecisionTimeGrid

__all__ = ["AgentParameters", "SwapParameters"]


@dataclass(frozen=True)
class AgentParameters:
    """One agent's preferences.

    Parameters
    ----------
    alpha:
        Success premium: extra fraction of utility earned when the swap
        succeeds. ``alpha >= 0``; higher values make the agent behave
        more "honestly" (paper Section III-F1).
    r:
        Discount rate per hour, strictly positive (paper assumes
        ``r > 0``); higher values mean more impatience.
    """

    alpha: float
    r: float

    def __post_init__(self) -> None:
        if self.alpha < 0.0 or not math.isfinite(self.alpha):
            raise ValueError(f"alpha must be finite and >= 0, got {self.alpha}")
        if not self.r > 0.0 or not math.isfinite(self.r):
            raise ValueError(f"r must be finite and > 0, got {self.r}")

    def discount(self, horizon: float) -> float:
        """Discount factor ``e^{-r * horizon}`` for a non-negative horizon."""
        if horizon < 0.0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        return math.exp(-self.r * horizon)

    def to_dict(self) -> Dict[str, float]:
        """Exact, JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {"alpha": self.alpha, "r": self.r}

    @staticmethod
    def from_dict(data: Dict[str, float]) -> "AgentParameters":
        """Rebuild from a :meth:`to_dict` payload."""
        return AgentParameters(alpha=float(data["alpha"]), r=float(data["r"]))


@dataclass(frozen=True)
class SwapParameters:
    """Full parameterisation of the swap game (paper Table III).

    Attributes
    ----------
    alice, bob:
        The agents' ``(alpha, r)`` preferences.
    tau_a, tau_b:
        Transaction confirmation times on Chain_a / Chain_b (hours).
    eps_b:
        Mempool visibility delay on Chain_b; must satisfy
        ``0 < eps_b < tau_b`` (paper Eq. (3)).
    p0:
        Token_b price at ``t0 = t1`` in units of Token_a.
    mu, sigma:
        GBM drift (per hour) and volatility (per sqrt-hour) of the
        Token_b price (paper Eq. (1)).
    law:
        The price law (default: the paper's lognormal/GBM Assumption 4).
        Non-default laws (``merton``, ``regime``) reuse ``mu`` as the
        total expected growth rate; the regime law carries its own
        volatilities and ignores ``sigma``.
    """

    alice: AgentParameters
    bob: AgentParameters
    tau_a: float
    tau_b: float
    eps_b: float
    p0: float
    mu: float
    sigma: float
    law: LawSpec = LOGNORMAL

    def __post_init__(self) -> None:
        if not self.tau_a > 0.0:
            raise ValueError(f"tau_a must be positive, got {self.tau_a}")
        if not self.tau_b > 0.0:
            raise ValueError(f"tau_b must be positive, got {self.tau_b}")
        if not 0.0 < self.eps_b < self.tau_b:
            raise ValueError(
                f"need 0 < eps_b < tau_b (paper Eq. (3)); got "
                f"eps_b={self.eps_b}, tau_b={self.tau_b}"
            )
        if not self.p0 > 0.0:
            raise ValueError(f"p0 must be positive, got {self.p0}")
        if not self.sigma > 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if not math.isfinite(self.mu):
            raise ValueError(f"mu must be finite, got {self.mu}")
        if not isinstance(self.law, LawSpec):
            raise ValueError(
                f"law must be a LawSpec, got {type(self.law).__name__}"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def default() -> "SwapParameters":
        """The paper's Table III defaults."""
        return SwapParameters(
            alice=AgentParameters(alpha=0.3, r=0.01),
            bob=AgentParameters(alpha=0.3, r=0.01),
            tau_a=3.0,
            tau_b=4.0,
            eps_b=1.0,
            p0=2.0,
            mu=0.002,
            sigma=0.1,
        )

    def replace(self, **overrides) -> "SwapParameters":
        """A copy with top-level fields replaced.

        Agent fields can be overridden with the shorthand keys
        ``alpha_a``, ``alpha_b``, ``r_a``, ``r_b``. ``law`` accepts a
        :class:`LawSpec`, a spec dict, or the CLI shorthand string.
        """
        agent_keys = {"alpha_a", "alpha_b", "r_a", "r_b"}
        plain = {k: v for k, v in overrides.items() if k not in agent_keys}
        if "law" in plain:
            plain["law"] = _coerce_law(plain["law"])
        params = dataclasses.replace(self, **plain)
        alice, bob = params.alice, params.bob
        if "alpha_a" in overrides:
            alice = dataclasses.replace(alice, alpha=overrides["alpha_a"])
        if "r_a" in overrides:
            alice = dataclasses.replace(alice, r=overrides["r_a"])
        if "alpha_b" in overrides:
            bob = dataclasses.replace(bob, alpha=overrides["alpha_b"])
        if "r_b" in overrides:
            bob = dataclasses.replace(bob, r=overrides["r_b"])
        return dataclasses.replace(params, alice=alice, bob=bob)

    # ------------------------------------------------------------------ #
    # derived objects
    # ------------------------------------------------------------------ #

    @property
    def process(self) -> GeometricBrownianMotion:
        """The Token_b price process."""
        return GeometricBrownianMotion(mu=self.mu, sigma=self.sigma)

    @property
    def grid(self) -> DecisionTimeGrid:
        """The idealized event-time grid (paper Eq. (13))."""
        return DecisionTimeGrid(tau_a=self.tau_a, tau_b=self.tau_b, eps_b=self.eps_b)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view (used by reports and sweeps)."""
        return {
            "alpha_a": self.alice.alpha,
            "alpha_b": self.bob.alpha,
            "r_a": self.alice.r,
            "r_b": self.bob.r,
            "tau_a": self.tau_a,
            "tau_b": self.tau_b,
            "eps_b": self.eps_b,
            "p0": self.p0,
            "mu": self.mu,
            "sigma": self.sigma,
        }

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Exact, JSON-safe representation.

        Floats are stored as-is; Python's ``json`` emits shortest
        round-trip reprs, so ``from_dict(json.loads(json.dumps(d)))``
        reproduces every field bit-for-bit. This is the configuration
        format used by the service layer's request keys and by exported
        reports.

        The ``law`` key is emitted only for non-default laws, so every
        historical lognormal payload -- and therefore every historical
        request key and cached wire response -- is unchanged.
        """
        out: Dict[str, object] = {
            "alice": self.alice.to_dict(),
            "bob": self.bob.to_dict(),
            "tau_a": self.tau_a,
            "tau_b": self.tau_b,
            "eps_b": self.eps_b,
            "p0": self.p0,
            "mu": self.mu,
            "sigma": self.sigma,
        }
        if not self.law.is_lognormal:
            out["law"] = self.law.to_dict()
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SwapParameters":
        """Rebuild from a :meth:`to_dict` payload (or a flat override map).

        Two shapes are accepted:

        * the nested :meth:`to_dict` form with ``alice``/``bob``
          sub-dicts (exact round-trip);
        * a *flat* partial map over the paper's Table III defaults using
          the :meth:`replace` shorthand keys (``alpha_a``, ``r_b``,
          ``sigma``, ...) -- the form batch-request files use.
        """
        if "alice" in data or "bob" in data:
            base = SwapParameters.default()
            alice = (
                AgentParameters.from_dict(data["alice"])  # type: ignore[arg-type]
                if "alice" in data
                else base.alice
            )
            bob = (
                AgentParameters.from_dict(data["bob"])  # type: ignore[arg-type]
                if "bob" in data
                else base.bob
            )
            return SwapParameters(
                alice=alice,
                bob=bob,
                tau_a=float(data.get("tau_a", base.tau_a)),
                tau_b=float(data.get("tau_b", base.tau_b)),
                eps_b=float(data.get("eps_b", base.eps_b)),
                p0=float(data.get("p0", base.p0)),
                mu=float(data.get("mu", base.mu)),
                sigma=float(data.get("sigma", base.sigma)),
                law=_coerce_law(data.get("law", LOGNORMAL)),
            )
        allowed = set(SwapParameters.default().as_dict()) | {"law"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(
                f"unknown parameter keys {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        return SwapParameters.default().replace(
            **{
                k: (_coerce_law(v) if k == "law" else float(v))  # type: ignore[arg-type]
                for k, v in data.items()
            }
        )


def _coerce_law(value) -> LawSpec:
    """Accept a LawSpec, a spec dict, or the CLI shorthand string."""
    if isinstance(value, LawSpec):
        return value
    if isinstance(value, str):
        from repro.stochastic.law import parse_law

        return parse_law(value)
    if isinstance(value, dict):
        return LawSpec.from_dict(value)
    raise ValueError(
        f"law must be a LawSpec, dict, or shorthand string, got {type(value).__name__}"
    )
