"""Facade: solve a swap game in one call.

:func:`solve_swap_game` runs the full backward induction for a
parameter set and exchange rate and returns a
:class:`~repro.core.equilibrium.SwapEquilibrium`. This is the main
entry point of the library's analytical side; the examples and the
benchmark harness go through it.
"""

from __future__ import annotations

import time

from repro.core.backward_induction import BackwardInduction
from repro.core.equilibrium import StageUtilities, SwapEquilibrium
from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.obs.metrics import get_registry

__all__ = ["solve_swap_game"]


def observe_solver(solver: str, seconds: float) -> None:
    """Record one full solver call into the active metrics registry.

    Shared by the swap, collateral, and premium solvers so all three
    land in the same ``repro_solver_*`` families, split by label.
    """
    registry = get_registry()
    registry.counter(
        "repro_solver_calls_total",
        help="Full game solves, by solver kind.",
        labelnames=("solver",),
    ).inc(solver=solver)
    registry.histogram(
        "repro_solver_seconds",
        help="Wall-clock duration of one full game solve.",
        labelnames=("solver",),
    ).observe(seconds, solver=solver)


def solve_swap_game(params: SwapParameters, pstar: float) -> SwapEquilibrium:
    """Solve the basic HTLC swap game (paper Section III).

    Parameters
    ----------
    params:
        Model parameters (defaults: ``SwapParameters.default()``,
        the paper's Table III).
    pstar:
        Agreed exchange rate ``P*``.

    Returns
    -------
    SwapEquilibrium
        Thresholds, regions, ``t1`` utilities, success rate and
        executable strategies.
    """
    started = time.perf_counter()
    solver = BackwardInduction(params, pstar)
    region = solver.bob_t2_region()
    alice_t1 = StageUtilities(cont=solver.alice_t1_cont(), stop=solver.alice_t1_stop())
    bob_t1 = StageUtilities(cont=solver.bob_t1_cont(), stop=solver.bob_t1_stop())
    initiated = alice_t1.advantage > 0.0
    alice_strategy = AliceStrategy(
        initiate_at_t1=initiated,
        p3_threshold=solver.p3_threshold(),
    )
    bob_strategy = BobStrategy(t2_region=region)
    equilibrium = SwapEquilibrium(
        params=params,
        pstar=float(pstar),
        p3_threshold=solver.p3_threshold(),
        bob_t2_region=region,
        alice_t1=alice_t1,
        bob_t1=bob_t1,
        success_rate=solver.success_rate(),
        initiated=initiated,
        alice_strategy=alice_strategy,
        bob_strategy=bob_strategy,
    )
    observe_solver("swap", time.perf_counter() - started)
    return equilibrium
