"""Incomplete information: uncertainty in the counterparty's success premium.

The paper's contributions section announces a study of "the game with
uncertainty in counterparties' success premium" -- relaxing
Assumption 7 (each agent knows the other's ``(r, alpha)``). This module
implements that Bayesian variant:

* each agent holds a discrete *belief* (a :class:`TypeDistribution`)
  over the counterparty's ``alpha``;
* **Bob at t2** anticipates Alice's ``t3`` reveal threshold, which
  depends on ``alpha_A``; under uncertainty his continuation utility is
  the belief-weighted mixture of the per-type Eq. (21) values, and his
  continuation region is where that mixture beats ``P_{t2}``;
* **Alice at t1** anticipates Bob's region, which depends on
  ``alpha_B`` (and on Bob's belief about *her*); her initiation utility
  is the belief-weighted mixture of the per-Bob-type Eq. (25) values;
* the **realised success rate** pairs the *true* types' behaviour:
  true-type Bob's (belief-driven) region with true-type Alice's
  threshold;
* the **ex-ante success rate** averages the realised rate over type
  profiles drawn from the beliefs.

Degenerate (point-mass) beliefs at the true types reproduce the
complete-information game exactly (property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.backward_induction import BackwardInduction, _as_array
from repro.core.parameters import SwapParameters
from repro.stochastic.quadrature import DEFAULT_QUAD_ORDER, expectation_on_interval
from repro.stochastic.rootfind import IntervalUnion, bracketed_root

__all__ = ["TypeDistribution", "BayesianSwapGame", "information_value"]


@dataclass(frozen=True)
class TypeDistribution:
    """A discrete belief over a scalar type (here: a success premium)."""

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.probabilities):
            raise ValueError("values and probabilities must have equal length")
        if not self.values:
            raise ValueError("a type distribution needs at least one type")
        if any(p < 0.0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities sum to {total}, not 1")

    @staticmethod
    def point(value: float) -> "TypeDistribution":
        """A degenerate belief (complete information)."""
        return TypeDistribution(values=(float(value),), probabilities=(1.0,))

    @staticmethod
    def uniform(values: Sequence[float]) -> "TypeDistribution":
        """Equal weight on each candidate type."""
        n = len(values)
        if n == 0:
            raise ValueError("need at least one type")
        return TypeDistribution(
            values=tuple(float(v) for v in values),
            probabilities=tuple(1.0 / n for _ in values),
        )

    @property
    def mean(self) -> float:
        """First moment of the belief."""
        return sum(v * p for v, p in zip(self.values, self.probabilities))

    def items(self) -> List[Tuple[float, float]]:
        """``(value, probability)`` pairs."""
        return list(zip(self.values, self.probabilities))


class BayesianSwapGame:
    """The swap game with two-sided uncertainty over success premiums.

    Parameters
    ----------
    params:
        The *true* parameter set (``params.alice.alpha`` and
        ``params.bob.alpha`` are the realised types). Discount rates
        and timing constants are common knowledge, as in the paper.
    pstar:
        Agreed exchange rate.
    belief_about_alice:
        Bob's belief over ``alpha_A``.
    belief_about_bob:
        Alice's belief over ``alpha_B``.
    """

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        belief_about_alice: TypeDistribution,
        belief_about_bob: TypeDistribution,
        quad_order: int = DEFAULT_QUAD_ORDER,
        scan_points: int = 512,
    ) -> None:
        if not pstar > 0.0:
            raise ValueError(f"pstar must be positive, got {pstar}")
        self.params = params
        self.pstar = float(pstar)
        self.belief_about_alice = belief_about_alice
        self.belief_about_bob = belief_about_bob
        self.quad_order = quad_order
        self.scan_points = scan_points
        # per-Alice-type solvers with Bob's TRUE premium (used by Bob's
        # own stage payoffs, which depend on alpha_B, and the per-type
        # Alice thresholds, which depend on alpha_A)
        self._alice_type_solvers: Dict[float, BackwardInduction] = {
            a: BackwardInduction(
                params.replace(alpha_a=a), pstar, quad_order, scan_points
            )
            for a in belief_about_alice.values
        }
        self._true_solver = BackwardInduction(params, pstar, quad_order, scan_points)
        self._bob_regions: Dict[float, IntervalUnion] = {}

    # ------------------------------------------------------------------ #
    # Bob at t2 under uncertainty about alpha_A
    # ------------------------------------------------------------------ #

    def bob_t2_cont(self, p2, bob_alpha: float = None):
        """Belief-weighted Eq. (21) for a Bob of premium ``bob_alpha``.

        Alice's threshold enters Eq. (21) through the branch split; the
        mixture over her types is exact by linearity of expectation.
        Defaults to the true ``alpha_B``.
        """
        if bob_alpha is None:
            bob_alpha = self.params.bob.alpha
        total = np.zeros_like(_as_array(p2), dtype=float)
        for alpha_a, weight in self.belief_about_alice.items():
            solver = BackwardInduction(
                self.params.replace(alpha_a=alpha_a, alpha_b=bob_alpha),
                self.pstar,
                self.quad_order,
                self.scan_points,
            )
            total = total + weight * _as_array(solver.bob_t2_cont(p2))
        return total if total.ndim else float(total)

    def bob_t2_region(self, bob_alpha: float = None) -> IntervalUnion:
        """Continuation region of a Bob type under his belief about Alice."""
        if bob_alpha is None:
            bob_alpha = self.params.bob.alpha
        if bob_alpha in self._bob_regions:
            return self._bob_regions[bob_alpha]

        def advantage(q: float) -> float:
            return float(self.bob_t2_cont(q, bob_alpha)) - q

        scale = max(self.pstar, self.params.p0)
        lo, hi = 1e-6 * scale, 1e4 * scale
        grid = np.exp(np.linspace(math.log(lo), math.log(hi), self.scan_points))
        values = np.asarray(self.bob_t2_cont(grid, bob_alpha)) - grid
        roots: List[float] = []
        for i in range(len(grid) - 1):
            va, vb = values[i], values[i + 1]
            if va == 0.0:
                continue
            if vb == 0.0 or va * vb < 0.0:
                roots.append(bracketed_root(advantage, float(grid[i]), float(grid[i + 1])))
        edges = [lo] + sorted(roots) + [hi]
        keep = []
        for a, b in zip(edges[:-1], edges[1:]):
            if b <= a:
                continue
            if advantage(math.sqrt(a * b)) > 0.0:
                keep.append((a, b))
        region = IntervalUnion.from_intervals(keep)
        self._bob_regions[bob_alpha] = region
        return region

    # ------------------------------------------------------------------ #
    # Alice at t1 under uncertainty about alpha_B
    # ------------------------------------------------------------------ #

    def alice_t1_cont(self) -> float:
        """Belief-weighted Eq. (25) over Bob's types.

        Alice's own branch values use her *true* premium; only the
        continuation region she anticipates varies with Bob's type.
        """
        p = self.params
        law = p.process.law(p.p0, p.tau_a)
        total = 0.0
        for alpha_b, weight in self.belief_about_bob.items():
            region = self.bob_t2_region(alpha_b)
            inside = sum(
                expectation_on_interval(
                    law, self._true_solver.alice_t2_cont, lo, hi, self.quad_order
                )
                for lo, hi in region.intervals
            )
            outside = (1.0 - region.probability(law)) * self._true_solver.alice_t2_stop()
            total += weight * (inside + outside)
        return total * math.exp(-p.alice.r * p.tau_a)

    def alice_t1_stop(self) -> float:
        """Eq. (27)."""
        return self.pstar

    def alice_initiates(self) -> bool:
        """Alice's t1 decision under her belief."""
        return self.alice_t1_cont() > self.alice_t1_stop()

    # ------------------------------------------------------------------ #
    # success rates
    # ------------------------------------------------------------------ #

    def realised_success_rate(self) -> float:
        """SR with the *true* types acting on their beliefs.

        Bob's region is his belief-driven one; Alice's reveal threshold
        is her true Eq. (18) threshold.
        """
        p = self.params
        law = p.process.law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        if region.is_empty:
            return 0.0
        threshold = self._true_solver.p3_threshold()
        s = p.sigma * math.sqrt(p.tau_b)
        drift = (p.mu - 0.5 * p.sigma**2) * p.tau_b

        from repro.stochastic.lognormal import norm_cdf

        def survive(x: np.ndarray) -> np.ndarray:
            z = (math.log(threshold) - np.log(x) - drift) / s
            return norm_cdf(-z)

        return sum(
            expectation_on_interval(law, survive, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )

    def ex_ante_success_rate(self) -> float:
        """Expected SR before types realise, averaging over both beliefs."""
        total = 0.0
        for alpha_a, wa in self.belief_about_alice.items():
            solver_a = self._alice_type_solvers[alpha_a]
            threshold = solver_a.p3_threshold()
            for alpha_b, wb in self.belief_about_bob.items():
                region = self.bob_t2_region(alpha_b)
                total += wa * wb * self._conditional_sr(region, threshold)
        return total

    def _conditional_sr(self, region: IntervalUnion, threshold: float) -> float:
        p = self.params
        law = p.process.law(p.p0, p.tau_a)
        if region.is_empty:
            return 0.0
        s = p.sigma * math.sqrt(p.tau_b)
        drift = (p.mu - 0.5 * p.sigma**2) * p.tau_b

        from repro.stochastic.lognormal import norm_cdf

        def survive(x: np.ndarray) -> np.ndarray:
            z = (math.log(threshold) - np.log(x) - drift) / s
            return norm_cdf(-z)

        return sum(
            expectation_on_interval(law, survive, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )


def information_value(
    params: SwapParameters,
    pstar: float,
    belief_about_alice: TypeDistribution,
    belief_about_bob: TypeDistribution,
) -> Tuple[float, float]:
    """``(complete_info_sr, incomplete_info_sr)`` at the true types.

    The gap quantifies what Assumption 7 (mutual knowledge of
    preferences) is worth to the protocol's reliability.
    """
    complete = BackwardInduction(params, pstar).success_rate()
    game = BayesianSwapGame(params, pstar, belief_about_alice, belief_about_bob)
    return complete, game.realised_success_rate()
