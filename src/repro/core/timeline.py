"""The swap timeline (paper Section III-B and Figure 2).

Two views are provided:

* :class:`SwapTimeline` -- an *arbitrary* assignment of the event times
  ``t0..t8`` plus the expiries ``t_a``, ``t_b``, validated against the
  full constraint chain of the paper's Eq. (12) (Figure 2a). Useful for
  reasoning about non-idealized schedules and for the protocol engine's
  timeout bookkeeping.
* :func:`idealized_timeline` -- the zero-waiting-time schedule of
  Eq. (13) (Figure 2b), produced from a
  :class:`~repro.core.parameters.SwapParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.parameters import SwapParameters
from repro.stochastic.paths import DecisionTimeGrid

__all__ = ["SwapTimeline", "idealized_timeline", "TimelineViolation"]


class TimelineViolation(ValueError):
    """A proposed schedule violates the paper's Eq. (12) constraints."""


@dataclass(frozen=True)
class SwapTimeline:
    """A concrete schedule for one swap attempt.

    All fields are absolute times in hours. ``t0`` is the agreement
    time; ``t1``..``t4`` the action times; ``t5``/``t6`` the success
    receipt times; ``t7``/``t8`` the refund receipt times; ``t_a`` and
    ``t_b`` the HTLC expiries on Chain_a and Chain_b.
    """

    tau_a: float
    tau_b: float
    eps_b: float
    t0: float
    t1: float
    t2: float
    t3: float
    t4: float
    t_a: float
    t_b: float

    # ------------------------------------------------------------------ #
    # derived receipt times (paper Eqs. (8)-(11))
    # ------------------------------------------------------------------ #

    @property
    def t5(self) -> float:
        """Alice receives Token_b on success."""
        return self.t3 + self.tau_b

    @property
    def t6(self) -> float:
        """Bob receives Token_a on success."""
        return self.t4 + self.tau_a

    @property
    def t7(self) -> float:
        """Bob's refund lands on failure."""
        return self.t_b + self.tau_b

    @property
    def t8(self) -> float:
        """Alice's refund lands on failure."""
        return self.t_a + self.tau_a

    # ------------------------------------------------------------------ #
    # validation: Eq. (12)
    # ------------------------------------------------------------------ #

    def constraint_report(self) -> List[Tuple[str, bool]]:
        """Each constraint of Eqs. (3)-(11) with its truth value."""
        return [
            ("eps_b < tau_b            (Eq. 3)", self.eps_b < self.tau_b),
            ("t1 >= t0                 (Eq. 4)", self.t1 >= self.t0),
            ("t2 >= t1 + tau_a         (Eq. 5)", self.t2 >= self.t1 + self.tau_a),
            ("t3 >= t2 + tau_b         (Eq. 6)", self.t3 >= self.t2 + self.tau_b),
            ("t4 >= t3 + eps_b         (Eq. 7)", self.t4 >= self.t3 + self.eps_b),
            ("t5 = t3 + tau_b <= t_b   (Eq. 8)", self.t5 <= self.t_b),
            ("t6 = t4 + tau_a <= t_a   (Eq. 9)", self.t6 <= self.t_a),
            ("t7 = t_b + tau_b         (Eq. 10)", True),
            ("t8 = t_a + tau_a         (Eq. 11)", True),
        ]

    def validate(self) -> None:
        """Raise :class:`TimelineViolation` if any Eq. (12) constraint fails."""
        failures = [name for name, ok in self.constraint_report() if not ok]
        if failures:
            raise TimelineViolation(
                "timeline violates paper Eq. (12): " + "; ".join(failures)
            )

    @property
    def is_valid(self) -> bool:
        """Whether all Eq. (12) constraints hold."""
        return all(ok for _, ok in self.constraint_report())

    @property
    def is_idealized(self) -> bool:
        """Whether the schedule matches the zero-waiting-time Eq. (13)."""
        tol = 1e-12
        return (
            abs(self.t1 - self.t0) <= tol
            and abs(self.t2 - (self.t1 + self.tau_a)) <= tol
            and abs(self.t3 - (self.t2 + self.tau_b)) <= tol
            and abs(self.t4 - (self.t3 + self.eps_b)) <= tol
            and abs(self.t_b - (self.t3 + self.tau_b)) <= tol
            and abs(self.t_a - (self.t4 + self.tau_a)) <= tol
        )

    def total_lock_time_alice(self) -> float:
        """Worst-case time Alice's Token_a stays locked (until ``t8``)."""
        return self.t8 - self.t1

    def total_lock_time_bob(self) -> float:
        """Worst-case time Bob's Token_b stays locked (until ``t7``)."""
        return self.t7 - self.t2


def idealized_timeline(params: SwapParameters, start: float = 0.0) -> SwapTimeline:
    """Construct the Eq. (13) zero-waiting-time schedule.

    ``start`` shifts the whole schedule; the structure is unchanged.
    """
    grid: DecisionTimeGrid = params.grid
    timeline = SwapTimeline(
        tau_a=params.tau_a,
        tau_b=params.tau_b,
        eps_b=params.eps_b,
        t0=start,
        t1=start + grid.t1,
        t2=start + grid.t2,
        t3=start + grid.t3,
        t4=start + grid.t4,
        t_a=start + grid.t_a,
        t_b=start + grid.t_b,
    )
    timeline.validate()
    return timeline
