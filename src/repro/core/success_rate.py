"""Swap success rate (paper Eq. (31) and Figure 6).

``SR(P*)`` is the probability that, *after Alice initiates*, the ``t2``
price lands in Bob's continuation region and the ``t3`` price then
exceeds Alice's reveal threshold. The paper shows the curve is concave
in ``P*`` with an interior maximum; :func:`max_success_rate` locates it.

Grid evaluations (:func:`success_rate_curve` and the coarse stage of
:func:`max_success_rate`) route through the vectorised engine
(:func:`repro.core.engine.solve_grid`), which computes every ``P*`` in
one batch of array kernels; the scalar :func:`success_rate` stays on
the per-point :class:`BackwardInduction` as the reference view.

Feasibility convention: a grid point is *feasible* iff it lies in the
**open interior** ``P̲* < P* < P̄*`` of Alice's Eq. (29) range. The
endpoints are her ``t1`` indifference roots, where the tie-breaking
convention (:data:`repro.core.equilibrium.INDIFFERENT_ACTION`) has her
stop -- the same strict-inequality reading as Bob's ``t2``-region
membership in :meth:`repro.core.strategy.BobStrategy.decide_t2`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backward_induction import BackwardInduction
from repro.core.engine import solve_grid
from repro.core.feasible_range import feasible_pstar_range
from repro.core.parameters import SwapParameters

__all__ = ["success_rate", "success_rate_curve", "max_success_rate", "SuccessRatePoint"]


def success_rate(params: SwapParameters, pstar: float) -> float:
    """Eq. (31): success probability of an initiated swap at rate ``pstar``."""
    return BackwardInduction(params, pstar).success_rate()


@dataclass(frozen=True)
class SuccessRatePoint:
    """One point of an ``SR(P*)`` curve."""

    pstar: float
    rate: float
    feasible: bool


def success_rate_curve(
    params: SwapParameters,
    pstars: Sequence[float],
    restrict_to_feasible: bool = False,
) -> List[SuccessRatePoint]:
    """Evaluate ``SR`` on a grid of exchange rates (Figure 6 series).

    The whole grid is solved in one :func:`~repro.core.engine.solve_grid`
    call. Each point is tagged with whether it lies strictly inside
    Alice's feasible ``P*`` range (open-interior convention, see the
    module docstring: an endpoint is an indifference root, and an
    indifferent Alice stops); with ``restrict_to_feasible`` infeasible
    points get ``rate = nan`` (the paper only plots feasible segments).
    """
    bounds = feasible_pstar_range(params)
    grid = [float(k) for k in pstars]
    if not grid:
        return []
    rates = solve_grid(params, grid).success_rate
    out: List[SuccessRatePoint] = []
    for k, rate in zip(grid, rates):
        feasible = bounds is not None and bounds[0] < k < bounds[1]
        if restrict_to_feasible and not feasible:
            out.append(SuccessRatePoint(pstar=k, rate=float("nan"), feasible=False))
            continue
        out.append(SuccessRatePoint(pstar=k, rate=float(rate), feasible=feasible))
    return out


def max_success_rate(
    params: SwapParameters,
    n_grid: int = 48,
    refine_iters: int = 40,
    n_scan: int = 96,
) -> Optional[Tuple[float, float]]:
    """The SR-maximising exchange rate and its success rate.

    Coarse grid over the feasible range (one engine pass) followed by
    golden-section refinement (the curve is concave per Section III-F,
    so a unimodal search is justified); the refinement's one-point
    evaluations stay on the scalar solver. Returns ``None`` if no
    feasible rate exists.
    """
    bounds = feasible_pstar_range(params, n_scan=n_scan)
    if bounds is None:
        return None
    lo, hi = bounds
    grid = np.linspace(lo * 1.0001, hi * 0.9999, n_grid)
    rates = solve_grid(params, grid).success_rate
    i_best = int(np.argmax(rates))
    a = float(grid[max(i_best - 1, 0)])
    b = float(grid[min(i_best + 1, n_grid - 1)])

    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc = success_rate(params, c)
    fd = success_rate(params, d)
    for _ in range(refine_iters):
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = success_rate(params, c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = success_rate(params, d)
        if b - a < 1e-10:
            break
    k_opt = 0.5 * (a + b)
    return k_opt, success_rate(params, k_opt)
