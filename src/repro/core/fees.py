"""Transaction fees (paper future work; relaxes Assumption 2).

The basic model assumes "transaction fees are negligible". This
extension prices them in:

* every Chain_a transaction costs ``fee_a`` Token_a, every Chain_b
  transaction costs ``fee_b`` Token_b;
* claim/refund fees are *deducted from the transferred amount* (the
  transaction spends part of its output on fees), so Alice's claim
  yields ``1 - fee_b`` Token_b, her refund nets ``P* - fee_a``, Bob's
  redemption nets ``P* - fee_a``, his refund ``1 - fee_b`` Token_b;
* lock deployments are paid out of pocket at submission time
  (Alice's ``fee_a`` at ``t1``, Bob's ``fee_b`` -- worth
  ``fee_b * P_{t2}`` -- at ``t2``);
* walking away costs nothing (no transaction is sent).

All stage payoffs stay linear in the price, so the closed forms carry
over with shifted coefficients. ``fee_a = fee_b = 0`` reduces exactly
to the basic model.

Economics: fees act as a *commitment tax* -- they lower every
continuation branch but leave the stop branches mostly untouched, so
(unlike collateral, which penalises stopping) fees strictly *reduce*
the success rate and shrink the feasible window. The benchmark suite
quantifies this contrast.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backward_induction import BackwardInduction, _as_array
from repro.core.parameters import SwapParameters
from repro.stochastic.quadrature import expectation_on_interval

__all__ = ["FeeBackwardInduction"]


class FeeBackwardInduction(BackwardInduction):
    """Backward induction with per-transaction fees ``(fee_a, fee_b)``."""

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        fee_a: float = 0.0,
        fee_b: float = 0.0,
        **kwargs,
    ) -> None:
        if fee_a < 0.0 or fee_b < 0.0:
            raise ValueError("fees must be non-negative")
        if fee_a >= pstar:
            raise ValueError(
                f"fee_a={fee_a} must be below the swap notional P*={pstar}"
            )
        if fee_b >= 1.0:
            raise ValueError(f"fee_b={fee_b} must be below the 1 Token_b notional")
        super().__init__(params, pstar, **kwargs)
        self.fee_a = float(fee_a)
        self.fee_b = float(fee_b)

    # ------------------------------------------------------------------ #
    # t3 stage (fee-adjusted Eqs. (14)-(18))
    # ------------------------------------------------------------------ #

    def alice_t3_cont(self, p3):
        """Claiming yields ``1 - fee_b`` Token_b at ``t5``."""
        out = _as_array(super().alice_t3_cont(p3)) * (1.0 - self.fee_b)
        return out if out.ndim else float(out)

    def alice_t3_stop(self) -> float:
        """The refund nets ``P* - fee_a`` at ``t8``."""
        p = self.params
        return (self.pstar - self.fee_a) * math.exp(
            -p.alice.r * (p.eps_b + 2.0 * p.tau_a)
        )

    def bob_t3_cont(self) -> float:
        """Redeeming nets ``P* - fee_a`` Token_a at ``t6``."""
        p = self.params
        return (
            (1.0 + p.bob.alpha)
            * (self.pstar - self.fee_a)
            * math.exp(-p.bob.r * (p.eps_b + p.tau_a))
        )

    def bob_t3_stop(self, p3):
        """The refund nets ``1 - fee_b`` Token_b at ``t7``."""
        out = _as_array(super().bob_t3_stop(p3)) * (1.0 - self.fee_b)
        return out if out.ndim else float(out)

    def p3_threshold(self) -> float:
        """Fee-adjusted cut-off price (cf. Eq. (18))."""
        slope = float(self.alice_t3_cont(1.0))
        return self.alice_t3_stop() / slope

    # ------------------------------------------------------------------ #
    # t2 stage
    # ------------------------------------------------------------------ #

    def alice_t2_cont(self, p2):
        """Eq. (20) from the fee-adjusted branch values."""
        p = self.params
        cdf, _, partial_below = self._t2_law_pieces(p2)
        p2 = _as_array(p2)
        mean = p2 * math.exp(p.mu * p.tau_b)
        partial_above = np.maximum(mean - partial_below, 0.0)
        slope = float(self.alice_t3_cont(1.0))
        out = (slope * partial_above + cdf * self.alice_t3_stop()) * math.exp(
            -p.alice.r * p.tau_b
        )
        return out if out.ndim else float(out)

    def bob_t2_cont(self, p2):
        """Eq. (21) minus the out-of-pocket deploy fee ``fee_b * P_{t2}``."""
        p = self.params
        _, survival, partial_below = self._t2_law_pieces(p2)
        slope_stop = float(self.bob_t3_stop(1.0))
        value = (survival * self.bob_t3_cont() + slope_stop * partial_below) * math.exp(
            -p.bob.r * p.tau_b
        )
        out = value - self.fee_b * _as_array(p2)
        return out if out.ndim else float(out)

    def alice_t2_stop(self) -> float:
        """Eq. (22) with the refund netted of ``fee_a``."""
        p = self.params
        horizon = p.tau_b + p.eps_b + 2.0 * p.tau_a
        return (self.pstar - self.fee_a) * math.exp(-p.alice.r * horizon)

    # ------------------------------------------------------------------ #
    # t1 stage
    # ------------------------------------------------------------------ #

    def alice_t1_cont(self) -> float:
        """Eq. (25) minus the out-of-pocket ``fee_a`` paid at ``t1``."""
        p = self.params
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.alice_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        outside = (1.0 - region.probability(law)) * self.alice_t2_stop()
        return (inside + outside) * math.exp(-p.alice.r * p.tau_a) - self.fee_a
