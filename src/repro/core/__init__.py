"""The paper's primary contribution: the swap game and its solution.

Public surface:

* :class:`~repro.core.parameters.SwapParameters` /
  :class:`~repro.core.parameters.AgentParameters` -- configuration
  (paper Table III);
* :func:`~repro.core.solver.solve_swap_game` -- full backward induction
  (Section III-E) returning a
  :class:`~repro.core.equilibrium.SwapEquilibrium`;
* :func:`~repro.core.success_rate.success_rate` and friends --
  Eq. (31) / Figure 6;
* :func:`~repro.core.feasible_range.feasible_pstar_range` -- Eq. (29);
* :func:`~repro.core.collateral.solve_collateral_game` -- the
  Section IV extension;
* :func:`~repro.core.premium.solve_premium_game` -- the Han-et-al.
  premium baseline;
* :func:`~repro.core.engine.solve_grid` /
  :class:`~repro.core.engine.GridSolver` -- the vectorised grid engine:
  one array-kernel solve for a whole ``P*`` grid, powering the curve,
  sweep, and feasible-range helpers above.
"""

from repro.core.backward_induction import BackwardInduction
from repro.core.bayesian import BayesianSwapGame, TypeDistribution, information_value
from repro.core.carry import CarryBackwardInduction
from repro.core.fees import FeeBackwardInduction
from repro.core.optionality import (
    CommittedAliceSolver,
    CommittedBobSolver,
    OptionalityReport,
    optionality_report,
)
from repro.core.splitting import SplitPlan, plan_full_exit
from repro.core.collateral import (
    CollateralBackwardInduction,
    CollateralEquilibrium,
    collateral_success_rate,
    feasible_pstar_region_with_collateral,
    solve_collateral_game,
)
from repro.core.engine import (
    EquilibriumGrid,
    GridSolver,
    feasible_regions_grid,
    solve_grid,
)
from repro.core.equilibrium import INDIFFERENT_ACTION, StageUtilities, SwapEquilibrium
from repro.core.feasible_range import (
    PStarRange,
    alice_t1_advantage,
    bob_t1_advantage,
    bob_t2_range,
    feasible_pstar_range,
    feasible_pstar_region,
)
from repro.core.parameters import AgentParameters, SwapParameters
from repro.core.premium import (
    PremiumBackwardInduction,
    PremiumEquilibrium,
    solve_premium_game,
)
from repro.core.solver import solve_swap_game
from repro.core.strategy import Action, AliceStrategy, BobStrategy, equilibrium_strategies
from repro.core.success_rate import (
    SuccessRatePoint,
    max_success_rate,
    success_rate,
    success_rate_curve,
)
from repro.core.timeline import SwapTimeline, TimelineViolation, idealized_timeline

__all__ = [
    "AgentParameters",
    "BayesianSwapGame",
    "TypeDistribution",
    "information_value",
    "CarryBackwardInduction",
    "FeeBackwardInduction",
    "CommittedAliceSolver",
    "CommittedBobSolver",
    "OptionalityReport",
    "optionality_report",
    "SplitPlan",
    "plan_full_exit",
    "SwapParameters",
    "BackwardInduction",
    "INDIFFERENT_ACTION",
    "StageUtilities",
    "SwapEquilibrium",
    "solve_swap_game",
    "EquilibriumGrid",
    "GridSolver",
    "solve_grid",
    "feasible_regions_grid",
    "Action",
    "AliceStrategy",
    "BobStrategy",
    "equilibrium_strategies",
    "success_rate",
    "success_rate_curve",
    "max_success_rate",
    "SuccessRatePoint",
    "bob_t2_range",
    "alice_t1_advantage",
    "bob_t1_advantage",
    "feasible_pstar_range",
    "feasible_pstar_region",
    "PStarRange",
    "CollateralBackwardInduction",
    "CollateralEquilibrium",
    "solve_collateral_game",
    "collateral_success_rate",
    "feasible_pstar_region_with_collateral",
    "PremiumBackwardInduction",
    "PremiumEquilibrium",
    "solve_premium_game",
    "SwapTimeline",
    "TimelineViolation",
    "idealized_timeline",
]
