"""Baseline: premium mechanism à la Han, Lin and Yu (AFT 2019).

The paper's related work (Section II-C) discusses the *premium*
mechanism: the swap initiator escrows a premium that is forfeited to
the counterparty if she aborts, compensating Bob for the American
option she otherwise holds for free. We implement it in the same
utility framework so it can be benchmarked against the Section IV
symmetric-collateral design:

* Alice escrows ``W`` Token_a alongside her HTLC at ``t1``;
* on success the premium returns to her with Bob's redemption
  (received at ``t4 + tau_a``);
* if Alice waives at ``t3``, Bob collects ``W`` when the Chain_a lock
  expires (received at ``t_a + tau_a = t3 + eps_b + 2 tau_a``);
* if Bob walks away at ``t2``, the premium returns to Alice with her
  refund at ``t8``;
* if the swap is never initiated, Alice keeps ``W``.

Only Alice posts anything, so the mechanism disciplines her ``t3``
optionality (the Han et al. concern) but leaves Bob's ``t2``
optionality untouched -- exactly the asymmetry the paper's collateral
extension removes. ``W = 0`` reproduces the basic model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.backward_induction import BackwardInduction, _as_array
from repro.core.equilibrium import StageUtilities
from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.stochastic.quadrature import expectation_on_interval
from repro.stochastic.rootfind import IntervalUnion

__all__ = ["PremiumBackwardInduction", "PremiumEquilibrium", "solve_premium_game"]


class PremiumBackwardInduction(BackwardInduction):
    """Backward induction with an initiator-only premium ``W``."""

    def __init__(
        self, params: SwapParameters, pstar: float, premium: float, **kwargs
    ) -> None:
        if premium < 0.0:
            raise ValueError(f"premium must be non-negative, got {premium}")
        super().__init__(params, pstar, **kwargs)
        self.premium = float(premium)

    def p3_threshold(self) -> float:
        """Alice's reveal threshold, lowered by the at-stake premium.

        Continuing recovers the premium; stopping forfeits it, so the
        cut-off price solves
        ``(1+alpha_A) p e^{(mu-r_A) tau_b} + W e^{-r_A (eps_b + tau_a)}
        = P* e^{-r_A (eps_b + 2 tau_a)}``.
        """
        p = self.params
        a = self._alice
        stop_value = self.pstar * math.exp(-a.r * (p.eps_b + 2.0 * p.tau_a))
        premium_value = self.premium * math.exp(-a.r * (p.eps_b + p.tau_a))
        net = max(stop_value - premium_value, 0.0)
        return math.exp((a.r - p.mu) * p.tau_b) * net / (1.0 + a.alpha)

    def alice_t2_cont(self, p2):
        """Eq. (20) plus the premium recovered on the continuation branch."""
        base = _as_array(super().alice_t2_cont(p2))
        p = self.params
        a = self._alice
        _, survival, _ = self._t2_law_pieces(p2)
        recovered = (
            self.premium
            * math.exp(-a.r * (p.eps_b + p.tau_a))
            * survival
            * math.exp(-a.r * p.tau_b)
        )
        out = base + recovered
        return out if out.ndim else float(out)

    def bob_t2_cont(self, p2):
        """Eq. (21) plus Alice's forfeited premium on her abort branch."""
        base = _as_array(super().bob_t2_cont(p2))
        p = self.params
        b = self._bob
        cdf, _, _ = self._t2_law_pieces(p2)
        forfeit = (
            self.premium
            * math.exp(-b.r * (p.eps_b + 2.0 * p.tau_a))
            * cdf
            * math.exp(-b.r * p.tau_b)
        )
        out = base + forfeit
        return out if out.ndim else float(out)

    def alice_t2_stop_value(self) -> float:
        """Bob walked away: refund plus the returned premium at ``t8``."""
        p = self.params
        a = self._alice
        horizon = p.tau_b + p.eps_b + 2.0 * p.tau_a
        return (self.pstar + self.premium) * math.exp(-a.r * horizon)

    def alice_t1_cont(self) -> float:
        """Eq. (25) with the premium-adjusted branch values."""
        p = self.params
        a = self._alice
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.alice_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        outside = (1.0 - region.probability(law)) * self.alice_t2_stop_value()
        return (inside + outside) * math.exp(-a.r * p.tau_a)

    def alice_t1_stop(self) -> float:
        """Not initiating keeps both the ``P*`` Token_a and the premium."""
        return self.pstar + self.premium


@dataclass(frozen=True)
class PremiumEquilibrium:
    """Solved premium game."""

    params: SwapParameters
    pstar: float
    premium: float
    p3_threshold: float
    bob_t2_region: IntervalUnion
    alice_t1: StageUtilities
    bob_t1: StageUtilities
    success_rate: float
    initiated: bool
    alice_strategy: AliceStrategy
    bob_strategy: BobStrategy

    @property
    def unconditional_success_rate(self) -> float:
        """Success probability including the initiation decision."""
        return self.success_rate if self.initiated else 0.0


def solve_premium_game(
    params: SwapParameters, pstar: float, premium: float
) -> PremiumEquilibrium:
    """Solve the premium-mechanism game at a fixed rate and premium."""
    import time

    from repro.core.solver import observe_solver

    started = time.perf_counter()
    solver = PremiumBackwardInduction(params, pstar, premium)
    region = solver.bob_t2_region()
    alice_t1 = StageUtilities(cont=solver.alice_t1_cont(), stop=solver.alice_t1_stop())
    bob_t1 = StageUtilities(cont=solver.bob_t1_cont(), stop=solver.bob_t1_stop())
    initiated = alice_t1.advantage > 0.0
    equilibrium = PremiumEquilibrium(
        params=params,
        pstar=float(pstar),
        premium=float(premium),
        p3_threshold=solver.p3_threshold(),
        bob_t2_region=region,
        alice_t1=alice_t1,
        bob_t1=bob_t1,
        success_rate=solver.success_rate(),
        initiated=initiated,
        alice_strategy=AliceStrategy(
            initiate_at_t1=initiated, p3_threshold=solver.p3_threshold()
        ),
        bob_strategy=BobStrategy(t2_region=region),
    )
    observe_solver("premium", time.perf_counter() - started)
    return equilibrium
