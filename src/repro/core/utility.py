"""Utility primitives (paper Equation (2)).

An agent's utility for receiving asset value ``V`` after horizon ``T``
in a game whose success indicator is ``S`` is

    U = E[ (1 + alpha * S) * V * e^{-r T} ]

This module provides small composable helpers for that expression; the
stage-by-stage expectations live in
:mod:`repro.core.backward_induction`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import AgentParameters

__all__ = ["discounted_value", "utility_term", "UtilityComponents"]


def discounted_value(value: float, rate: float, horizon: float) -> float:
    """``value * e^{-rate * horizon}`` with input validation."""
    if horizon < 0.0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if not math.isfinite(value):
        raise ValueError(f"value must be finite, got {value}")
    return value * math.exp(-rate * horizon)


def utility_term(
    agent: AgentParameters,
    value: float,
    horizon: float,
    success: bool,
) -> float:
    """One realised term of Eq. (2): ``(1 + alpha S) V e^{-r T}``."""
    premium = 1.0 + agent.alpha if success else 1.0
    return premium * discounted_value(value, agent.r, horizon)


@dataclass(frozen=True)
class UtilityComponents:
    """A decomposed utility value, useful for reports and debugging.

    ``base`` is the discounted asset value, ``premium`` the extra
    success-premium part, ``collateral`` any discounted collateral
    flows. ``total`` is their sum.
    """

    base: float
    premium: float = 0.0
    collateral: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.base + self.premium + self.collateral

    def __add__(self, other: "UtilityComponents") -> "UtilityComponents":
        return UtilityComponents(
            base=self.base + other.base,
            premium=self.premium + other.premium,
            collateral=self.collateral + other.collateral,
        )
