"""Token carry: staking yields / dual risk-free rates (paper future work).

The conclusion sketches two "more realistic features": *different
risk-free rates for the two exchanged tokens* (the Garman--Kohlhagen
setting) and *coin staking, similar to earning dividends or interest on
a locked-in asset*. This module adds both through one mechanism:

* Token_a in a wallet earns a continuous yield ``q_a``; Token_b earns
  ``q_b``;
* tokens locked in an HTLC earn **nothing** -- locking forgoes carry;
* all branch payoffs are valued at the common end of game
  ``t_end = max(t7, t8)``: a token received at ``t_r`` accrues its
  yield over ``[t_r, t_end]``, so branches that release assets earlier
  are worth more.

Every stage utility keeps the base model's linear-in-price structure,
so the closed forms survive with per-branch carry factors; the ``t2``
utilities are recomputed generically from the (overridden) ``t3``
slopes and constants. ``q_a = q_b = 0`` reduces exactly to the basic
model (property-tested).

Economic effect: a high Token_b staking yield ``q_b`` makes *keeping*
Token_b more attractive for Bob (his ``t2`` region narrows -- staking
competes with swapping) while making an *early receipt* of Token_b more
attractive for Alice (her reveal threshold drops); the net effect on
``SR`` is the kind of trade-off the benchmarks quantify.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backward_induction import BackwardInduction, _as_array
from repro.core.parameters import SwapParameters
from repro.stochastic.quadrature import expectation_on_interval

__all__ = ["CarryBackwardInduction"]


class CarryBackwardInduction(BackwardInduction):
    """Backward induction with per-token wallet yields ``(q_a, q_b)``."""

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        yield_a: float = 0.0,
        yield_b: float = 0.0,
        **kwargs,
    ) -> None:
        if not math.isfinite(yield_a) or not math.isfinite(yield_b):
            raise ValueError("yields must be finite")
        super().__init__(params, pstar, **kwargs)
        self.yield_a = float(yield_a)
        self.yield_b = float(yield_b)
        grid = params.grid
        self._t_end = max(grid.t7, grid.t8)
        self._grid = grid

    # ------------------------------------------------------------------ #
    # carry factors
    # ------------------------------------------------------------------ #

    def _carry_a(self, receipt_time: float) -> float:
        """Yield accrued by Token_a from ``receipt_time`` to game end."""
        return math.exp(self.yield_a * (self._t_end - receipt_time))

    def _carry_b(self, receipt_time: float) -> float:
        """Yield accrued by Token_b from ``receipt_time`` to game end."""
        return math.exp(self.yield_b * (self._t_end - receipt_time))

    # ------------------------------------------------------------------ #
    # t3 stage (carry-adjusted Eqs. (14)-(18))
    # ------------------------------------------------------------------ #

    def alice_t3_cont(self, p3):
        """Eq. (14) with Token_b staked from ``t5`` to game end."""
        out = _as_array(super().alice_t3_cont(p3)) * self._carry_b(self._grid.t5)
        return out if out.ndim else float(out)

    def alice_t3_stop(self) -> float:
        """Eq. (16) with the refunded Token_a staked from ``t8``."""
        return super().alice_t3_stop() * self._carry_a(self._grid.t8)

    def bob_t3_cont(self) -> float:
        """Eq. (15) with Token_a staked from ``t6``."""
        return super().bob_t3_cont() * self._carry_a(self._grid.t6)

    def bob_t3_stop(self, p3):
        """Eq. (17) with the refunded Token_b staked from ``t7``."""
        out = _as_array(super().bob_t3_stop(p3)) * self._carry_b(self._grid.t7)
        return out if out.ndim else float(out)

    def p3_threshold(self) -> float:
        """The carry-adjusted indifference price at ``t3``.

        ``alice_t3_cont`` stays linear through the origin, so the
        threshold is ``stop_value / slope``.
        """
        slope = float(self.alice_t3_cont(1.0))
        return self.alice_t3_stop() / slope

    # ------------------------------------------------------------------ #
    # t2 stage: generic closed forms from the t3 slopes/constants
    # ------------------------------------------------------------------ #

    def alice_t2_cont(self, p2):
        """Eq. (20) with carry factors folded into the branch values."""
        p = self.params
        cdf, _, partial_below = self._t2_law_pieces(p2)
        p2 = _as_array(p2)
        mean = p2 * math.exp(p.mu * p.tau_b)
        partial_above = np.maximum(mean - partial_below, 0.0)
        slope = float(self.alice_t3_cont(1.0))
        out = (slope * partial_above + cdf * self.alice_t3_stop()) * math.exp(
            -p.alice.r * p.tau_b
        )
        return out if out.ndim else float(out)

    def bob_t2_cont(self, p2):
        """Eq. (21) with carry factors folded into the branch values."""
        p = self.params
        _, survival, partial_below = self._t2_law_pieces(p2)
        slope_stop = float(self.bob_t3_stop(1.0))
        out = (survival * self.bob_t3_cont() + slope_stop * partial_below) * math.exp(
            -p.bob.r * p.tau_b
        )
        return out if out.ndim else float(out)

    def alice_t2_stop(self) -> float:
        """Eq. (22) with the refunded Token_a staked from ``t8``."""
        return super().alice_t2_stop() * self._carry_a(self._grid.t8)

    def bob_t2_stop(self, p2):
        """Eq. (23): Bob keeps Token_b and stakes it from ``t2``."""
        out = _as_array(p2) * self._carry_b(self._grid.t2)
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------ #
    # t1 stage
    # ------------------------------------------------------------------ #

    def bob_t1_cont(self) -> float:
        """Eq. (26); the outside branch now carries the Token_b yield."""
        p = self.params
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.bob_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        inside_price_mass = sum(
            law.partial_expectation_between(lo, hi) for lo, hi in region.intervals
        )
        outside = (law.mean() - inside_price_mass) * self._carry_b(self._grid.t2)
        return (inside + outside) * math.exp(-p.bob.r * p.tau_a)

    def alice_t1_stop(self) -> float:
        """Eq. (27): Token_a staked over the whole game window."""
        return self.pstar * self._carry_a(0.0)

    def bob_t1_stop(self) -> float:
        """Eq. (28): Token_b staked over the whole game window."""
        return self.params.p0 * self._carry_b(0.0)
