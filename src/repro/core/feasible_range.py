"""Feasible ranges of the exchange rate and of Bob's ``t2`` price.

Two questions from the paper:

* For a given ``P*``, over which ``P_{t2}`` prices does Bob continue?
  (Eq. (24), Figure 4.) Answered by
  :meth:`repro.core.backward_induction.BackwardInduction.bob_t2_region`;
  re-exported here as :func:`bob_t2_range` in the two-endpoint form the
  paper uses.
* Over which exchange rates ``P*`` does Alice initiate at all?
  (Eqs. (29)-(30), Figure 5.) Answered by
  :func:`feasible_pstar_range`, numerically ``(1.5, 2.5)`` under the
  Table III defaults.

Both regions are computed by sign-change scans over a log grid followed
by root refinement, so non-interval cases (empty, or touching the scan
boundary) are handled uniformly via :class:`IntervalUnion`. The ``P*``
scan is served by the grid engine
(:func:`repro.core.engine.feasible_regions_grid`): one vectorised solve
evaluates both agents' ``t1`` advantages on the whole grid, and the
boundary roots are refined by one batched bisection. The scalar
advantage functions below remain the per-point reference view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.backward_induction import BackwardInduction
from repro.core.engine import feasible_regions_grid
from repro.core.parameters import SwapParameters
from repro.stochastic.rootfind import IntervalUnion

__all__ = [
    "bob_t2_range",
    "alice_t1_advantage",
    "bob_t1_advantage",
    "feasible_pstar_region",
    "feasible_pstar_range",
    "PStarRange",
]


def bob_t2_range(
    params: SwapParameters, pstar: float
) -> Optional[Tuple[float, float]]:
    """Bob's continuation range ``(P̲_{t2}, P̄_{t2})`` (Eq. (24)).

    Returns ``None`` when Bob never continues (the paper's
    "``alpha_B`` too small" degenerate case). When the continuation
    region is a union of intervals (possible only in the collateral
    extension), the basic model guarantees a single interval and this
    function returns its endpoints.
    """
    region = BackwardInduction(params, pstar).bob_t2_region()
    if region.is_empty:
        return None
    return region.bounds()


def alice_t1_advantage(params: SwapParameters, pstar: float) -> float:
    """``U^A_{t1}(cont) - U^A_{t1}(stop)`` as a function of ``P*``.

    Positive where Alice initiates (Eq. (30)).
    """
    solver = BackwardInduction(params, pstar)
    return solver.alice_t1_cont() - solver.alice_t1_stop()


def bob_t1_advantage(params: SwapParameters, pstar: float) -> float:
    """``U^B_{t1}(cont) - U^B_{t1}(stop)`` as a function of ``P*``.

    Positive where Bob prefers the swap to be initiated. The paper's
    Eq. (30) conditions on Alice only; Bob's side is exposed for the
    joint-agreement analysis.
    """
    solver = BackwardInduction(params, pstar)
    return solver.bob_t1_cont() - solver.bob_t1_stop()


@dataclass(frozen=True)
class PStarRange:
    """The feasible exchange-rate window for initiating a swap.

    ``alice`` is the region where Alice initiates (the paper's
    Eq. (29)-(30) object); ``bob`` the region where Bob prefers the
    game; ``joint`` their intersection.
    """

    alice: IntervalUnion
    bob: IntervalUnion

    @property
    def joint(self) -> IntervalUnion:
        """Exchange rates acceptable to both agents."""
        return self.alice.intersect(self.bob)

    def alice_bounds(self) -> Optional[Tuple[float, float]]:
        """Endpoints ``(P̲*, P̄*)`` of Alice's region, or ``None``."""
        if self.alice.is_empty:
            return None
        return self.alice.bounds()


def feasible_pstar_region(
    params: SwapParameters,
    rel_lo: float = 0.05,
    rel_hi: float = 20.0,
    n_scan: int = 96,
) -> PStarRange:
    """Both agents' feasible ``P*`` regions.

    The scan window is ``(rel_lo * p0, rel_hi * p0)``; rates an order of
    magnitude away from the spot are never individually rational, so the
    default window is generous. Both agents come out of one engine scan
    (:func:`repro.core.engine.feasible_regions_grid`).
    """
    lo = rel_lo * params.p0
    hi = rel_hi * params.p0
    alice, bob = feasible_regions_grid(params, lo, hi, n_scan=n_scan)
    return PStarRange(alice=alice, bob=bob)


def feasible_pstar_range(
    params: SwapParameters,
    n_scan: int = 96,
) -> Optional[Tuple[float, float]]:
    """The paper's Eq. (29) object: endpoints of Alice's feasible ``P*``.

    Under Table III defaults this is numerically ``(1.5, 2.5)``.
    Returns ``None`` when no feasible rate exists (e.g. ``alpha`` too
    small or ``r`` too large, Section III-F).
    """
    region = feasible_pstar_region(params, n_scan=n_scan).alice
    if region.is_empty:
        return None
    return region.bounds()
