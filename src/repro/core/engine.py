"""Vectorised grid-solve engine: whole ``P*`` grids as array kernels.

Every curve the paper draws -- ``SR(P*)`` (Eq. (31), Figure 6), the
feasibility windows (Eqs. (25)-(30), Figure 5), the collateral panels
of Section IV -- is a *grid* evaluation, yet the scalar solvers
(:class:`~repro.core.backward_induction.BackwardInduction` and its
collateral subclass) rebuild the whole threshold structure one exchange
rate at a time. :class:`GridSolver` evaluates the entire grid at once:

* one shared ``t1`` law (``params.law`` stepped over ``tau_a`` from
  ``p0``) and one Gauss--Legendre node set serve every point;
* the ``t3`` thresholds, the ``t2`` scan grids, Bob's advantage
  function, the endpoint roots, and all three ``t1`` quadratures are
  computed as broadcast NumPy operations over the ``P*`` axis.

Array layout convention (see DESIGN.md): the leading axis is always the
``P*`` grid (length ``n``); scan grids are ``(n, scan_points)``;
bracket and interval data are *flattened* into ``(rows, lo, hi)``
triples because different grid points own different numbers of
roots/intervals, and per-point results are recovered with
``np.bincount(rows, weights=..., minlength=n)`` scatter-adds. The
kernels replicate the scalar formulas operation for operation, so the
scalar solvers remain the single-point reference view -- parity is
property-tested to ``|delta| <= 1e-9`` (``tests/core/test_grid_parity.py``).

Every solve lands in the active :mod:`repro.obs` registry:
``repro_grid_solves_total``, ``repro_grid_points`` (grid-size
histogram) and ``repro_grid_seconds`` (latency histogram).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.equilibrium import StageUtilities, SwapEquilibrium
from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.obs.metrics import get_registry
from repro.stochastic.law import observe_law, step_kernel
from repro.stochastic.quadrature import (
    DEFAULT_QUAD_ORDER,
    expectation_on_intervals,
)
from repro.stochastic.rootfind import (
    IntervalUnion,
    bisect_roots,
    grid_sign_change_brackets,
)

__all__ = ["EquilibriumGrid", "GridSolver", "solve_grid", "feasible_regions_grid"]

#: Grid-size histogram buckets (points per solve, powers of four).
_POINTS_BUCKETS: Tuple[float, ...] = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0)


@dataclass(frozen=True)
class EquilibriumGrid:
    """Solved swap games on a whole ``P*`` grid.

    All float fields are ``(n,)`` arrays aligned with ``pstars``;
    ``t2_regions`` holds one :class:`IntervalUnion` per point. Use
    :meth:`equilibrium_at` to materialise the classic per-point result
    object (:class:`SwapEquilibrium`, or the Section IV
    ``CollateralEquilibrium`` when ``collateral > 0``).
    """

    params: SwapParameters
    collateral: float
    pstars: np.ndarray
    p3_threshold: np.ndarray
    t2_regions: Tuple[IntervalUnion, ...]
    alice_t1_cont: np.ndarray
    alice_t1_stop: np.ndarray
    bob_t1_cont: np.ndarray
    bob_t1_stop: np.ndarray
    success_rate: np.ndarray

    def __len__(self) -> int:
        return self.pstars.size

    @property
    def alice_initiates(self) -> np.ndarray:
        """Eq. (30) per point: ``U^A_{t1}(cont) > U^A_{t1}(stop)``."""
        return self.alice_t1_cont > self.alice_t1_stop

    @property
    def bob_would_agree(self) -> np.ndarray:
        """Bob's side of the ``t1`` agreement, per point."""
        return self.bob_t1_cont > self.bob_t1_stop

    @property
    def t2_lower(self) -> np.ndarray:
        """``P̲_{t2}`` per point (``nan`` where Bob never continues)."""
        return np.array(
            [r.bounds()[0] if not r.is_empty else math.nan for r in self.t2_regions]
        )

    @property
    def t2_upper(self) -> np.ndarray:
        """``P̄_{t2}`` per point (``nan`` where Bob never continues)."""
        return np.array(
            [r.bounds()[1] if not r.is_empty else math.nan for r in self.t2_regions]
        )

    def equilibrium_at(self, i: int):
        """The classic per-point result object for grid index ``i``.

        Returns a :class:`SwapEquilibrium` when the grid was solved
        without collateral and a ``CollateralEquilibrium`` otherwise --
        the same types (and tie-breaking conventions) the scalar
        :func:`~repro.core.solver.solve_swap_game` /
        :func:`~repro.core.collateral.solve_collateral_game` produce.
        """
        alice_t1 = StageUtilities(
            cont=float(self.alice_t1_cont[i]), stop=float(self.alice_t1_stop[i])
        )
        bob_t1 = StageUtilities(
            cont=float(self.bob_t1_cont[i]), stop=float(self.bob_t1_stop[i])
        )
        initiated = alice_t1.advantage > 0.0
        region = self.t2_regions[i]
        alice_strategy = AliceStrategy(
            initiate_at_t1=initiated, p3_threshold=float(self.p3_threshold[i])
        )
        bob_strategy = BobStrategy(t2_region=region)
        if self.collateral > 0.0:
            from repro.core.collateral import CollateralEquilibrium

            return CollateralEquilibrium(
                params=self.params,
                pstar=float(self.pstars[i]),
                collateral=self.collateral,
                p3_threshold=float(self.p3_threshold[i]),
                bob_t2_region=region,
                alice_t1=alice_t1,
                bob_t1=bob_t1,
                success_rate=float(self.success_rate[i]),
                alice_engages=initiated,
                bob_engages=bob_t1.advantage > 0.0,
                alice_strategy=alice_strategy,
                bob_strategy=bob_strategy,
            )
        return SwapEquilibrium(
            params=self.params,
            pstar=float(self.pstars[i]),
            p3_threshold=float(self.p3_threshold[i]),
            bob_t2_region=region,
            alice_t1=alice_t1,
            bob_t1=bob_t1,
            success_rate=float(self.success_rate[i]),
            initiated=initiated,
            alice_strategy=alice_strategy,
            bob_strategy=bob_strategy,
        )


class GridSolver:
    """Array-kernel backward induction over a ``P*`` grid.

    Parameters
    ----------
    params:
        Model parameters (Table III), shared by every grid point.
    collateral:
        Deposit ``Q`` of the Section IV game; ``0`` solves the basic
        game (and matches :class:`BackwardInduction` formulas exactly,
        not the ``Q -> 0`` limit of the collateral ones).
    quad_order, scan_points:
        Same knobs, and same defaults, as the scalar solvers.
    """

    def __init__(
        self,
        params: SwapParameters,
        collateral: float = 0.0,
        quad_order: int = DEFAULT_QUAD_ORDER,
        scan_points: int = 512,
    ) -> None:
        if collateral < 0.0:
            raise ValueError(f"collateral must be non-negative, got {collateral}")
        self.params = params
        self.collateral = float(collateral)
        self.quad_order = quad_order
        self.scan_points = scan_points
        # both transition kernels are identical for every grid point:
        # built once here (under the default law these delegate to the
        # exact lognormal closed forms, keeping historical bit-parity)
        self._kernel_b = step_kernel(params.law, params.mu, params.sigma, params.tau_b)
        self._t1_law = step_kernel(
            params.law, params.mu, params.sigma, params.tau_a
        ).law(params.p0)

    # ------------------------------------------------------------------ #
    # stage kernels (broadcast over the P* axis)
    # ------------------------------------------------------------------ #

    def p3_thresholds(self, pstars: np.ndarray) -> np.ndarray:
        """Eq. (18) / Eq. (34) thresholds for the whole grid."""
        p = self.params
        a = p.alice
        if self.collateral > 0.0:
            stop_value = pstars * math.exp(-a.r * (p.eps_b + 2.0 * p.tau_a))
            deposit_value = self.collateral * math.exp(-a.r * (p.eps_b + p.tau_a))
            net = np.maximum(stop_value - deposit_value, 0.0)
            return math.exp((a.r - p.mu) * p.tau_b) * net / (1.0 + a.alpha)
        exponent = (a.r - p.mu) * p.tau_b - a.r * (p.eps_b + 2.0 * p.tau_a)
        return math.exp(exponent) * pstars / (1.0 + a.alpha)

    def _bob_t2_cont(self, x, k, bob_t3_cont):
        """Eq. (21)/(35) kernel; ``k``/``bob_t3_cont`` broadcast against ``x``."""
        p = self.params
        b = p.bob
        cdf, survival, partial_below = self._kernel_b.pieces(x, k)
        upper = survival * bob_t3_cont
        lower = math.exp(2.0 * (p.mu - b.r) * p.tau_b) * partial_below
        out = (upper + lower) * math.exp(-b.r * p.tau_b)
        if self.collateral > 0.0:
            own_deposit = self.collateral * math.exp(-b.r * p.tau_a)
            alices_deposit = (
                self.collateral * math.exp(-b.r * (p.eps_b + p.tau_a)) * cdf
            )
            out = out + (own_deposit + alices_deposit) * math.exp(-b.r * p.tau_b)
        return out

    def _alice_t2_cont(self, x, k, alice_t3_stop):
        """Eq. (20)/(35) kernel; per-point constants broadcast against ``x``."""
        p = self.params
        a = p.alice
        cdf, survival, partial_below = self._kernel_b.pieces(x, k)
        mean = x * math.exp(p.mu * p.tau_b)
        partial_above = np.maximum(mean - partial_below, 0.0)
        upper = (1.0 + a.alpha) * math.exp((p.mu - a.r) * p.tau_b) * partial_above
        lower = cdf * alice_t3_stop
        out = (upper + lower) * math.exp(-a.r * p.tau_b)
        if self.collateral > 0.0:
            out = out + (
                self.collateral
                * math.exp(-a.r * (p.eps_b + p.tau_a))
                * survival
                * math.exp(-a.r * p.tau_b)
            )
        return out

    # ------------------------------------------------------------------ #
    # the full grid solve
    # ------------------------------------------------------------------ #

    def solve(self, pstars) -> EquilibriumGrid:
        """Backward-induct every ``P*`` in one batch of array kernels."""
        started = time.perf_counter()
        pstars = np.atleast_1d(np.asarray(pstars, dtype=float))
        if pstars.ndim != 1:
            raise ValueError(f"pstars must be 1-D, got shape {pstars.shape}")
        if pstars.size == 0:
            raise ValueError("pstars must contain at least one exchange rate")
        if not np.all(np.isfinite(pstars) & (pstars > 0.0)):
            raise ValueError("every pstar must be finite and positive")
        p = self.params
        a = p.alice
        b = p.bob
        q = self.collateral
        n = pstars.size

        k3 = self.p3_thresholds(pstars)
        bob_t3_cont = (1.0 + b.alpha) * pstars * math.exp(-b.r * (p.eps_b + p.tau_a))
        alice_t3_stop = pstars * math.exp(-a.r * (p.eps_b + 2.0 * p.tau_a))

        # --- t2: locate Bob's continuation region on every row at once.
        # Same scan window and bracket rule as the scalar bob_t2_region.
        scale = np.maximum(np.maximum(pstars, p.p0), k3)
        lo_vec = 1e-6 * np.minimum(pstars, p.p0)
        hi_vec = 1e4 * scale
        grid = np.exp(
            np.linspace(np.log(lo_vec), np.log(hi_vec), self.scan_points, axis=1)
        )
        advantage = self._bob_t2_cont(grid, k3[:, None], bob_t3_cont[:, None]) - grid
        rows, bracket_lo, bracket_hi = grid_sign_change_brackets(grid, advantage)

        def advantage_flat(x: np.ndarray) -> np.ndarray:
            return self._bob_t2_cont(x, k3[rows], bob_t3_cont[rows]) - x

        roots = bisect_roots(advantage_flat, bracket_lo, bracket_hi)

        # candidate intervals between consecutive roots, per row; the
        # geometric-midpoint sign checks are batched into one flat call
        roots_by_row: Dict[int, List[float]] = {}
        for row, root in zip(rows.tolist(), roots.tolist()):
            roots_by_row.setdefault(row, []).append(root)
        cand_rows: List[int] = []
        cand_lo: List[float] = []
        cand_hi: List[float] = []
        for i in range(n):
            edges = [float(lo_vec[i])] + roots_by_row.get(i, []) + [float(hi_vec[i])]
            for edge_lo, edge_hi in zip(edges[:-1], edges[1:]):
                if edge_hi <= edge_lo:
                    continue
                cand_rows.append(i)
                cand_lo.append(edge_lo)
                cand_hi.append(edge_hi)
        cand_rows_arr = np.asarray(cand_rows, dtype=np.intp)
        cand_lo_arr = np.asarray(cand_lo, dtype=float)
        cand_hi_arr = np.asarray(cand_hi, dtype=float)
        mids = np.sqrt(cand_lo_arr * cand_hi_arr)
        mid_advantage = (
            self._bob_t2_cont(
                mids, k3[cand_rows_arr], bob_t3_cont[cand_rows_arr]
            )
            - mids
        )
        keep = mid_advantage > 0.0
        iv_rows = cand_rows_arr[keep]
        iv_lo = cand_lo_arr[keep]
        iv_hi = cand_hi_arr[keep]
        regions: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
        for row, interval_lo, interval_hi in zip(
            iv_rows.tolist(), iv_lo.tolist(), iv_hi.tolist()
        ):
            regions[row].append((interval_lo, interval_hi))
        t2_regions = tuple(IntervalUnion.from_intervals(r) for r in regions)

        # --- t1: three batched quadratures over the flattened intervals,
        # all under the one shared law, scattered back per grid point.
        law = self._t1_law
        k_iv = k3[iv_rows][:, None]
        alice_t3_stop_iv = alice_t3_stop[iv_rows][:, None]
        bob_t3_cont_iv = bob_t3_cont[iv_rows][:, None]

        inside_alice = np.bincount(
            iv_rows,
            weights=expectation_on_intervals(
                law,
                lambda x: self._alice_t2_cont(x, k_iv, alice_t3_stop_iv),
                iv_lo,
                iv_hi,
                self.quad_order,
            ),
            minlength=n,
        )
        inside_bob = np.bincount(
            iv_rows,
            weights=expectation_on_intervals(
                law,
                lambda x: self._bob_t2_cont(x, k_iv, bob_t3_cont_iv),
                iv_lo,
                iv_hi,
                self.quad_order,
            ),
            minlength=n,
        )
        prob_inside = np.bincount(
            iv_rows,
            weights=np.maximum(law.cdf(iv_hi) - law.cdf(iv_lo), 0.0),
            minlength=n,
        )
        price_mass = np.bincount(
            iv_rows,
            weights=np.maximum(
                law.partial_expectation_above(iv_lo)
                - law.partial_expectation_above(iv_hi),
                0.0,
            ),
            minlength=n,
        )

        alice_t2_stop = pstars * math.exp(
            -a.r * (p.tau_b + p.eps_b + 2.0 * p.tau_a)
        )
        if q > 0.0:
            alice_t2_stop = alice_t2_stop + 2.0 * q * math.exp(
                -a.r * (p.tau_b + p.tau_a)
            )
        alice_t1_cont = (
            inside_alice + (1.0 - prob_inside) * alice_t2_stop
        ) * math.exp(-a.r * p.tau_a)
        bob_t1_cont = (inside_bob + (law.mean() - price_mass)) * math.exp(
            -b.r * p.tau_a
        )
        alice_t1_stop = pstars + q
        bob_t1_stop = np.full(n, p.p0 + q)

        # --- success rate (Eq. (31)/(40)) with the scalar survive kernel
        kernel_b = self._kernel_b
        log_k_iv = np.log(np.where(k3 > 0.0, k3, 1.0))[iv_rows][:, None]

        def survive(x: np.ndarray) -> np.ndarray:
            return kernel_b.survival_from_logs(np.log(x), log_k_iv)

        sr_quad = np.bincount(
            iv_rows,
            weights=expectation_on_intervals(
                law, survive, iv_lo, iv_hi, self.quad_order
            ),
            minlength=n,
        )
        empty = np.bincount(iv_rows, minlength=n) == 0
        success = np.where(empty, 0.0, np.where(k3 > 0.0, sr_quad, prob_inside))

        result = EquilibriumGrid(
            params=p,
            collateral=q,
            pstars=pstars,
            p3_threshold=k3,
            t2_regions=t2_regions,
            alice_t1_cont=alice_t1_cont,
            alice_t1_stop=alice_t1_stop,
            bob_t1_cont=bob_t1_cont,
            bob_t1_stop=bob_t1_stop,
            success_rate=success,
        )
        self._observe(n, time.perf_counter() - started)
        observe_law(p.law.kind, "grid")
        return result

    @staticmethod
    def _observe(n_points: int, seconds: float) -> None:
        registry = get_registry()
        registry.counter(
            "repro_grid_solves_total",
            help="Grid solves executed by the vectorised engine.",
        ).inc()
        registry.histogram(
            "repro_grid_points",
            help="P* points per grid solve.",
            buckets=_POINTS_BUCKETS,
        ).observe(float(n_points))
        registry.histogram(
            "repro_grid_seconds",
            help="Wall-clock duration of one grid solve.",
        ).observe(seconds)


def solve_grid(
    params: SwapParameters,
    pstars,
    collateral: float = 0.0,
    quad_order: int = DEFAULT_QUAD_ORDER,
    scan_points: int = 512,
) -> EquilibriumGrid:
    """Solve the swap game on a whole ``P*`` grid in one engine pass."""
    return GridSolver(
        params,
        collateral=collateral,
        quad_order=quad_order,
        scan_points=scan_points,
    ).solve(pstars)


def feasible_regions_grid(
    params: SwapParameters,
    lo: float,
    hi: float,
    n_scan: int = 96,
    collateral: float = 0.0,
) -> Tuple[IntervalUnion, IntervalUnion]:
    """Both agents' feasible ``P*`` regions from one engine scan.

    One :meth:`GridSolver.solve` over a log grid yields *both* agents'
    ``t1`` advantages; the boundary roots of the two sign patterns are
    then refined together -- one batched bisection whose objective is a
    single engine solve over all candidate boundary points, with an
    agent mask selecting which advantage each bracket tracks.
    """
    if not (lo > 0.0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    solver = GridSolver(params, collateral=collateral)
    ks = np.exp(np.linspace(math.log(lo), math.log(hi), n_scan))
    coarse = solver.solve(ks)
    advantages = np.stack(
        [
            coarse.alice_t1_cont - coarse.alice_t1_stop,
            coarse.bob_t1_cont - coarse.bob_t1_stop,
        ]
    )
    agents, bracket_lo, bracket_hi = grid_sign_change_brackets(
        np.broadcast_to(ks, advantages.shape), advantages
    )

    def advantage_at(points: np.ndarray) -> np.ndarray:
        g = solver.solve(points)
        alice = g.alice_t1_cont - g.alice_t1_stop
        bob = g.bob_t1_cont - g.bob_t1_stop
        return np.where(agents == 0, alice, bob)

    roots = bisect_roots(advantage_at, bracket_lo, bracket_hi)

    out: List[IntervalUnion] = []
    for agent in (0, 1):
        edges = [lo] + sorted(roots[agents == agent].tolist()) + [hi]
        mids = np.sqrt(
            np.asarray(edges[:-1], dtype=float) * np.asarray(edges[1:], dtype=float)
        )
        g = solver.solve(mids)
        mid_adv = (
            g.alice_t1_cont - g.alice_t1_stop
            if agent == 0
            else g.bob_t1_cont - g.bob_t1_stop
        )
        keep = [
            (edge_lo, edge_hi)
            for edge_lo, edge_hi, adv in zip(edges[:-1], edges[1:], mid_adv)
            if edge_hi > edge_lo and adv > 0.0
        ]
        out.append(IntervalUnion.from_intervals(keep))
    return out[0], out[1]
