"""The cost of splitting a large transfer into collateralised swaps.

Section II-C discusses Zamyatin et al.'s proposal of posting collateral
"at least equal to the assets locked", and objects: an agent who wants
to move *all* his holdings must then run multiple transactions, "each
with an amount (approximately) equal to half the amount of the assets
he currently possesses" -- the collateral must come out of the same
pot being transferred.

This module turns that remark into a planner. An agent holding ``W``
Token_a wants to swap all of it into Token_b using collateralised
swaps with a collateral *ratio* ``c`` (deposit = ``c`` x notional):

* each round can move at most ``W_k / (1 + c)`` of the current
  remainder ``W_k`` (the rest is tied up as the deposit);
* after the round settles the deposit returns, so the remainder
  shrinks geometrically: ``W_{k+1} = W_k * c / (1 + c)``;
* each round costs one full swap timeline (``t8`` hours) and succeeds
  with the collateral model's ``SR(P*, Q)``.

The planner reports the number of rounds needed to move a target
fraction of the wealth, the total time spent, and the probability all
rounds complete -- quantifying the paper's objection that heavier
collateral buys per-swap reliability at the cost of more, slower
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.collateral import CollateralBackwardInduction
from repro.core.parameters import SwapParameters

__all__ = ["SplitPlan", "RoundPlan", "plan_full_exit"]


@dataclass(frozen=True)
class RoundPlan:
    """One round of the sequential exit."""

    index: int
    notional: float
    deposit: float
    remaining_after: float
    success_rate: float


@dataclass(frozen=True)
class SplitPlan:
    """The full sequential-exit schedule."""

    wealth: float
    collateral_ratio: float
    target_fraction: float
    rounds: Tuple[RoundPlan, ...]
    round_duration: float

    @property
    def n_rounds(self) -> int:
        """Number of swap rounds."""
        return len(self.rounds)

    @property
    def total_time(self) -> float:
        """Wall-clock hours if rounds run back to back."""
        return self.n_rounds * self.round_duration

    @property
    def moved_fraction(self) -> float:
        """Fraction of the wealth moved when all rounds complete."""
        if not self.rounds:
            return 0.0
        return 1.0 - self.rounds[-1].remaining_after / self.wealth

    @property
    def all_rounds_succeed_probability(self) -> float:
        """Probability every round completes (independent price windows)."""
        prob = 1.0
        for round_plan in self.rounds:
            prob *= round_plan.success_rate
        return prob

    def describe(self) -> str:
        """One-paragraph report."""
        return (
            f"exit {self.target_fraction:.0%} of {self.wealth:g} Token_a at "
            f"collateral ratio {self.collateral_ratio:g}: "
            f"{self.n_rounds} rounds, {self.total_time:.0f}h total, "
            f"P(all succeed) = {self.all_rounds_succeed_probability:.4f}"
        )


def plan_full_exit(
    params: SwapParameters,
    pstar: float,
    wealth: float,
    collateral_ratio: float,
    target_fraction: float = 0.99,
    max_rounds: int = 64,
) -> SplitPlan:
    """Plan a sequential collateralised exit of ``wealth`` Token_a.

    Parameters
    ----------
    pstar:
        Exchange rate assumed constant across rounds (each round swaps
        ``notional`` Token_a for ``notional / pstar`` Token_b).
    collateral_ratio:
        Deposit per unit of notional (Zamyatin et al. suggest >= 1).
    target_fraction:
        Stop once this share of the wealth has been scheduled.
    """
    if not wealth > 0.0:
        raise ValueError(f"wealth must be positive, got {wealth}")
    if collateral_ratio < 0.0:
        raise ValueError(f"collateral_ratio must be >= 0, got {collateral_ratio}")
    if not 0.0 < target_fraction < 1.0:
        raise ValueError(
            f"target_fraction must be in (0, 1), got {target_fraction}"
        )

    grid = params.grid
    round_duration = max(grid.t7, grid.t8)

    rounds: List[RoundPlan] = []
    remaining = wealth
    index = 0
    while remaining > (1.0 - target_fraction) * wealth and index < max_rounds:
        notional = remaining / (1.0 + collateral_ratio)
        deposit = collateral_ratio * notional
        # the collateral model prices deposits in absolute Token_a; a
        # notional of `notional` at rate pstar corresponds to scaling the
        # reference game by notional / pstar
        scale = notional / pstar
        q_absolute = deposit / scale if scale > 0 else 0.0
        solver = CollateralBackwardInduction(params, pstar, q_absolute)
        sr = solver.success_rate()
        remaining = remaining - notional
        rounds.append(
            RoundPlan(
                index=index,
                notional=notional,
                deposit=deposit,
                remaining_after=remaining,
                success_rate=sr,
            )
        )
        index += 1

    return SplitPlan(
        wealth=wealth,
        collateral_ratio=collateral_ratio,
        target_fraction=target_fraction,
        rounds=tuple(rounds),
        round_duration=round_duration,
    )
