"""Backward induction over the HTLC swap game (paper Section III-E).

The game has four decision points on the idealized timeline:

* ``t4`` -- Bob redeems Token_a; continuing is strictly dominant
  (Section III-E1), so ``t4`` needs no computation.
* ``t3`` -- Alice chooses to reveal the secret (*cont*) or waive
  (*stop*); Eqs. (14)-(19).
* ``t2`` -- Bob chooses to lock Token_b (*cont*) or walk away (*stop*);
  Eqs. (20)-(24).
* ``t1`` -- Alice chooses to initiate (*cont*) or not (*stop*);
  Eqs. (25)-(30).

All ``t3`` and ``t2`` utilities are closed form in terms of lognormal
CDFs and partial expectations; ``t1`` requires one layer of quadrature
over Bob's continuation region. :class:`BackwardInduction` lazily
computes and caches the threshold structure for a fixed exchange rate
``pstar``.

Utility convention: every ``U_{t_k}`` is measured *at* ``t_k``, i.e.
discounting is always back to the decision time, exactly as in the
paper's equations.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.parameters import SwapParameters
from repro.stochastic.law import step_kernel
from repro.stochastic.quadrature import DEFAULT_QUAD_ORDER, expectation_on_interval
from repro.stochastic.rootfind import IntervalUnion, bracketed_root

__all__ = ["BackwardInduction"]


def _as_array(x) -> np.ndarray:
    return np.asarray(x, dtype=float)


class BackwardInduction:
    """Solver for the basic (no-collateral) swap game at a fixed ``pstar``.

    Parameters
    ----------
    params:
        The model parameters (Table III).
    pstar:
        The agreed exchange rate ``P*`` (Token_a per Token_b).
    quad_order:
        Gauss--Legendre order for the ``t1`` integrals.
    scan_points:
        Grid resolution of the sign-change scan that locates Bob's
        ``t2`` continuation region.
    """

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        quad_order: int = DEFAULT_QUAD_ORDER,
        scan_points: int = 512,
    ) -> None:
        if not pstar > 0.0:
            raise ValueError(f"pstar must be positive, got {pstar}")
        self.params = params
        self.pstar = float(pstar)
        self.quad_order = quad_order
        self.scan_points = scan_points
        self._bob_t2_region: Optional[IntervalUnion] = None
        self._kernels: dict = {}

    # ------------------------------------------------------------------ #
    # shared shorthands
    # ------------------------------------------------------------------ #

    @property
    def _alice(self):
        return self.params.alice

    @property
    def _bob(self):
        return self.params.bob

    def _kernel(self, tau: float):
        """The one-step transition kernel for horizon ``tau`` (cached)."""
        kernel = self._kernels.get(tau)
        if kernel is None:
            p = self.params
            kernel = step_kernel(p.law, p.mu, p.sigma, tau)
            self._kernels[tau] = kernel
        return kernel

    def _law(self, spot: float, tau: float):
        return self._kernel(tau).law(spot)

    # ------------------------------------------------------------------ #
    # stage t3: Alice reveals the secret or waives (Eqs. (14)-(19))
    # ------------------------------------------------------------------ #

    def alice_t3_cont(self, p3):
        """Eq. (14): Alice continues, receiving Token_b at ``t5 = t3 + tau_b``.

        ``(1 + alpha_A) * E(P_{t3}, tau_b) * e^{-r_A tau_b}`` -- linear
        in the current price ``p3``. Vectorised over ``p3``.
        """
        p = self.params
        factor = (
            (1.0 + self._alice.alpha)
            * math.exp((p.mu - self._alice.r) * p.tau_b)
        )
        out = factor * _as_array(p3)
        return out if out.ndim else float(out)

    def alice_t3_stop(self) -> float:
        """Eq. (16): Alice waives; Token_a refunded at ``t8 = t3 + eps_b + 2 tau_a``."""
        p = self.params
        return self.pstar * math.exp(-self._alice.r * (p.eps_b + 2.0 * p.tau_a))

    def bob_t3_cont(self) -> float:
        """Eq. (15): swap succeeds; Bob gets Token_a at ``t6 = t3 + eps_b + tau_a``."""
        p = self.params
        return (
            (1.0 + self._bob.alpha)
            * self.pstar
            * math.exp(-self._bob.r * (p.eps_b + p.tau_a))
        )

    def bob_t3_stop(self, p3):
        """Eq. (17): Alice waived; Bob gets Token_b back at ``t7 = t3 + 2 tau_b``."""
        p = self.params
        factor = math.exp(2.0 * (p.mu - self._bob.r) * p.tau_b)
        out = factor * _as_array(p3)
        return out if out.ndim else float(out)

    def p3_threshold(self) -> float:
        """Eq. (18): the cut-off price ``P̲_{t3}``.

        Alice continues at ``t3`` iff ``P_{t3} > P̲_{t3}``.
        """
        p = self.params
        a = self._alice
        exponent = (a.r - p.mu) * p.tau_b - a.r * (p.eps_b + 2.0 * p.tau_a)
        return math.exp(exponent) * self.pstar / (1.0 + a.alpha)

    def alice_t3_value(self, p3):
        """Alice's equilibrium value at ``t3``: max of cont and stop."""
        return np.maximum(self.alice_t3_cont(p3), self.alice_t3_stop())

    def bob_t3_value(self, p3):
        """Bob's value at ``t3`` given Alice plays her threshold strategy."""
        p3 = _as_array(p3)
        cont_mask = p3 > self.p3_threshold()
        out = np.where(cont_mask, self.bob_t3_cont(), self.bob_t3_stop(p3))
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------ #
    # stage t2: Bob locks Token_b or walks away (Eqs. (20)-(24))
    # ------------------------------------------------------------------ #

    def _t2_law_pieces(self, p2):
        """Vectorised lognormal pieces for the ``t2 -> t3`` transition.

        Returns ``(cdf_at_threshold, survival, partial_below)`` of the
        price at ``t3`` given ``P_{t2} = p2``, all evaluated at the
        ``t3`` threshold, vectorised over ``p2``. Thin view over the
        law's step kernel (shared with the grid engine, so scalar and
        vectorised solves evaluate the identical formulas; under the
        default law this is exactly
        :func:`repro.stochastic.lognormal.transition_pieces`);
        ``k <= 0`` degenerates to the collateral extension's "Alice
        continues at any price" pieces.
        """
        p = self.params
        return self._kernel(p.tau_b).pieces(_as_array(p2), self.p3_threshold())

    def alice_t2_cont(self, p2):
        """Eq. (20): Alice's expected utility at ``t2`` if Bob continues.

        Closed form. On the upper branch Alice continues at ``t3`` and
        her Eq. (14) payoff is linear in the ``t3`` price, so its
        expectation is the partial expectation
        ``E[P_{t3} 1{P_{t3} > P̲_{t3}} | P_{t2}]`` scaled by
        ``(1 + alpha_A) e^{(mu - r_A) tau_b}``; on the lower branch she
        receives the constant Eq. (16) refund value weighted by the
        threshold CDF. Vectorised over ``p2``.
        """
        p = self.params
        a = self._alice
        cdf, _, partial_below = self._t2_law_pieces(p2)
        p2 = _as_array(p2)
        mean = p2 * math.exp(p.mu * p.tau_b)
        partial_above = np.maximum(mean - partial_below, 0.0)
        upper = (1.0 + a.alpha) * math.exp((p.mu - a.r) * p.tau_b) * partial_above
        lower = cdf * self.alice_t3_stop()
        out = (upper + lower) * math.exp(-a.r * p.tau_b)
        return out if out.ndim else float(out)

    def alice_t2_stop(self) -> float:
        """Eq. (22): Bob walked away; Alice refunded at ``t8 = t2 + tau_b + eps_b + 2 tau_a``."""
        p = self.params
        horizon = p.tau_b + p.eps_b + 2.0 * p.tau_a
        return self.pstar * math.exp(-self._alice.r * horizon)

    def bob_t2_cont(self, p2):
        """Eq. (21): Bob's expected utility at ``t2`` if he locks Token_b.

        With probability ``1 - C(P̲_{t3})`` Alice completes and Bob
        receives the constant Eq. (15) payoff; otherwise Bob's Token_b
        is refunded, a payoff linear in the ``t3`` price (Eq. (17)) --
        a lower partial expectation. Vectorised over ``p2``.
        """
        p = self.params
        b = self._bob
        _, survival, partial_below = self._t2_law_pieces(p2)
        upper = survival * self.bob_t3_cont()
        # Eq. (17) payoff is x * e^{2(mu - r_B) tau_b} in the t3 price x,
        # so its truncated expectation is the lower partial expectation
        # E[P_{t3} 1{P_{t3} <= P̲_{t3}} | P_{t2}] times that coefficient.
        lower = math.exp(2.0 * (p.mu - b.r) * p.tau_b) * partial_below
        out = (upper + lower) * math.exp(-b.r * p.tau_b)
        return out if out.ndim else float(out)

    def bob_t2_stop(self, p2):
        """Eq. (23): Bob keeps his 1 Token_b, worth ``P_{t2}`` now."""
        out = _as_array(p2).copy()
        return out if out.ndim else float(out)

    def bob_t2_advantage(self, p2):
        """``U^B_{t2}(cont) - U^B_{t2}(stop)``; positive where Bob continues."""
        out = _as_array(self.bob_t2_cont(p2)) - _as_array(self.bob_t2_stop(p2))
        return out if out.ndim else float(out)

    def bob_t2_region(self) -> IntervalUnion:
        """Bob's continuation region ``(P̲_{t2}, P̄_{t2})`` (Eq. (24)).

        Located by a vectorised sign-change scan of
        :meth:`bob_t2_advantage` on a log grid spanning far beyond any
        price the ``t1`` law can reach, refined with Brent's method.
        Empty when ``U(cont) < U(stop)`` everywhere (the paper's
        "swap always fails" case).
        """
        if self._bob_t2_region is None:
            scale = max(self.pstar, self.params.p0, self.p3_threshold())
            lo = 1e-6 * min(self.pstar, self.params.p0)
            hi = 1e4 * scale
            grid = np.exp(np.linspace(math.log(lo), math.log(hi), self.scan_points))
            values = self.bob_t2_advantage(grid)
            roots = []
            for i in range(len(grid) - 1):
                va, vb = values[i], values[i + 1]
                if va == 0.0:
                    continue
                if vb == 0.0 or va * vb < 0.0:
                    roots.append(
                        bracketed_root(
                            lambda q: float(self.bob_t2_advantage(q)),
                            float(grid[i]),
                            float(grid[i + 1]),
                        )
                    )
            edges = [lo] + sorted(roots) + [hi]
            keep = []
            for a, b in zip(edges[:-1], edges[1:]):
                if b <= a:
                    continue
                mid = math.sqrt(a * b)
                if float(self.bob_t2_advantage(mid)) > 0.0:
                    keep.append((a, b))
            self._bob_t2_region = IntervalUnion.from_intervals(keep)
        return self._bob_t2_region

    # ------------------------------------------------------------------ #
    # stage t1: Alice initiates or not (Eqs. (25)-(30))
    # ------------------------------------------------------------------ #

    def alice_t1_cont(self) -> float:
        """Eq. (25): Alice's expected utility of initiating the swap.

        Integrates :meth:`alice_t2_cont` over Bob's continuation region
        and assigns the Eq. (22) refund value to its complement.
        """
        p = self.params
        a = self._alice
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.alice_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        prob_inside = region.probability(law)
        outside = (1.0 - prob_inside) * self.alice_t2_stop()
        return (inside + outside) * math.exp(-a.r * p.tau_a)

    def alice_t1_stop(self) -> float:
        """Eq. (27): Alice keeps her ``P*`` Token_a."""
        return self.pstar

    def bob_t1_cont(self) -> float:
        """Eq. (26): Bob's expected utility if Alice initiates.

        Inside his own continuation region Bob locks and receives
        Eq. (21) value; outside he keeps Token_b, worth the ``t2``
        price (Eqs. (23), (26)).
        """
        p = self.params
        b = self._bob
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        inside = sum(
            expectation_on_interval(law, self.bob_t2_cont, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
        # outside: Bob keeps Token_b worth x (a partial expectation)
        inside_price_mass = sum(
            law.partial_expectation_between(lo, hi) for lo, hi in region.intervals
        )
        outside = law.mean() - inside_price_mass
        return (inside + outside) * math.exp(-b.r * p.tau_a)

    def bob_t1_stop(self) -> float:
        """Eq. (28): Bob keeps his 1 Token_b, worth ``P_{t1} = p0``."""
        return self.params.p0

    def alice_initiates(self) -> bool:
        """Alice's ``t1`` decision (Eq. (30)): initiate iff cont beats stop."""
        return self.alice_t1_cont() > self.alice_t1_stop()

    def bob_would_agree(self) -> bool:
        """Whether Bob prefers the swap game to keeping his token at ``t0``.

        Not part of the paper's Eq. (30) (which conditions on Alice
        only) but needed for a swap to be *agreed* in the first place;
        exposed separately so both conventions are available.
        """
        return self.bob_t1_cont() > self.bob_t1_stop()

    # ------------------------------------------------------------------ #
    # success rate (Eq. (31))
    # ------------------------------------------------------------------ #

    def success_rate(self) -> float:
        """Eq. (31): probability the swap completes once initiated.

        The ``t2`` price must land in Bob's continuation region and the
        ``t3`` price must then exceed Alice's threshold.
        """
        p = self.params
        law = self._law(p.p0, p.tau_a)
        region = self.bob_t2_region()
        if region.is_empty:
            return 0.0
        k = self.p3_threshold()
        if k <= 0.0:
            # Alice continues at any t3 price: SR is just the region mass
            return region.probability(law)
        kernel_b = self._kernel(p.tau_b)
        log_k = math.log(k)

        def survive(x: np.ndarray) -> np.ndarray:
            return kernel_b.survival_from_logs(np.log(x), log_k)

        return sum(
            expectation_on_interval(law, survive, lo, hi, self.quad_order)
            for lo, hi in region.intervals
        )
