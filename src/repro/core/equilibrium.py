"""A complete solved description of one swap game.

:class:`SwapEquilibrium` is the result object of
:func:`repro.core.solver.solve_swap_game`: thresholds, continuation
regions, stage utilities at the initial price, the success rate, and
the derived strategies -- everything the paper's Figures 3-6 read off
the model, in one immutable record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.parameters import SwapParameters
from repro.core.strategy import AliceStrategy, BobStrategy
from repro.stochastic.rootfind import IntervalUnion

__all__ = ["INDIFFERENT_ACTION", "StageUtilities", "SwapEquilibrium"]


#: The canonical indifference convention, applied everywhere a
#: ``U(cont) == U(stop)`` tie can occur: an indifferent agent **stops**.
#: The paper's best responses (Eqs. (19), (24), (30)) all require a
#: *strict* utility improvement to continue, so we resolve ties the
#: same way at every decision point -- ``best_action`` here, Alice's
#: ``P_{t3}`` threshold comparison, Bob's ``t2`` region membership, and
#: the vectorised Monte Carlo counts all break ties to ``"stop"``. The
#: tie set has probability zero under the continuous price law, so this
#: is purely a determinism/consistency contract, not a modelling choice.
INDIFFERENT_ACTION = "stop"


@dataclass(frozen=True)
class StageUtilities:
    """cont/stop utilities of one agent at one decision point."""

    cont: float
    stop: float

    @property
    def best_action(self) -> str:
        """The utility-maximising action (ties: :data:`INDIFFERENT_ACTION`)."""
        return "cont" if self.cont > self.stop else INDIFFERENT_ACTION

    @property
    def advantage(self) -> float:
        """``U(cont) - U(stop)``."""
        return self.cont - self.stop

    @property
    def is_indifferent(self) -> bool:
        """Whether the agent is exactly indifferent (``advantage == 0``)."""
        return self.cont == self.stop


@dataclass(frozen=True)
class SwapEquilibrium:
    """Solved swap game at a fixed exchange rate.

    Attributes
    ----------
    params, pstar:
        The game being solved.
    p3_threshold:
        Alice's reveal threshold ``P̲_{t3}`` (Eq. (18)).
    bob_t2_region:
        Bob's ``t2`` continuation region (Eq. (24)).
    alice_t1, bob_t1:
        Stage utilities at ``t1`` (Eqs. (25)-(28)), evaluated at
        ``P_{t1} = p0``.
    success_rate:
        Eq. (31), conditional on initiation.
    initiated:
        Whether Alice initiates at ``t1`` (Eq. (30)).
    alice_strategy, bob_strategy:
        Executable equilibrium policies.
    """

    params: SwapParameters
    pstar: float
    p3_threshold: float
    bob_t2_region: IntervalUnion
    alice_t1: StageUtilities
    bob_t1: StageUtilities
    success_rate: float
    initiated: bool
    alice_strategy: AliceStrategy
    bob_strategy: BobStrategy

    @property
    def bob_t2_bounds(self) -> Optional[Tuple[float, float]]:
        """Endpoints ``(P̲_{t2}, P̄_{t2})`` or ``None`` if Bob never locks."""
        if self.bob_t2_region.is_empty:
            return None
        return self.bob_t2_region.bounds()

    @property
    def unconditional_success_rate(self) -> float:
        """Success probability including the initiation decision."""
        return self.success_rate if self.initiated else 0.0

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        lines = [
            f"Swap game at P* = {self.pstar:.4f} (spot p0 = {self.params.p0:.4f})",
            f"  Alice reveal threshold  P̲_t3 = {self.p3_threshold:.4f}",
        ]
        bounds = self.bob_t2_bounds
        if bounds is None:
            lines.append("  Bob continuation region : empty (swap cannot succeed)")
        else:
            lines.append(
                f"  Bob continuation region : ({bounds[0]:.4f}, {bounds[1]:.4f})"
                + (f" in {len(self.bob_t2_region)} piece(s)" if len(self.bob_t2_region) > 1 else "")
            )
        lines.append(
            f"  Alice t1: cont={self.alice_t1.cont:.4f} stop={self.alice_t1.stop:.4f}"
            f" -> {'initiates' if self.initiated else 'does not initiate'}"
        )
        lines.append(
            f"  Bob   t1: cont={self.bob_t1.cont:.4f} stop={self.bob_t1.stop:.4f}"
        )
        lines.append(f"  Success rate (Eq. 31)   : {self.success_rate:.4f}")
        return "\n".join(lines)
