"""Typed specification of a multi-party / packetized swap graph.

A :class:`SwapGraphSpec` describes one generalized HTLC swap as a
digraph: ``parties`` (each with the paper's ``(alpha, r)`` preference
pair) and ordered ``edges`` (seller locks an asset for buyer, on that
edge's own chain), executed in ``packets`` rounds of ``amount/packets``
each. The edge order *is* the locking order of every round -- the
paper's two-party game is the two-edge instance (Alice locks Token_a,
then Bob locks Token_b), and Clark-et-al. cycle swaps are the
``n``-edge instance where every party sells to the next.

Asset values are driven by the shared price law: a ``volatile`` edge's
token follows the GBM ``(p0, mu, sigma)`` (the paper's Token_b), a
non-volatile edge's token is the numeraire (Token_a). Each round runs
one lock decision per edge in order, then one reveal decision by the
*leader* -- the buyer of the last edge -- after which the remaining
claims are dominant and cascade via mempool preimage observation
(delay ``eps``), exactly the paper's ``t4``.

The spec is a frozen value object with an exact ``to_dict`` /
``from_dict`` round-trip, so it keys the service cache canonically and
ships over the JSON wire unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.parameters import AgentParameters, SwapParameters, _coerce_law
from repro.stochastic.law import LOGNORMAL, LawSpec

__all__ = ["GraphParty", "GraphEdge", "SwapGraphSpec", "MAX_DECISION_STEPS"]

#: Hard bound on ``packets * (n_edges + 1)`` decision steps -- beyond
#: this the recombining lattice would be enormous and a spec error is
#: far more likely than a real workload.
MAX_DECISION_STEPS = 64


@dataclass(frozen=True)
class GraphParty:
    """One participant: the paper's ``(alpha, r)`` preference pair."""

    name: str
    alpha: float = 0.3
    r: float = 0.01

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"party name must be a non-empty string, got {self.name!r}")
        if self.alpha < 0.0 or not math.isfinite(self.alpha):
            raise ValueError(f"alpha must be finite and >= 0, got {self.alpha}")
        if not self.r > 0.0 or not math.isfinite(self.r):
            raise ValueError(f"r must be finite and > 0, got {self.r}")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "alpha": self.alpha, "r": self.r}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "GraphParty":
        return GraphParty(
            name=str(data["name"]),
            alpha=float(data.get("alpha", 0.3)),  # type: ignore[arg-type]
            r=float(data.get("r", 0.01)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class GraphEdge:
    """One asset transfer: ``seller`` locks ``amount`` for ``buyer``.

    Parameters
    ----------
    seller, buyer:
        Party names (must exist in the spec, must differ).
    amount:
        Total amount over all packets, in the edge token's own units.
    volatile:
        Whether the token's numeraire value follows the shared GBM
        (the paper's Token_b) or is constant (Token_a).
    tau:
        Confirmation time of this edge's chain (hours).
    timelock:
        Refund span of each packet contract, measured from its lock
        time. ``None`` derives the canonical safe schedule (enough to
        survive the round's reveal cascade, staggered by edge order).
    collateral:
        Deposit posted upfront by the seller for this edge; a party
        that *stops* forfeits its outgoing collateral to its buyers
        (the Section IV mechanism, graph-shaped). ``0`` disables.
    """

    seller: str
    buyer: str
    amount: float
    volatile: bool = False
    tau: float = 3.0
    timelock: Optional[float] = None
    collateral: float = 0.0

    def __post_init__(self) -> None:
        if self.seller == self.buyer:
            raise ValueError(f"edge cannot be a self-loop ({self.seller!r})")
        if not (math.isfinite(self.amount) and self.amount > 0.0):
            raise ValueError(f"amount must be finite and > 0, got {self.amount}")
        if not (math.isfinite(self.tau) and self.tau > 0.0):
            raise ValueError(f"tau must be finite and > 0, got {self.tau}")
        if self.timelock is not None and not (
            math.isfinite(self.timelock) and self.timelock > 0.0
        ):
            raise ValueError(
                f"timelock must be finite and > 0 (or None), got {self.timelock}"
            )
        if not (math.isfinite(self.collateral) and self.collateral >= 0.0):
            raise ValueError(
                f"collateral must be finite and >= 0, got {self.collateral}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seller": self.seller,
            "buyer": self.buyer,
            "amount": self.amount,
            "volatile": self.volatile,
            "tau": self.tau,
            "timelock": self.timelock,
            "collateral": self.collateral,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "GraphEdge":
        timelock = data.get("timelock")
        return GraphEdge(
            seller=str(data["seller"]),
            buyer=str(data["buyer"]),
            amount=float(data["amount"]),  # type: ignore[arg-type]
            volatile=bool(data.get("volatile", False)),
            tau=float(data.get("tau", 3.0)),  # type: ignore[arg-type]
            timelock=None if timelock is None else float(timelock),  # type: ignore[arg-type]
            collateral=float(data.get("collateral", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SwapGraphSpec:
    """A k-packet, n-party swap digraph under one shared price law.

    Attributes
    ----------
    parties, edges:
        The digraph. Edge order is the per-round locking order; the
        buyer of the last edge is the *leader* who reveals the secret.
    packets:
        Number of rounds ``k``; each round swaps ``amount/k`` per edge.
    p0, mu, sigma:
        The shared price dynamics of volatile tokens (paper Eq. (1)).
    law:
        The price law of the volatile token (default lognormal/GBM;
        ``merton`` and ``regime`` swap the lattice's transition law).
    eps:
        Mempool preimage-observation delay for the claim cascade
        (the paper's ``eps_b``).
    step_time:
        Market-clock advance between consecutive decision steps.
        ``None`` uses the slowest edge confirmation time (the paper's
        confirmation-driven gaps, made uniform so the price lattice
        recombines -- see DESIGN.md section 9).
    """

    parties: Tuple[GraphParty, ...]
    edges: Tuple[GraphEdge, ...]
    packets: int = 1
    p0: float = 2.0
    mu: float = 0.002
    sigma: float = 0.1
    eps: float = 1.0
    step_time: Optional[float] = None
    law: LawSpec = LOGNORMAL

    def __post_init__(self) -> None:
        object.__setattr__(self, "parties", tuple(self.parties))
        object.__setattr__(self, "edges", tuple(self.edges))
        object.__setattr__(self, "packets", int(self.packets))
        if len(self.parties) < 2:
            raise ValueError(f"need at least 2 parties, got {len(self.parties)}")
        names = [party.name for party in self.parties]
        if len(set(names)) != len(names):
            raise ValueError(f"party names must be unique, got {names}")
        if len(self.edges) < 2:
            raise ValueError(f"need at least 2 edges, got {len(self.edges)}")
        known = set(names)
        for index, edge in enumerate(self.edges):
            if edge.seller not in known:
                raise ValueError(f"edge {index} seller {edge.seller!r} is not a party")
            if edge.buyer not in known:
                raise ValueError(f"edge {index} buyer {edge.buyer!r} is not a party")
        if self.packets < 1:
            raise ValueError(f"packets must be >= 1, got {self.packets}")
        steps = self.packets * (len(self.edges) + 1)
        if steps > MAX_DECISION_STEPS:
            raise ValueError(
                f"spec unrolls into {steps} decision steps; the bound is "
                f"{MAX_DECISION_STEPS} (packets * (n_edges + 1))"
            )
        if not (math.isfinite(self.p0) and self.p0 > 0.0):
            raise ValueError(f"p0 must be finite and > 0, got {self.p0}")
        if not math.isfinite(self.mu):
            raise ValueError(f"mu must be finite, got {self.mu}")
        if not (math.isfinite(self.sigma) and self.sigma > 0.0):
            raise ValueError(f"sigma must be finite and > 0, got {self.sigma}")
        max_tau = max(edge.tau for edge in self.edges)
        if not (math.isfinite(self.eps) and 0.0 < self.eps < max_tau):
            raise ValueError(
                f"need 0 < eps < max edge tau ({max_tau}), got {self.eps}"
            )
        if self.step_time is not None and not (
            math.isfinite(self.step_time) and self.step_time > 0.0
        ):
            raise ValueError(
                f"step_time must be finite and > 0 (or None), got {self.step_time}"
            )
        if not isinstance(self.law, LawSpec):
            raise ValueError(f"law must be a LawSpec, got {type(self.law).__name__}")

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #

    @property
    def n_parties(self) -> int:
        return len(self.parties)

    @property
    def leader(self) -> str:
        """The revealer: buyer of the last edge (the paper's Alice)."""
        return self.edges[-1].buyer

    @property
    def dt(self) -> float:
        """Effective market step: ``step_time`` or the slowest ``tau``."""
        if self.step_time is not None:
            return self.step_time
        return max(edge.tau for edge in self.edges)

    def party(self, name: str) -> GraphParty:
        for party in self.parties:
            if party.name == name:
                return party
        raise KeyError(name)

    def agent(self, name: str) -> AgentParameters:
        party = self.party(name)
        return AgentParameters(alpha=party.alpha, r=party.r)

    def edge_timelock(self, index: int) -> float:
        """Refund span of edge ``index``'s packet contracts.

        Explicit ``timelock`` wins; the default survives the whole
        round -- the remaining locks, the reveal, the observation lag,
        and two confirmations -- staggered so earlier-locked contracts
        expire later (the paper's ``t8 > t7`` ordering).
        """
        edge = self.edges[index]
        if edge.timelock is not None:
            return edge.timelock
        remaining_steps = len(self.edges) - index
        return remaining_steps * self.dt + self.eps + 2.0 * edge.tau

    # ------------------------------------------------------------------ #
    # the paper's two-party game as a degenerate spec
    # ------------------------------------------------------------------ #

    def is_paper_shape(self) -> bool:
        """Whether this is exactly the paper's Section III game.

        Two parties, one packet, the canonical two edges (numeraire
        first, one unit of the volatile token back), no collateral, no
        schedule overrides -- the closed-form solver then applies
        verbatim and the swap-graph solve must match it to <= 1e-9.
        """
        if len(self.parties) != 2 or len(self.edges) != 2 or self.packets != 1:
            return False
        if self.step_time is not None:
            return False
        if not self.law.is_lognormal:
            # closed-form delegation is a lognormal-only shortcut; other
            # laws take the generic lattice path
            return False
        first, second = self.edges
        alice, bob = self.parties[0].name, self.parties[1].name
        return (
            first.seller == alice
            and first.buyer == bob
            and not first.volatile
            and first.timelock is None
            and first.collateral == 0.0
            and second.seller == bob
            and second.buyer == alice
            and second.volatile
            and second.amount == 1.0
            and second.timelock is None
            and second.collateral == 0.0
            and 0.0 < self.eps < second.tau
        )

    def to_swap_parameters(self) -> SwapParameters:
        """The equivalent :class:`SwapParameters` (paper-shaped specs)."""
        if not self.is_paper_shape():
            raise ValueError("spec is not the paper's two-party shape")
        first, second = self.edges
        return SwapParameters(
            alice=self.agent(self.parties[0].name),
            bob=self.agent(self.parties[1].name),
            tau_a=first.tau,
            tau_b=second.tau,
            eps_b=self.eps,
            p0=self.p0,
            mu=self.mu,
            sigma=self.sigma,
            law=self.law,
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def two_party(
        params: Optional[SwapParameters] = None,
        pstar: float = 2.0,
        packets: int = 1,
        collateral: float = 0.0,
    ) -> "SwapGraphSpec":
        """The paper's game (optionally packetized) as a graph spec.

        ``packets=1, collateral=0`` yields a spec for which
        :meth:`is_paper_shape` holds, so solves delegate to the
        closed-form solver and reproduce it exactly.
        """
        if params is None:
            params = SwapParameters.default()
        if not (math.isfinite(pstar) and pstar > 0.0):
            raise ValueError(f"pstar must be finite and > 0, got {pstar}")
        return SwapGraphSpec(
            parties=(
                GraphParty("alice", alpha=params.alice.alpha, r=params.alice.r),
                GraphParty("bob", alpha=params.bob.alpha, r=params.bob.r),
            ),
            edges=(
                GraphEdge(
                    seller="alice",
                    buyer="bob",
                    amount=float(pstar),
                    volatile=False,
                    tau=params.tau_a,
                    collateral=collateral,
                ),
                GraphEdge(
                    seller="bob",
                    buyer="alice",
                    amount=1.0,
                    volatile=True,
                    tau=params.tau_b,
                    collateral=collateral,
                ),
            ),
            packets=packets,
            p0=params.p0,
            mu=params.mu,
            sigma=params.sigma,
            eps=params.eps_b,
            law=params.law,
        )

    @staticmethod
    def cycle(
        n_parties: int,
        amount: float = 1.0,
        packets: int = 1,
        alpha: float = 0.3,
        r: float = 0.01,
        tau: float = 3.0,
        p0: float = 2.0,
        mu: float = 0.002,
        sigma: float = 0.1,
        eps: float = 1.0,
        collateral: float = 0.0,
        law: Optional[LawSpec] = None,
    ) -> "SwapGraphSpec":
        """An ``n``-party cycle: party ``i`` sells to party ``i+1``.

        The last edge (claimed by the leader ``P0``) carries the
        volatile token; the others are numeraire-valued, so the cycle
        generalises the paper's stable-for-volatile trade. The volatile
        edge's amount is ``amount / p0`` so every leg is worth
        ``amount`` at the starting price -- an unbalanced cycle is
        never initiated by the losing party.
        """
        if n_parties < 2:
            raise ValueError(f"a cycle needs >= 2 parties, got {n_parties}")
        names = [f"P{i}" for i in range(n_parties)]
        parties = tuple(GraphParty(name, alpha=alpha, r=r) for name in names)
        edges = tuple(
            GraphEdge(
                seller=names[i],
                buyer=names[(i + 1) % n_parties],
                amount=amount / p0 if i == n_parties - 1 else amount,
                volatile=(i == n_parties - 1),
                tau=tau,
                collateral=collateral,
            )
            for i in range(n_parties)
        )
        return SwapGraphSpec(
            parties=parties,
            edges=edges,
            packets=packets,
            p0=p0,
            mu=mu,
            sigma=sigma,
            eps=eps,
            law=LOGNORMAL if law is None else _coerce_law(law),
        )

    def replace(self, **overrides) -> "SwapGraphSpec":
        """A copy with top-level fields replaced.

        ``law`` accepts a :class:`LawSpec`, spec dict, or shorthand string.
        """
        if "law" in overrides:
            overrides = dict(overrides)
            overrides["law"] = _coerce_law(overrides["law"])
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # serialization (exact round-trip; keys the service cache)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Exact, JSON-safe representation (canonical wire/cache form).

        ``law`` is emitted only for non-default laws so historical
        lognormal payloads (and their request keys) are unchanged.
        """
        out: Dict[str, object] = {
            "parties": [party.to_dict() for party in self.parties],
            "edges": [edge.to_dict() for edge in self.edges],
            "packets": self.packets,
            "p0": self.p0,
            "mu": self.mu,
            "sigma": self.sigma,
            "eps": self.eps,
            "step_time": self.step_time,
        }
        if not self.law.is_lognormal:
            out["law"] = self.law.to_dict()
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SwapGraphSpec":
        """Rebuild from a :meth:`to_dict` payload."""
        if not isinstance(data, dict):
            raise ValueError(f"spec must be an object, got {type(data).__name__}")
        known = {
            "parties", "edges", "packets", "p0", "mu", "sigma", "eps", "step_time",
            "law",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields {sorted(unknown)}")
        raw_parties = data.get("parties")
        raw_edges = data.get("edges")
        if not isinstance(raw_parties, (list, tuple)):
            raise ValueError("spec needs a 'parties' array")
        if not isinstance(raw_edges, (list, tuple)):
            raise ValueError("spec needs an 'edges' array")
        step_time = data.get("step_time")
        return SwapGraphSpec(
            parties=tuple(GraphParty.from_dict(p) for p in raw_parties),
            edges=tuple(GraphEdge.from_dict(e) for e in raw_edges),
            packets=int(data.get("packets", 1)),  # type: ignore[arg-type]
            p0=float(data.get("p0", 2.0)),  # type: ignore[arg-type]
            mu=float(data.get("mu", 0.002)),  # type: ignore[arg-type]
            sigma=float(data.get("sigma", 0.1)),  # type: ignore[arg-type]
            eps=float(data.get("eps", 1.0)),  # type: ignore[arg-type]
            step_time=None if step_time is None else float(step_time),  # type: ignore[arg-type]
            law=_coerce_law(data.get("law", LOGNORMAL)),
        )
