"""Solve a swap graph: equilibrium utilities, thresholds, success rate.

:func:`solve_swap_graph` has two modes:

* ``closed_form`` -- specs that are exactly the paper's two-party game
  (:meth:`SwapGraphSpec.is_paper_shape`) delegate to the analytic
  solver :func:`repro.core.solver.solve_swap_game`, so the degenerate
  ``k=1, n=2`` case reproduces the paper's thresholds and utilities to
  machine precision (pinned to ``<= 1e-9`` in
  ``tests/swapgraph/test_parity.py``);
* ``lattice`` -- everything else unrolls into the recombining DAG of
  :mod:`repro.swapgraph.build` and is solved by generic backward
  induction (:func:`repro.games.solver.solve_game`).

Per-step policies are reported as *continuation intervals* in price:
within one lattice level the equilibrium action is monotone-ish in
price, so maximal runs of ``cont`` states become intervals whose
boundaries sit at the geometric midpoint between adjacent lattice
prices (safely away from the lattice points themselves -- the chain
replay in :mod:`repro.swapgraph.replay` re-evaluates the policy from
these intervals and must reproduce the solver's decisions exactly on
lattice-sampled paths). The graph-level success rate is the
policy-following probability of reaching the success terminal,
conditional on the first actor continuing at the root -- the graph
analogue of the paper's Eq. (31).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.solver import solve_swap_game
from repro.games.solver import SolvedGame, solve_game
from repro.games.tree import ChanceNode, DecisionNode, GameNode, TerminalNode
from repro.swapgraph.build import SUCCESS_LABEL, SwapGraphGame, build_swap_graph_game
from repro.swapgraph.metrics import observe_graph_solve
from repro.swapgraph.model import LOCK, REVEAL
from repro.swapgraph.spec import SwapGraphSpec

__all__ = ["StepPolicy", "SwapGraphEquilibrium", "solve_swap_graph"]

CLOSED_FORM = "closed_form"
LATTICE = "lattice"

_INF = float("inf")


@dataclass(frozen=True)
class StepPolicy:
    """Equilibrium policy of one decision step.

    ``cont_intervals`` is the union of price intervals on which the
    actor continues (``hi`` may be ``inf``); ``threshold`` is the lower
    endpoint when the region is a single upper ray, the common case
    matching the paper's reveal threshold, else ``None``.
    """

    step: int
    round: int
    kind: str  # "lock" | "reveal"
    actor: str
    edge: Optional[int]
    time: float
    threshold: Optional[float]
    cont_intervals: Tuple[Tuple[float, float], ...]

    def continues_at(self, price: float) -> bool:
        """Whether the equilibrium action at ``price`` is ``cont``."""
        for lo, hi in self.cont_intervals:
            if lo <= price <= hi:
                return True
        return False

    def to_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "round": self.round,
            "kind": self.kind,
            "actor": self.actor,
            "edge": self.edge,
            "time": self.time,
            "threshold": self.threshold,
            "cont_intervals": [
                [lo, None if math.isinf(hi) else hi]
                for lo, hi in self.cont_intervals
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "StepPolicy":
        threshold = data.get("threshold")
        edge = data.get("edge")
        return StepPolicy(
            step=int(data["step"]),  # type: ignore[arg-type]
            round=int(data["round"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            actor=str(data["actor"]),
            edge=None if edge is None else int(edge),  # type: ignore[arg-type]
            time=float(data["time"]),  # type: ignore[arg-type]
            threshold=None if threshold is None else float(threshold),  # type: ignore[arg-type]
            cont_intervals=tuple(
                (float(lo), _INF if hi is None else float(hi))
                for lo, hi in data.get("cont_intervals", ())  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class SwapGraphEquilibrium:
    """Solved swap graph.

    Attributes
    ----------
    spec:
        The graph that was solved.
    mode:
        ``"closed_form"`` (paper-shaped delegation) or ``"lattice"``.
    utilities:
        Party name -> equilibrium expected utility at the root.
    success_rate:
        Probability of full completion (every packet of every edge
        claimed), conditional on the root actor continuing.
    initiated:
        Whether the root actor continues in equilibrium.
    steps:
        Per-step equilibrium policies, in step order.
    n_lattice:
        Per-step branching of the price lattice (``None`` closed-form).
    node_count:
        Distinct game nodes solved (``0`` closed-form).
    """

    spec: SwapGraphSpec
    mode: str
    utilities: Dict[str, float]
    success_rate: float
    initiated: bool
    steps: Tuple[StepPolicy, ...]
    n_lattice: Optional[int]
    node_count: int

    @property
    def unconditional_success_rate(self) -> float:
        """Success probability without conditioning on initiation."""
        return self.success_rate if self.initiated else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "mode": self.mode,
            "utilities": dict(self.utilities),
            "success_rate": self.success_rate,
            "initiated": self.initiated,
            "steps": [step.to_dict() for step in self.steps],
            "n_lattice": self.n_lattice,
            "node_count": self.node_count,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SwapGraphEquilibrium":
        n_lattice = data.get("n_lattice")
        return SwapGraphEquilibrium(
            spec=SwapGraphSpec.from_dict(data["spec"]),  # type: ignore[arg-type]
            mode=str(data["mode"]),
            utilities={
                str(name): float(value)  # type: ignore[arg-type]
                for name, value in dict(data["utilities"]).items()  # type: ignore[arg-type]
            },
            success_rate=float(data["success_rate"]),  # type: ignore[arg-type]
            initiated=bool(data["initiated"]),
            steps=tuple(
                StepPolicy.from_dict(step) for step in data.get("steps", ())  # type: ignore[union-attr]
            ),
            n_lattice=None if n_lattice is None else int(n_lattice),  # type: ignore[arg-type]
            node_count=int(data.get("node_count", 0)),  # type: ignore[arg-type]
        )


def solve_swap_graph(
    spec: SwapGraphSpec, n_lattice: Optional[int] = None
) -> SwapGraphEquilibrium:
    """Solve ``spec`` (closed form when paper-shaped, else lattice)."""
    start = _time.perf_counter()
    if n_lattice is None and spec.is_paper_shape():
        result = _solve_closed_form(spec)
    else:
        result = _solve_lattice(spec, n_lattice)
    observe_graph_solve(
        mode=result.mode,
        seconds=_time.perf_counter() - start,
        nodes=result.node_count,
    )
    return result


# ---------------------------------------------------------------------- #
# closed-form delegation (the paper's two-party game)
# ---------------------------------------------------------------------- #


def _solve_closed_form(spec: SwapGraphSpec) -> SwapGraphEquilibrium:
    params = spec.to_swap_parameters()
    pstar = spec.edges[0].amount
    equilibrium = solve_swap_game(params, pstar=pstar)
    grid = params.grid
    alice = spec.parties[0].name
    bob = spec.parties[1].name

    if equilibrium.initiated:
        utilities = {
            alice: equilibrium.alice_t1.cont,
            bob: equilibrium.bob_t1.cont,
        }
        root_intervals: Tuple[Tuple[float, float], ...] = ((0.0, _INF),)
        root_threshold: Optional[float] = 0.0
    else:
        utilities = {
            alice: equilibrium.alice_t1.stop,
            bob: equilibrium.bob_t1.stop,
        }
        root_intervals = ()
        root_threshold = None

    bob_intervals = tuple(equilibrium.bob_t2_region.intervals)
    steps = (
        StepPolicy(
            step=0,
            round=0,
            kind=LOCK,
            actor=alice,
            edge=0,
            time=grid.t1,
            threshold=root_threshold,
            cont_intervals=root_intervals,
        ),
        StepPolicy(
            step=1,
            round=0,
            kind=LOCK,
            actor=bob,
            edge=1,
            time=grid.t2,
            threshold=_ray_threshold(bob_intervals),
            cont_intervals=bob_intervals,
        ),
        StepPolicy(
            step=2,
            round=0,
            kind=REVEAL,
            actor=alice,
            edge=None,
            time=grid.t3,
            threshold=equilibrium.p3_threshold,
            cont_intervals=((equilibrium.p3_threshold, _INF),),
        ),
    )
    return SwapGraphEquilibrium(
        spec=spec,
        mode=CLOSED_FORM,
        utilities=utilities,
        success_rate=equilibrium.success_rate,
        initiated=equilibrium.initiated,
        steps=steps,
        n_lattice=None,
        node_count=0,
    )


def _ray_threshold(
    intervals: Tuple[Tuple[float, float], ...]
) -> Optional[float]:
    """Lower endpoint when the region is a single upper ray."""
    if len(intervals) == 1 and math.isinf(intervals[0][1]):
        return intervals[0][0]
    return None


# ---------------------------------------------------------------------- #
# lattice backward induction
# ---------------------------------------------------------------------- #


def _solve_lattice(
    spec: SwapGraphSpec, n_lattice: Optional[int]
) -> SwapGraphEquilibrium:
    game = build_swap_graph_game(spec, n_lattice=n_lattice)
    solved = solve_game(game.root)
    initiated = solved.policy[id(game.root)] == "cont"
    utilities = {
        party.name: solved.values[id(game.root)].get(party.name, 0.0)
        for party in spec.parties
    }
    steps = tuple(
        _step_policy(game, solved, s) for s in range(len(game.steps))
    )
    return SwapGraphEquilibrium(
        spec=spec,
        mode=LATTICE,
        utilities=utilities,
        success_rate=_success_probability(game.root, solved),
        initiated=initiated,
        steps=steps,
        n_lattice=game.n_lattice,
        node_count=game.node_count,
    )


def _step_policy(game: SwapGraphGame, solved: SolvedGame, s: int) -> StepPolicy:
    step = game.steps[s]
    pairs = sorted(
        (game.prices[s][state], solved.policy[id(node)] == "cont")
        for state, node in game.levels[s].items()
    )
    intervals = _cont_intervals(pairs)
    return StepPolicy(
        step=step.index,
        round=step.round,
        kind=step.kind,
        actor=step.actor,
        edge=step.edge,
        time=step.time,
        threshold=_ray_threshold(intervals),
        cont_intervals=intervals,
    )


def _cont_intervals(
    pairs: List[Tuple[float, bool]]
) -> Tuple[Tuple[float, float], ...]:
    """Merge sorted ``(price, continues)`` samples into price intervals.

    Boundaries between a stop state and an adjacent cont state sit at
    their geometric midpoint; runs touching the extremes extend to
    ``0`` / ``inf`` so the policy generalises off-lattice.
    """
    intervals: List[Tuple[float, float]] = []
    run_start: Optional[int] = None
    for index in range(len(pairs) + 1):
        continuing = index < len(pairs) and pairs[index][1]
        if continuing and run_start is None:
            run_start = index
        elif not continuing and run_start is not None:
            lo = (
                0.0
                if run_start == 0
                else math.sqrt(pairs[run_start - 1][0] * pairs[run_start][0])
            )
            hi = (
                _INF
                if index == len(pairs)
                else math.sqrt(pairs[index - 1][0] * pairs[index][0])
            )
            intervals.append((lo, hi))
            run_start = None
    return tuple(intervals)


def _success_probability(root: GameNode, solved: SolvedGame) -> float:
    """Policy-following probability of the success terminal.

    The root decision is forced to ``cont`` (conditional-on-initiation,
    the paper's Eq. (31) convention); all other decisions follow the
    solved policy. Iterative over the DAG with memoisation.
    """
    prob: Dict[int, float] = {}
    stack: List[Tuple[GameNode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in prob:
            continue
        if isinstance(node, TerminalNode):
            prob[id(node)] = 1.0 if node.label == SUCCESS_LABEL else 0.0
            continue
        if isinstance(node, DecisionNode):
            action = "cont" if node is root else solved.policy[id(node)]
            child = node.actions[action]
            if not expanded:
                stack.append((node, True))
                if id(child) not in prob:
                    stack.append((child, False))
                continue
            prob[id(node)] = prob[id(child)]
        else:
            if not expanded:
                stack.append((node, True))
                stack.extend(
                    (child, False)
                    for _p, child in node.branches
                    if id(child) not in prob
                )
                continue
            prob[id(node)] = sum(
                p * prob[id(child)] for p, child in node.branches
            )
    return prob[id(root)]
