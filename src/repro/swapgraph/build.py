"""Unroll a :class:`SwapGraphSpec` into a recombining game DAG.

The market clock advances by ``spec.dt`` between consecutive decision
steps and the one-step price *growth factor* is discretised once
(:func:`repro.games.lattice.discretize_law` on a unit-spot law built
from ``spec.law`` -- lognormal by default, or any registered price
law), so a
price state at step ``s`` is the multiset of factors drawn so far --
``C(s + m - 1, m - 1)`` distinct states instead of ``m^s`` paths. Each
state owns one :class:`~repro.games.tree.DecisionNode` (continue/stop
by that step's actor) whose ``cont`` branch is a chance node fanning
out to the ``m`` successor states of the next step; the nodes are
shared, so the tree is a DAG and backward induction is linear in the
number of distinct states.

Mid-game claim flows (non-final reveals) ride on the ``cont`` action's
``rewards``; stop and success payoffs live in terminals. See
:mod:`repro.swapgraph.model` for the flow conventions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Dict, Optional, Tuple

from repro.games.lattice import LatticeTransition, discretize_law
from repro.games.tree import ChanceNode, DecisionNode, GameNode, TerminalNode
from repro.stochastic.law import observe_law, step_kernel
from repro.swapgraph.model import (
    REVEAL,
    GameStep,
    build_steps,
    round_claim_flows,
    stop_payoffs,
    success_payoffs,
)
from repro.swapgraph.spec import SwapGraphSpec

__all__ = [
    "SwapGraphGame",
    "build_swap_graph_game",
    "auto_lattice_size",
    "SUCCESS_LABEL",
    "DEFAULT_STATE_BUDGET",
    "MAX_STATES",
]

SUCCESS_LABEL = "success"

#: Default budget on distinct decision states (``sum_s C(s+m-1, m-1)``)
#: when no explicit lattice size is requested.
DEFAULT_STATE_BUDGET = 40_000

#: Hard cap on distinct decision states for explicit lattice sizes.
MAX_STATES = 2_000_000

_MIN_LATTICE = 3
_MAX_LATTICE = 64


def _total_states(n_steps: int, m: int) -> int:
    """``sum_{s<n_steps} C(s+m-1, m-1) = C(n_steps-1+m, m)`` (hockey stick)."""
    return math.comb(n_steps - 1 + m, m)


def auto_lattice_size(n_steps: int, budget: int = DEFAULT_STATE_BUDGET) -> int:
    """Largest per-step branching that keeps the DAG within ``budget``.

    Shallow games (a 3-party single-packet cycle has 4 steps) get fine
    lattices; deep packetized games trade price resolution for depth.
    """
    best = _MIN_LATTICE
    for m in range(_MIN_LATTICE, _MAX_LATTICE + 1):
        if _total_states(n_steps, m) > budget:
            break
        best = m
    return best


@dataclass(frozen=True)
class SwapGraphGame:
    """The unrolled game plus the structure needed to interpret it.

    ``levels[s]`` maps a price state -- the sorted tuple of factor
    indices drawn before step ``s`` -- to that state's decision node;
    ``prices[s]`` holds the corresponding spot prices.
    """

    spec: SwapGraphSpec
    steps: Tuple[GameStep, ...]
    transition: LatticeTransition
    root: GameNode
    levels: Tuple[Dict[Tuple[int, ...], DecisionNode], ...]
    prices: Tuple[Dict[Tuple[int, ...], float], ...]
    n_lattice: int
    node_count: int


def build_swap_graph_game(
    spec: SwapGraphSpec, n_lattice: Optional[int] = None
) -> SwapGraphGame:
    """Build the recombining continue/stop game for ``spec``."""
    steps = build_steps(spec)
    n_steps = len(steps)
    if n_lattice is None:
        m = auto_lattice_size(n_steps)
    else:
        m = int(n_lattice)
        if m < _MIN_LATTICE:
            raise ValueError(f"n_lattice must be >= {_MIN_LATTICE}, got {m}")
        if _total_states(n_steps, m) > MAX_STATES:
            raise ValueError(
                f"n_lattice={m} over {n_steps} steps needs "
                f"{_total_states(n_steps, m)} states (cap {MAX_STATES}); "
                "use fewer packets/edges or a coarser lattice"
            )

    law = step_kernel(spec.law, spec.mu, spec.sigma, spec.dt).law(1.0)
    transition = discretize_law(law, m)
    observe_law(spec.law.kind, "lattice")
    factors = tuple(transition.points)
    probs = tuple(transition.probabilities)

    levels: list = []
    prices: list = []
    node_count = 0
    next_level: Dict[Tuple[int, ...], DecisionNode] = {}

    for s in reversed(range(n_steps)):
        step = steps[s]
        level: Dict[Tuple[int, ...], DecisionNode] = {}
        level_prices: Dict[Tuple[int, ...], float] = {}
        for state in combinations_with_replacement(range(m), s):
            price = spec.p0
            for i in state:
                price *= factors[i]
            level_prices[state] = price

            stop_node = TerminalNode(
                stop_payoffs(spec, steps, step, price),
                label=f"stop@{s}",
            )
            node_count += 1

            rewards = None
            if s == n_steps - 1:
                cont_child: GameNode = TerminalNode(
                    success_payoffs(spec, steps, step, price),
                    label=SUCCESS_LABEL,
                )
                node_count += 1
            else:
                branches = tuple(
                    (probs[i], next_level[tuple(sorted(state + (i,)))])
                    for i in range(m)
                )
                cont_child = ChanceNode(branches, label=f"price@{s + 1}")
                node_count += 1
                if step.kind == REVEAL:
                    rewards = {"cont": round_claim_flows(spec, step, price)}

            level[state] = DecisionNode(
                player=step.actor,
                actions={"cont": cont_child, "stop": stop_node},
                label=f"s{s}",
                rewards=rewards,
            )
            node_count += 1
        levels.append(level)
        prices.append(level_prices)
        next_level = level

    levels.reverse()
    prices.reverse()
    root = levels[0][()]
    return SwapGraphGame(
        spec=spec,
        steps=steps,
        transition=transition,
        root=root,
        levels=tuple(levels),
        prices=tuple(prices),
        n_lattice=m,
        node_count=node_count,
    )
