"""Multi-party and packetized swaps as extensive-form games.

The paper analyzes one two-party HTLC swap; this package generalises
its model to k-packet and n-party swap *graphs* (ROADMAP item 4,
following Dubovitskaya et al., arXiv:2103.02056, and Clark et al.,
arXiv:2403.03906) on the existing substrates:

* :mod:`repro.swapgraph.spec` -- the typed :class:`SwapGraphSpec`;
* :mod:`repro.swapgraph.model` / :mod:`repro.swapgraph.build` -- the
  paper-convention payoff flows, unrolled into a recombining
  :mod:`repro.games` DAG under the shared price lattice;
* :mod:`repro.swapgraph.solver` -- backward induction to per-step
  continuation thresholds, per-party utilities and the graph-level
  success rate, with closed-form delegation for the degenerate
  ``k=1, n=2`` paper game;
* :mod:`repro.swapgraph.replay` -- protocol-level validation of the
  equilibrium strategy on ``n`` simulated chains (:mod:`repro.chain`).

Served end-to-end: ``repro.service`` (kind ``swap_graph``),
``POST /v1/swap-graph`` on both server stacks, ``SwapClient.swap_graph``
and the ``repro-swaps graph`` CLI subcommand.
"""

from repro.swapgraph.build import (
    SwapGraphGame,
    auto_lattice_size,
    build_swap_graph_game,
)
from repro.swapgraph.model import GameStep, build_steps
from repro.swapgraph.replay import SwapGraphReplay, replay_swap_graph
from repro.swapgraph.result import SwapGraphResult
from repro.swapgraph.solver import (
    StepPolicy,
    SwapGraphEquilibrium,
    solve_swap_graph,
)
from repro.swapgraph.spec import GraphEdge, GraphParty, SwapGraphSpec

__all__ = [
    "GraphParty",
    "GraphEdge",
    "SwapGraphSpec",
    "GameStep",
    "build_steps",
    "SwapGraphGame",
    "build_swap_graph_game",
    "auto_lattice_size",
    "StepPolicy",
    "SwapGraphEquilibrium",
    "solve_swap_graph",
    "SwapGraphReplay",
    "replay_swap_graph",
    "SwapGraphResult",
]
