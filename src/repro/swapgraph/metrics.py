"""Metric instrumentation for swap-graph solves and replays.

Same pattern as :func:`repro.core.solver.observe_solver`: counters are
looked up on the *current* registry at call time, so pool workers and
tests with swapped registries each observe into their own. The
request-level counter ``repro_swapgraph_requests_total`` is incremented
by the service batch path (the serving process), not here -- solver
metrics from worker processes never reach the exporter.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry

__all__ = [
    "observe_graph_solve",
    "observe_graph_replay",
    "observe_graph_request",
]

_SOLVE_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def observe_graph_solve(mode: str, seconds: float, nodes: int) -> None:
    """Record one swap-graph solve (mode, latency, DAG size)."""
    registry = get_registry()
    registry.counter(
        "repro_swapgraph_solves_total",
        "Swap-graph solves by mode.",
        labelnames=("mode",),
    ).inc(mode=mode)
    registry.histogram(
        "repro_swapgraph_solve_seconds",
        "Swap-graph solve latency in seconds.",
        buckets=_SOLVE_BUCKETS,
    ).observe(seconds)
    registry.counter(
        "repro_swapgraph_nodes_total",
        "Distinct game nodes solved across swap-graph solves.",
    ).inc(float(nodes))


def observe_graph_replay(outcome: str) -> None:
    """Record one chain-substrate replay validation (pass/fail)."""
    get_registry().counter(
        "repro_swapgraph_replays_total",
        "Swap-graph chain replays by outcome.",
        labelnames=("outcome",),
    ).inc(outcome=outcome)


def observe_graph_request(source: str) -> None:
    """Record one served swap-graph request (cache/scalar source)."""
    get_registry().counter(
        "repro_swapgraph_requests_total",
        "Swap-graph requests served, by result source.",
        labelnames=("source",),
    ).inc(source=source)
