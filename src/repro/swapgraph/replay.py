"""Protocol-level validation of a solved swap graph on simulated chains.

:func:`replay_swap_graph` re-runs the solved equilibrium strategy as an
actual HTLC protocol: one :class:`~repro.chain.chain.Blockchain` per
edge on a shared clock, a fresh secret per packet round, real deploy /
claim / refund transactions with the spec's confirmation times and the
mempool preimage-observation channel (the paper's ``t4``). Prices are
exogenous: lattice-mode equilibria sample paths from the *same
discretised* one-step law the game was solved on (so the empirical
success frequency is a pure Monte-Carlo estimate of the game's
prediction, no discretisation gap), closed-form equilibria sample the
continuous GBM at the paper's decision times.

A path succeeds when every packet of every edge is actually CLAIMED on
chain; a policy-complete path whose mechanics fail (a claim missing
its timelock, say) counts as a mechanical failure, not a success --
that is precisely the protocol-level bug this validator exists to
catch. The root decision is forced to ``continue`` so the empirical
rate estimates the success rate *conditional on initiation*, matching
:attr:`SwapGraphEquilibrium.success_rate` (paper Eq. (31)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chain import Blockchain, SimulationClock, new_secret
from repro.chain.htlc import HTLC, HTLCState
from repro.games.lattice import discretize_law
from repro.stochastic.law import step_kernel
from repro.stochastic.rng import RandomState
from repro.swapgraph.metrics import observe_graph_replay
from repro.swapgraph.model import LOCK, REVEAL
from repro.swapgraph.solver import SwapGraphEquilibrium
from repro.swapgraph.spec import SwapGraphSpec

__all__ = ["SwapGraphReplay", "replay_swap_graph"]

DEFAULT_REPLAY_PATHS = 400


@dataclass(frozen=True)
class SwapGraphReplay:
    """Monte-Carlo chain replay versus the game-theoretic prediction.

    ``passed`` is a three-sigma binomial agreement check:
    ``|empirical - predicted| <= 3 * sqrt(p(1-p)/n) + 1/n``.
    """

    n_paths: int
    n_success: int
    empirical_rate: float
    predicted_rate: float
    mechanical_failures: int
    seed: int
    passed: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_paths": self.n_paths,
            "n_success": self.n_success,
            "empirical_rate": self.empirical_rate,
            "predicted_rate": self.predicted_rate,
            "mechanical_failures": self.mechanical_failures,
            "seed": self.seed,
            "passed": self.passed,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SwapGraphReplay":
        return SwapGraphReplay(
            n_paths=int(data["n_paths"]),  # type: ignore[arg-type]
            n_success=int(data["n_success"]),  # type: ignore[arg-type]
            empirical_rate=float(data["empirical_rate"]),  # type: ignore[arg-type]
            predicted_rate=float(data["predicted_rate"]),  # type: ignore[arg-type]
            mechanical_failures=int(data.get("mechanical_failures", 0)),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            passed=bool(data["passed"]),
        )


def replay_swap_graph(
    equilibrium: SwapGraphEquilibrium,
    n_paths: int = DEFAULT_REPLAY_PATHS,
    seed: int = 0,
) -> SwapGraphReplay:
    """Replay the equilibrium strategy ``n_paths`` times on real chains."""
    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    spec = equilibrium.spec
    rng = RandomState(seed)
    sampler = _path_sampler(equilibrium)

    n_success = 0
    mechanical_failures = 0
    for _ in range(n_paths):
        prices = sampler(rng)
        completed, mechanics_ok = _run_protocol(spec, equilibrium, prices, rng)
        if completed and mechanics_ok:
            n_success += 1
        elif completed:
            mechanical_failures += 1

    empirical = n_success / n_paths
    predicted = equilibrium.success_rate
    tolerance = (
        3.0 * math.sqrt(max(predicted * (1.0 - predicted), 0.0) / n_paths)
        + 1.0 / n_paths
    )
    passed = mechanical_failures == 0 and abs(empirical - predicted) <= tolerance
    observe_graph_replay("pass" if passed else "fail")
    return SwapGraphReplay(
        n_paths=n_paths,
        n_success=n_success,
        empirical_rate=empirical,
        predicted_rate=predicted,
        mechanical_failures=mechanical_failures,
        seed=seed,
        passed=passed,
    )


# ---------------------------------------------------------------------- #
# exogenous price paths
# ---------------------------------------------------------------------- #


def _path_sampler(equilibrium: SwapGraphEquilibrium):
    """A ``rng -> per-step prices`` sampler matching the solve mode."""
    spec = equilibrium.spec
    times = [step.time for step in equilibrium.steps]
    if equilibrium.mode == "lattice" and equilibrium.n_lattice is not None:
        law = step_kernel(spec.law, spec.mu, spec.sigma, spec.dt).law(1.0)
        transition = discretize_law(law, equilibrium.n_lattice)
        factors = tuple(transition.points)
        cumulative = []
        acc = 0.0
        for p in transition.probabilities:
            acc += p
            cumulative.append(acc)
        cumulative[-1] = 1.0

        def sample_lattice(rng: RandomState) -> List[float]:
            prices = [spec.p0]
            price = spec.p0
            for _ in range(len(times) - 1):
                u = float(rng.uniform())
                index = _bisect(cumulative, u)
                price *= factors[index]
                prices.append(price)
            return prices

        return sample_lattice

    def sample_gbm(rng: RandomState) -> List[float]:
        prices = [spec.p0]
        price = spec.p0
        for previous, current in zip(times, times[1:]):
            dt = current - previous
            z = float(rng.standard_normal())
            price *= math.exp(
                (spec.mu - 0.5 * spec.sigma**2) * dt
                + spec.sigma * math.sqrt(dt) * z
            )
            prices.append(price)
        return prices

    return sample_gbm


def _bisect(cumulative: List[float], u: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if u <= cumulative[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


# ---------------------------------------------------------------------- #
# one protocol episode on n chains
# ---------------------------------------------------------------------- #


def _run_protocol(
    spec: SwapGraphSpec,
    equilibrium: SwapGraphEquilibrium,
    prices: List[float],
    rng: RandomState,
) -> Tuple[bool, bool]:
    """Execute one episode; returns ``(policy_completed, mechanics_ok)``.

    ``mechanics_ok`` checks that every deployed contract resolved the
    way the game model assumes: claimed for completed rounds, refunded
    for the doomed locks of an abandoned round.
    """
    clock = SimulationClock()
    chains = []
    for index, edge in enumerate(spec.edges):
        mempool_delay = spec.eps if spec.eps < edge.tau else 0.5 * edge.tau
        chain = Blockchain(
            name=f"chain-{index}",
            token=f"token-{index}",
            clock=clock,
            confirmation_time=edge.tau,
            mempool_delay=mempool_delay,
        )
        for party in spec.parties:
            chain.open_account(
                party.name,
                balance=edge.amount if party.name == edge.seller else 0.0,
            )
        chains.append(chain)

    packet = 1.0 / spec.packets
    contracts: List[Tuple[int, int, HTLC]] = []  # (round, edge, contract)
    revealed_rounds = set()
    secret = None
    completed = True

    for policy in equilibrium.steps:
        clock.advance_to(policy.time)
        price = prices[policy.step]
        # the root decision is forced: the empirical rate estimates the
        # success probability conditional on initiation (Eq. (31))
        if policy.step > 0 and not policy.continues_at(price):
            completed = False
            break
        if policy.kind == LOCK and policy.edge is not None:
            edge = spec.edges[policy.edge]
            if policy.edge == 0:
                secret = new_secret(rng)  # fresh hashlock per packet round
            assert secret is not None
            _tx, contract = chains[policy.edge].deploy_htlc(
                sender=edge.seller,
                recipient=edge.buyer,
                amount=edge.amount * packet,
                hashlock=secret.hashlock,
                expiry=policy.time + spec.edge_timelock(policy.edge),
            )
            contracts.append((policy.round, policy.edge, contract))
        elif policy.kind == REVEAL:
            assert secret is not None
            _run_claims(spec, chains, contracts, policy.round, secret, clock)
            revealed_rounds.add(policy.round)

    clock.run_until_idle()
    mechanics_ok = _check_mechanics(contracts, revealed_rounds)
    return completed, mechanics_ok


def _run_claims(
    spec: SwapGraphSpec,
    chains: List[Blockchain],
    contracts: List[Tuple[int, int, HTLC]],
    round_index: int,
    secret,
    clock: SimulationClock,
) -> None:
    """The round's claim cascade: leader directly, others via mempool."""
    round_contracts = [
        (edge_index, contract)
        for r, edge_index, contract in contracts
        if r == round_index
    ]
    leader = spec.leader
    observers: List[Tuple[int, HTLC]] = []
    for edge_index, contract in round_contracts:
        if spec.edges[edge_index].buyer == leader:
            chains[edge_index].claim_htlc(contract, leader, secret.preimage)
        else:
            observers.append((edge_index, contract))

    if not observers:
        return
    hashlock = secret.hashlock
    observe_at = clock.now + spec.eps

    def cascade() -> None:
        preimage = None
        for chain in chains:
            preimage = chain.observe_preimage(hashlock)
            if preimage is not None:
                break
        if preimage is None:
            return  # nothing revealed; contracts will refund at expiry
        for edge_index, contract in observers:
            buyer = spec.edges[edge_index].buyer
            chains[edge_index].claim_htlc(contract, buyer, preimage)

    clock.schedule(observe_at, cascade)


def _check_mechanics(
    contracts: List[Tuple[int, int, HTLC]],
    revealed_rounds,
) -> bool:
    """Every contract must resolve as the game model assumed.

    Contracts of a round whose reveal happened must end CLAIMED; locks
    of an abandoned (never-revealed) round must end REFUNDED.
    """
    for round_index, _edge_index, contract in contracts:
        expected = (
            HTLCState.CLAIMED
            if round_index in revealed_rounds
            else HTLCState.REFUNDED
        )
        if contract.state is not expected:
            return False
    return True
