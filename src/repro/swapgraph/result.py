"""The served swap-graph result: equilibrium plus optional chain replay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.swapgraph.replay import SwapGraphReplay
from repro.swapgraph.solver import SwapGraphEquilibrium

__all__ = ["SwapGraphResult"]


@dataclass(frozen=True)
class SwapGraphResult:
    """What ``POST /v1/swap-graph`` (and the service batch path) returns."""

    equilibrium: SwapGraphEquilibrium
    replay: Optional[SwapGraphReplay] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "equilibrium": self.equilibrium.to_dict(),
            "replay": None if self.replay is None else self.replay.to_dict(),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SwapGraphResult":
        replay = data.get("replay")
        return SwapGraphResult(
            equilibrium=SwapGraphEquilibrium.from_dict(data["equilibrium"]),  # type: ignore[arg-type]
            replay=None if replay is None else SwapGraphReplay.from_dict(replay),  # type: ignore[arg-type]
        )
