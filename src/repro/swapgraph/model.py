"""Payoff model of the swap-graph game (paper conventions, graph-shaped).

Utilities follow the two-party builder (:mod:`repro.games.builders`)
exactly: each party's payoff is the value of their **final token
holdings**, discounted to ``t = 0`` at their own rate ``r``, with the
``(1 + alpha)`` success premium on claimed tokens and the GBM drift
``e^{mu * dt}`` applied to the expected future price of volatile
tokens. Every flow is therefore a deterministic function of the step
index and the price *at that step*, which is what lets the unrolled
game recombine into a lattice DAG.

Round structure (``k = packets`` rounds over ``n = len(edges)``
edges): round ``r`` runs one **lock** decision per edge in spec order
(the seller decides whether to lock one packet of ``amount/k``), then
one **reveal** decision by the leader (buyer of the last edge). A
reveal triggers the round's claim cascade -- the leader claims
directly (lag ``tau_e``), everyone else observes the preimage in the
mempool and claims ``eps`` later (lag ``eps + tau_e``), the paper's
``t4``/``t5``/``t6``. Claim flows of *non-final* rounds are booked as
per-action ``rewards`` on the reveal decision; the last round's claims
form the success terminal.

Stop terminals book, from the stop point onward: refunds of the
current round's already-locked packets (expected price drifted to the
refund time, paper ``t7``/``t8``), the liquidation value of every
never-locked packet at the stop time, and the collateral settlement
(see :func:`collateral_flows`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.swapgraph.spec import SwapGraphSpec

__all__ = [
    "GameStep",
    "build_steps",
    "stop_payoffs",
    "success_payoffs",
    "round_claim_flows",
    "claim_lag",
]

LOCK = "lock"
REVEAL = "reveal"


@dataclass(frozen=True)
class GameStep:
    """One decision step of the unrolled game."""

    index: int
    round: int
    kind: str  # "lock" | "reveal"
    actor: str
    edge: Optional[int]  # edge being locked, None at reveal steps
    time: float


def build_steps(spec: SwapGraphSpec) -> Tuple[GameStep, ...]:
    """The full decision schedule: ``packets * (n_edges + 1)`` steps."""
    steps = []
    dt = spec.dt
    index = 0
    for round_index in range(spec.packets):
        for edge_index, edge in enumerate(spec.edges):
            steps.append(
                GameStep(
                    index=index,
                    round=round_index,
                    kind=LOCK,
                    actor=edge.seller,
                    edge=edge_index,
                    time=index * dt,
                )
            )
            index += 1
        steps.append(
            GameStep(
                index=index,
                round=round_index,
                kind=REVEAL,
                actor=spec.leader,
                edge=None,
                time=index * dt,
            )
        )
        index += 1
    return tuple(steps)


def _unit_value(spec: SwapGraphSpec, edge_index: int, price: float) -> float:
    """Numeraire value of one token of edge ``edge_index`` at ``price``."""
    return price if spec.edges[edge_index].volatile else 1.0


def _drift(spec: SwapGraphSpec, edge_index: int, horizon: float) -> float:
    """Expected price growth of the edge token over ``horizon``."""
    if spec.edges[edge_index].volatile:
        return math.exp(spec.mu * horizon)
    return 1.0


def claim_lag(spec: SwapGraphSpec, edge_index: int) -> float:
    """Delay between a reveal and the claim of edge ``edge_index``.

    The leader claims directly and publishes the secret (one
    confirmation); everyone else observes it in the mempool ``eps``
    later (the paper's ``t4``) before claiming.
    """
    edge = spec.edges[edge_index]
    if edge.buyer == spec.leader:
        return edge.tau
    return spec.eps + edge.tau


def round_claim_flows(
    spec: SwapGraphSpec, step: GameStep, price: float
) -> Dict[str, float]:
    """Per-party claim flows triggered by a reveal at ``step``.

    One packet per edge: the buyer receives ``(1 + alpha)`` times the
    expected claim-time value, discounted to ``t = 0`` at their rate.
    """
    flows: Dict[str, float] = {}
    packet = 1.0 / spec.packets
    for edge_index, edge in enumerate(spec.edges):
        buyer = spec.party(edge.buyer)
        lag = claim_lag(spec, edge_index)
        amount = edge.amount * packet
        value = (
            (1.0 + buyer.alpha)
            * amount
            * _unit_value(spec, edge_index, price)
            * _drift(spec, edge_index, lag)
            * math.exp(-buyer.r * (step.time + lag))
        )
        flows[buyer.name] = flows.get(buyer.name, 0.0) + value
    return flows


def collateral_flows(
    spec: SwapGraphSpec,
    stopper: Optional[str],
    settle_times: Dict[int, float],
    initiated: bool,
) -> Dict[str, float]:
    """Collateral settlement flows (Section IV mechanism, graph-shaped).

    Every seller posts their outgoing edges' collateral at ``t = 0``
    when the game initiates (cost ``-C``, undiscounted). On settlement
    at ``settle_times[edge]`` the collateral returns to its seller --
    unless the seller is the ``stopper``, in which case the buyer of
    that edge receives it instead (no ``alpha`` premium: collateral is
    numeraire compensation, not the token the buyer wanted).
    """
    flows: Dict[str, float] = {}
    if not initiated:
        return flows
    for edge_index, edge in enumerate(spec.edges):
        if edge.collateral <= 0.0:
            continue
        seller = spec.party(edge.seller)
        when = settle_times[edge_index]
        flows[seller.name] = flows.get(seller.name, 0.0) - edge.collateral
        if stopper is not None and edge.seller == stopper:
            buyer = spec.party(edge.buyer)
            flows[buyer.name] = flows.get(buyer.name, 0.0) + (
                edge.collateral * math.exp(-buyer.r * when)
            )
        else:
            flows[seller.name] = flows.get(seller.name, 0.0) + (
                edge.collateral * math.exp(-seller.r * when)
            )
    return flows


def _locked_and_kept(
    spec: SwapGraphSpec, step: GameStep
) -> Tuple[Tuple[int, ...], Dict[int, int]]:
    """State of every edge's packets when play stops at ``step``.

    Returns ``(refunded_edges, kept_packets)``: the edges whose
    current-round packet is locked but doomed (round incomplete), and
    the number of never-locked packets each edge's seller keeps.
    """
    n_edges = len(spec.edges)
    if step.kind == LOCK:
        cutoff = step.edge if step.edge is not None else n_edges
    else:
        cutoff = n_edges
    refunded = tuple(range(cutoff))
    kept: Dict[int, int] = {}
    for edge_index in range(n_edges):
        locked_rounds = step.round + (1 if edge_index < cutoff else 0)
        kept[edge_index] = spec.packets - locked_rounds
    return refunded, kept


def stop_payoffs(
    spec: SwapGraphSpec,
    steps: Tuple[GameStep, ...],
    step: GameStep,
    price: float,
) -> Dict[str, float]:
    """Terminal payoffs when ``step.actor`` stops at ``step``.

    Claim flows of completed rounds are *not* included here -- they
    were booked as rewards on the reveal decisions that triggered them.
    """
    payoffs: Dict[str, float] = {party.name: 0.0 for party in spec.parties}
    packet = 1.0 / spec.packets
    refunded, kept = _locked_and_kept(spec, step)
    settle_times: Dict[int, float] = {}

    for edge_index in refunded:
        edge = spec.edges[edge_index]
        seller = spec.party(edge.seller)
        lock_time = steps[step.round * (len(spec.edges) + 1) + edge_index].time
        expiry = lock_time + spec.edge_timelock(edge_index)
        refund_time = expiry + edge.tau  # paper t7/t8: refund confirms tau later
        amount = edge.amount * packet
        payoffs[seller.name] += (
            amount
            * _unit_value(spec, edge_index, price)
            * _drift(spec, edge_index, refund_time - step.time)
            * math.exp(-seller.r * refund_time)
        )
        settle_times[edge_index] = refund_time

    for edge_index, n_kept in kept.items():
        if n_kept <= 0:
            if edge_index not in settle_times:
                settle_times[edge_index] = step.time
            continue
        edge = spec.edges[edge_index]
        seller = spec.party(edge.seller)
        amount = edge.amount * packet * n_kept
        payoffs[seller.name] += (
            amount
            * _unit_value(spec, edge_index, price)
            * math.exp(-seller.r * step.time)
        )
        if edge_index not in settle_times:
            settle_times[edge_index] = step.time

    for name, flow in collateral_flows(
        spec,
        stopper=step.actor,
        settle_times=settle_times,
        initiated=step.index > 0,
    ).items():
        payoffs[name] += flow
    return payoffs


def success_payoffs(
    spec: SwapGraphSpec,
    steps: Tuple[GameStep, ...],
    step: GameStep,
    price: float,
) -> Dict[str, float]:
    """Terminal payoffs when the final reveal goes through.

    Only the last round's claim flows -- earlier rounds were booked as
    rewards -- plus the collateral returns at each edge's settlement.
    """
    payoffs: Dict[str, float] = {party.name: 0.0 for party in spec.parties}
    for name, flow in round_claim_flows(spec, step, price).items():
        payoffs[name] += flow
    settle_times = {
        edge_index: step.time + claim_lag(spec, edge_index)
        for edge_index in range(len(spec.edges))
    }
    for name, flow in collateral_flows(
        spec, stopper=None, settle_times=settle_times, initiated=True
    ).items():
        payoffs[name] += flow
    return payoffs
