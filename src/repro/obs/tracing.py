"""Context-manager tracing spans with nesting and wall-clock timing.

A :func:`span` measures one stage of a pipeline::

    with span("batch.execute", stage="execute"):
        pool.map(jobs)

On exit the span records its duration into the active registry's
``repro_stage_seconds`` histogram (labelled by span name) and, when a
structured logger is installed (:mod:`repro.obs.logging`), emits one
``span`` event with the full dotted path. Spans nest per thread: the
path of a span opened inside another is ``outer.inner``, so traces read
like call stacks without any global coordination.

The accounting is wall-clock (``time.perf_counter``), which is the
quantity the serving stack optimises for; CPU-time attribution is out
of scope.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, List, Optional

from contextlib import contextmanager

from repro.obs.metrics import Registry, get_registry

__all__ = ["Span", "span", "current_span", "SPAN_METRIC"]

SPAN_METRIC = "repro_stage_seconds"

_stack = threading.local()


def _spans() -> List["Span"]:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = []
        _stack.spans = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread, or ``None``."""
    stack = _spans()
    return stack[-1] if stack else None


class Span:
    """One timed stage; use via the :func:`span` context manager."""

    __slots__ = ("name", "path", "start", "duration", "registry", "_entered")

    def __init__(self, name: str, registry: Optional[Registry] = None) -> None:
        self.name = name
        self.path = name
        self.start = 0.0
        self.duration: Optional[float] = None
        self.registry = registry
        self._entered = False

    def __enter__(self) -> "Span":
        stack = _spans()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.path = f"{parent.path}.{self.name}"
        stack.append(self)
        self._entered = True
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        stack = _spans()
        if self._entered and stack and stack[-1] is self:
            stack.pop()
        registry = self.registry if self.registry is not None else get_registry()
        registry.histogram(
            SPAN_METRIC,
            help="Wall-clock duration of traced pipeline stages.",
            labelnames=("stage",),
        ).observe(self.duration, stage=self.name)
        from repro.obs.logging import get_logger

        get_logger().log(
            "span",
            span=self.path,
            seconds=self.duration,
            ok=exc_type is None,
        )


@contextmanager
def span(name: str, registry: Optional[Registry] = None) -> Iterator[Span]:
    """Open a timed span named ``name`` (nests within any open span)."""
    record = Span(name, registry=registry)
    with record:
        yield record
