"""Observability for the serving stack: metrics, tracing, logging.

Dependency-free (stdlib only) and always-on cheap. The pieces:

* :mod:`repro.obs.metrics` -- :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments in a process-wide :class:`Registry`;
  :class:`NullRegistry` makes every instrumented path a no-op;
* :mod:`repro.obs.tracing` -- nested, wall-clock :func:`span` context
  managers feeding the ``repro_stage_seconds`` histogram;
* :mod:`repro.obs.exporters` -- Prometheus text and JSON renderings,
  atomic :func:`write_metrics`;
* :mod:`repro.obs.logging` -- structured JSON-lines event logging
  (disabled by default).

Quickstart::

    from repro.obs import get_registry, span, to_prometheus_text

    with span("sweep"):
        service.sweep([1.8, 2.0, 2.2])
    print(to_prometheus_text(get_registry()))

The instrumented surfaces and their metric names are tabulated in the
README ("Metrics & tracing").
"""

from repro.obs.exporters import to_json, to_prometheus_text, write_metrics
from repro.obs.logging import JsonLinesLogger, NullLogger, get_logger, set_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import SPAN_METRIC, Span, current_span, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "span",
    "current_span",
    "SPAN_METRIC",
    "to_prometheus_text",
    "to_json",
    "write_metrics",
    "JsonLinesLogger",
    "NullLogger",
    "get_logger",
    "set_logger",
]
