"""Process-wide metric primitives: counters, gauges, histograms.

Dependency-free observability for the serving stack. A
:class:`Registry` owns named instruments; instruments are get-or-create
(the same ``(name, labelnames)`` pair always yields the same object),
label values address independent sample streams within one instrument,
and every mutation is guarded by a per-instrument lock so concurrent
increments from worker threads are never lost.

A :class:`NullRegistry` hands out no-op instruments with the same
interface -- the overhead-control arm of the service benchmark, and the
opt-out for latency-critical embedders. The process-wide default lives
behind :func:`get_registry` / :func:`set_registry` /
:func:`use_registry`.

Metric names follow Prometheus conventions (``repro_*_total`` for
counters, ``_seconds`` for latency histograms); see
:mod:`repro.obs.exporters` for the wire formats.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]

# Latency buckets in seconds: 10us .. 10s, roughly x4 apart. Solver
# calls land mid-range, cache hits at the bottom, Monte Carlo at the top.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 5e-5, 2.5e-4, 1e-3, 4e-3, 1.6e-2, 6.4e-2, 0.25, 1.0, 4.0, 10.0,
)


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if not labels and not labelnames:
        return ()
    if len(labels) == len(labelnames):
        try:
            # same length + every labelname present => exactly equal sets
            return tuple(str(labels[name]) for name in labelnames)
        except KeyError:
            pass
    raise ValueError(
        f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
    )


class _Instrument:
    """Shared plumbing: identity, lock, per-label-value sample map."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, ...], float] = {}

    def _series(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            if not self._samples and not self.labelnames:
                return {(): 0.0}
            return dict(self._samples)

    def snapshot(self) -> List[Dict[str, object]]:
        """``[{"labels": {...}, "value": ...}, ...]`` for exporters."""
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in sorted(self._series().items())
        ]


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled sample."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count of the labelled sample (0.0 if never touched)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._samples.get(key, 0.0)


class Gauge(_Instrument):
    """A value that can go up and down (pool sizes, throughput)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled sample to ``value``."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled sample."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labelled sample."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of the labelled sample (0.0 if never set)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._samples.get(key, 0.0)


class Histogram(_Instrument):
    """Bucketed distribution with cumulative-bucket Prometheus semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        # per label-key: [per-bucket counts..., +Inf count], sum
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(self.labelnames, labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += value

    def series(
        self,
    ) -> Dict[Tuple[str, ...], Tuple[List[int], float, int]]:
        """Per-label ``(bucket_counts, sum, count)`` (non-cumulative)."""
        with self._lock:
            return {
                key: (list(counts), self._sums[key], sum(counts))
                for key, counts in self._counts.items()
            }

    def count(self, **labels: str) -> int:
        """Total observations in the labelled series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            counts = self._counts.get(key)
            return sum(counts) if counts else 0

    def sum(self, **labels: str) -> float:
        """Sum of observations in the labelled series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def snapshot(self) -> List[Dict[str, object]]:
        """Exporter view: cumulative buckets plus sum/count per series."""
        out: List[Dict[str, object]] = []
        for key, (counts, total, count) in sorted(self.series().items()):
            cumulative: List[int] = []
            running = 0
            for c in counts:
                running += c
                cumulative.append(running)
            out.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": {
                        str(bound): cum
                        for bound, cum in zip(self.buckets, cumulative)
                    },
                    "sum": total,
                    "count": count,
                }
            )
        return out


class Registry:
    """A named collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    @property
    def is_noop(self) -> bool:
        """Whether this registry discards everything (see NullRegistry)."""
        return False

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        # lock-free fast path: instruments are only ever added (reset()
        # swaps the whole dict), so a hit here is always safe to validate
        existing = self._instruments.get(name)
        if existing is None:
            with self._lock:
                existing = self._instruments.get(name)
                if existing is None:
                    instrument = cls(
                        name, help=help, labelnames=labelnames, **kwargs
                    )
                    self._instruments[name] = instrument
                    return instrument
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{existing.kind}, requested {cls.kind}"
            )
        if tuple(labelnames) != existing.labelnames:
            raise ValueError(
                f"metric {name!r} registered with labels "
                f"{existing.labelnames}, requested {tuple(labelnames)}"
            )
        return existing

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe view of every instrument (exporter substrate)."""
        return {
            inst.name: {
                "type": inst.kind,
                "help": inst.help,
                "samples": inst.snapshot(),
            }
            for inst in self.instruments()
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived embedders)."""
        with self._lock:
            self._instruments = {}


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float, **labels: str) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float, **labels: str) -> None:
        pass


class NullRegistry(Registry):
    """Same interface, zero retention: every instrument is a no-op.

    The control arm of the observability-overhead benchmark, and the
    configuration for embedders that want the instrumented code paths
    compiled out to near-nothing.
    """

    @property
    def is_noop(self) -> bool:
        return True

    def counter(self, name, help="", labelnames=()):
        return self._get_or_create(_NullCounter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._get_or_create(_NullGauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None):
        return self._get_or_create(
            _NullHistogram, name, help, labelnames, buckets=buckets
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}


_default_registry = Registry()
_registry_lock = threading.Lock()
_active: Registry = _default_registry


def get_registry() -> Registry:
    """The process-wide active registry (instrumented code reads this)."""
    return _active


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the process-wide default; returns the old one."""
    global _active
    with _registry_lock:
        previous = _active
        _active = registry
    return previous


@contextmanager
def use_registry(registry: Registry) -> Iterator[Registry]:
    """Temporarily swap the active registry (benchmarks, tests)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
