"""Registry exporters: Prometheus text format and JSON.

:func:`to_prometheus_text` renders the classic exposition format
(text/plain version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one sample
per line, histograms expanded into cumulative ``_bucket{le=...}``
series plus ``_sum`` / ``_count``. :func:`to_json` returns the plain
``registry.snapshot()`` structure for programmatic consumers, and
:func:`write_metrics` persists either format atomically (temp file +
rename) so a scraper never reads a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from repro.obs.metrics import Registry, get_registry

__all__ = ["to_prometheus_text", "to_json", "write_metrics"]


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _label_str(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def to_prometheus_text(registry: Optional[Registry] = None) -> str:
    """Render every instrument in the Prometheus exposition format."""
    registry = registry if registry is not None else get_registry()
    lines = []
    for inst in registry.instruments():
        if inst.help:
            lines.append(f"# HELP {inst.name} {_escape(inst.help)}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if inst.kind == "histogram":
            for sample in inst.snapshot():
                labels = sample["labels"]
                count = sample["count"]
                for bound, cum in sample["buckets"].items():
                    lines.append(
                        f"{inst.name}_bucket"
                        f"{_label_str(labels, {'le': str(bound)})}"
                        f" {cum}"
                    )
                lines.append(
                    f"{inst.name}_bucket{_label_str(labels, {'le': '+Inf'})} {count}"
                )
                lines.append(
                    f"{inst.name}_sum{_label_str(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(f"{inst.name}_count{_label_str(labels)} {count}")
        else:
            for sample in inst.snapshot():
                lines.append(
                    f"{inst.name}{_label_str(sample['labels'])} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: Optional[Registry] = None, indent: Optional[int] = None) -> str:
    """The registry snapshot as a JSON document."""
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_metrics(
    path, registry: Optional[Registry] = None, format: str = "prometheus"
) -> Path:
    """Atomically write the registry to ``path`` in the given format.

    ``format`` is ``"prometheus"`` (default) or ``"json"``. Returns the
    path written.
    """
    if format == "prometheus":
        payload = to_prometheus_text(registry)
    elif format == "json":
        payload = to_json(registry, indent=2) + "\n"
    else:
        raise ValueError(f"unknown metrics format {format!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=".tmp-metrics-"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target
