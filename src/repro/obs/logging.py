"""Structured JSON-lines logging.

One event per line, machine-parseable, append-friendly::

    {"ts": 1722855600.123, "event": "span", "span": "batch.execute", ...}

The process-wide logger defaults to :class:`NullLogger` (drop
everything): tracing and instrumentation are always safe to leave in
the code. Install a :class:`JsonLinesLogger` to tee events to a stream
or file -- ``repro-swaps batch --log-out events.jsonl`` does exactly
that.

Values must be JSON-encodable; anything that isn't is stringified
rather than raising, because logging must never take down the request
path.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import IO, Optional

__all__ = ["JsonLinesLogger", "NullLogger", "get_logger", "set_logger"]


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class NullLogger:
    """Drops every event (the default)."""

    def log(self, event: str, **fields: object) -> None:
        """Discard the event."""


class JsonLinesLogger:
    """Writes one JSON object per event to a stream.

    Thread-safe: concurrent ``log`` calls serialise on an internal lock
    so lines never interleave.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream: IO[str] = stream if stream is not None else io.StringIO()
        self._lock = threading.Lock()

    def log(self, event: str, **fields: object) -> None:
        """Emit ``{"ts": ..., "event": event, **fields}`` as one line."""
        record = {"ts": time.time(), "event": event}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")

    def getvalue(self) -> str:
        """Buffer contents when backed by a ``StringIO`` (tests)."""
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise TypeError("getvalue() requires a StringIO-backed logger")


_active = NullLogger()
_lock = threading.Lock()


def get_logger():
    """The process-wide structured logger (Null by default)."""
    return _active


def set_logger(logger) -> object:
    """Install ``logger`` process-wide; returns the previous one."""
    global _active
    with _lock:
        previous = _active
        _active = logger
    return previous
