"""Axis and surface specifications for precomputed equilibrium surfaces.

A surface is a dense rectilinear grid over a subset of the paper's
parameter space. Each :class:`AxisSpec` names one *axis* -- a model
quantity that varies along the grid -- and every parameter not covered
by an axis is **frozen** at the base value carried by the
:class:`SurfaceSpec`. Lookups later succeed only for requests whose
frozen parameters match the surface's bit-for-bit (same float
canonicalisation as the service request keys), so an artifact can never
silently answer for a different game.

Axis names map onto the flat parameter keys of
:meth:`repro.core.parameters.SwapParameters.as_dict` plus the two
request-level quantities ``pstar`` and ``collateral``. The paired names
``alpha`` and ``r`` set *both* agents' preference at once (the
symmetric sweeps of the paper's comparative statics).

``pstar`` must always be an axis: the builder rides the vectorised grid
engine (:func:`repro.core.engine.solve_grid`), which solves a whole
``P*`` grid per array pass, so every surface has at least that
dimension. A ``collateral`` axis must stay strictly positive -- the
``Q = 0`` basic game is *not* the ``Q -> 0`` limit of the Section IV
collateral game, and a cell straddling the two regimes would certify a
uselessly large error bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.parameters import SwapParameters

__all__ = ["AXIS_KEYS", "AxisSpec", "SurfaceSpec"]

#: Flat parameter key(s) controlled by each axis name. Paired axes
#: (``alpha``, ``r``) drive both agents; a lookup matches them only
#: when the request keeps the pair equal.
AXIS_KEYS: Dict[str, Tuple[str, ...]] = {
    "pstar": ("pstar",),
    "collateral": ("collateral",),
    "alpha": ("alpha_a", "alpha_b"),
    "r": ("r_a", "r_b"),
    "alpha_a": ("alpha_a",),
    "alpha_b": ("alpha_b",),
    "r_a": ("r_a",),
    "r_b": ("r_b",),
    "tau_a": ("tau_a",),
    "tau_b": ("tau_b",),
    "eps_b": ("eps_b",),
    "p0": ("p0",),
    "mu": ("mu",),
    "sigma": ("sigma",),
}

#: Axes whose values must stay strictly positive.
_POSITIVE_AXES = frozenset(
    {"pstar", "collateral", "tau_a", "tau_b", "eps_b", "p0", "sigma"}
)


@dataclass(frozen=True)
class AxisSpec:
    """One varying dimension of a surface: ``points`` linearly spaced
    grid values on ``[lo, hi]``."""

    name: str
    lo: float
    hi: float
    points: int

    def __post_init__(self) -> None:
        if self.name not in AXIS_KEYS:
            raise ValueError(
                f"unknown axis {self.name!r} "
                f"(expected one of {', '.join(sorted(AXIS_KEYS))})"
            )
        lo, hi = float(self.lo), float(self.hi)
        if not (math.isfinite(lo) and math.isfinite(hi) and lo < hi):
            raise ValueError(
                f"axis {self.name!r} needs finite lo < hi, got [{lo}, {hi}]"
            )
        if self.name in _POSITIVE_AXES and lo <= 0.0:
            raise ValueError(
                f"axis {self.name!r} must stay strictly positive, got lo={lo}"
            )
        points = int(self.points)
        if points < 2:
            raise ValueError(
                f"axis {self.name!r} needs >= 2 points (cells require two "
                f"edges), got {points}"
            )
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "points", points)

    def values(self) -> np.ndarray:
        """The grid coordinates along this axis."""
        return np.linspace(self.lo, self.hi, self.points)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the artifact-header entry format)."""
        return {
            "name": self.name,
            "lo": self.lo,
            "hi": self.hi,
            "points": self.points,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "AxisSpec":
        """Rebuild from one artifact-header entry."""
        if not isinstance(data, dict):
            raise ValueError(f"axis must be an object, got {type(data).__name__}")
        unknown = set(data) - {"name", "lo", "hi", "points"}
        if unknown:
            raise ValueError(f"unknown axis fields {sorted(unknown)}")
        return AxisSpec(
            name=str(data["name"]),
            lo=data["lo"],  # type: ignore[arg-type]
            hi=data["hi"],  # type: ignore[arg-type]
            points=data["points"],  # type: ignore[arg-type]
        )

    @staticmethod
    def parse(token: str) -> "AxisSpec":
        """Parse the CLI shorthand ``name:lo:hi:points``."""
        parts = token.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"axis must be name:lo:hi:points, got {token!r}"
            )
        name, lo, hi, points = parts
        try:
            return AxisSpec(
                name=name.strip(),
                lo=float(lo),
                hi=float(hi),
                points=int(points),
            )
        except ValueError as exc:
            raise ValueError(f"invalid axis {token!r}: {exc}") from None


@dataclass(frozen=True)
class SurfaceSpec:
    """A full surface description: axes plus the frozen base point.

    Parameters
    ----------
    axes:
        The varying dimensions, in artifact storage order. ``pstar``
        must be one of them; names must not overlap (``alpha`` and
        ``alpha_a`` together would fight over one parameter).
    params:
        The frozen model parameters (Table III defaults unless given).
        Axis-controlled fields are overridden per grid point.
    collateral:
        The frozen deposit ``Q`` when ``collateral`` is not an axis.
    default_tolerance:
        The artifact's default answer tolerance: a lookup with no
        explicit caller tolerance refuses any cell whose certified
        bound exceeds this.
    """

    axes: Tuple[AxisSpec, ...]
    params: SwapParameters
    collateral: float = 0.0
    default_tolerance: float = 1e-3

    def __post_init__(self) -> None:
        axes = tuple(self.axes)
        if not axes:
            raise ValueError("a surface needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if "pstar" not in names:
            raise ValueError(
                "a surface needs a 'pstar' axis (the grid engine solves "
                "whole P* grids per pass)"
            )
        claimed: set = set()
        for axis in axes:
            keys = set(AXIS_KEYS[axis.name])
            if claimed & keys:
                raise ValueError(
                    f"axis {axis.name!r} overlaps another axis on "
                    f"{sorted(claimed & keys)}"
                )
            claimed |= keys
        collateral = float(self.collateral)
        if not (math.isfinite(collateral) and collateral >= 0.0):
            raise ValueError(
                f"collateral must be finite and >= 0, got {collateral}"
            )
        tolerance = float(self.default_tolerance)
        if not (math.isfinite(tolerance) and tolerance > 0.0):
            raise ValueError(
                f"default_tolerance must be finite and > 0, got {tolerance}"
            )
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "collateral", collateral)
        object.__setattr__(self, "default_tolerance", tolerance)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid-point counts per axis (the values-block shape)."""
        return tuple(axis.points for axis in self.axes)

    @property
    def cell_shape(self) -> Tuple[int, ...]:
        """Cell counts per axis (the bounds-block shape)."""
        return tuple(axis.points - 1 for axis in self.axes)

    @property
    def n_points(self) -> int:
        """Total grid points across all axes."""
        return int(np.prod(self.shape))

    @property
    def pstar_index(self) -> int:
        """Position of the ``pstar`` axis in storage order."""
        return [axis.name for axis in self.axes].index("pstar")

    def point_at(
        self, coords: Dict[str, float]
    ) -> Tuple[SwapParameters, float, float]:
        """The solver inputs ``(params, pstar, collateral)`` for one
        grid point, given each axis' coordinate by name."""
        missing = {axis.name for axis in self.axes} - set(coords)
        if missing:
            raise ValueError(f"missing axis coordinates {sorted(missing)}")
        overrides: Dict[str, float] = {}
        pstar: float = math.nan
        collateral = self.collateral
        for axis in self.axes:
            value = float(coords[axis.name])
            for key in AXIS_KEYS[axis.name]:
                if key == "pstar":
                    pstar = value
                elif key == "collateral":
                    collateral = value
                else:
                    overrides[key] = value
        params = self.params.replace(**overrides) if overrides else self.params
        return params, pstar, collateral

    def frozen_point(self) -> Dict[str, float]:
        """The flat frozen parameter map a matching request must equal
        on every key *not* controlled by an axis."""
        flat = dict(self.params.as_dict())
        flat["collateral"] = self.collateral
        for axis in self.axes:
            for key in AXIS_KEYS[axis.name]:
                flat.pop(key, None)
        return flat

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the artifact-header core)."""
        return {
            "axes": [axis.to_dict() for axis in self.axes],
            "params": self.params.to_dict(),
            "collateral": self.collateral,
            "default_tolerance": self.default_tolerance,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "SurfaceSpec":
        """Rebuild from a decoded artifact header."""
        raw_axes = data.get("axes")
        if not isinstance(raw_axes, list):
            raise ValueError("surface header needs an 'axes' list")
        axes = tuple(AxisSpec.from_dict(entry) for entry in raw_axes)
        params = SwapParameters.from_dict(data["params"])  # type: ignore[arg-type]
        return SurfaceSpec(
            axes=axes,
            params=params,
            collateral=data.get("collateral", 0.0),  # type: ignore[arg-type]
            default_tolerance=data.get("default_tolerance", 1e-3),  # type: ignore[arg-type]
        )

    @property
    def axis_names(self) -> List[str]:
        """Axis names in storage order."""
        return [axis.name for axis in self.axes]
