"""The on-disk surface artifact: versioned, checksummed, memory-mapped.

Layout (all integers little-endian)::

    offset 0   8 bytes   magic b"REPROSRF"
    offset 8   8 bytes   u64 header length in bytes
    offset 16  N bytes   header JSON (utf-8, sorted keys)
               pad       zero bytes to the next 64-byte boundary
               block     values: float64 C-order, shape = spec.shape
               block     bounds: float64 C-order, shape = spec.cell_shape

The header carries the full :class:`~repro.surface.spec.SurfaceSpec`
(axes + frozen parameters), the ``format_version``, the service
``key_version`` the artifact was built under, builder provenance
(quadrature order, certification safety factor), and a SHA-256
``checksum`` over the two data blocks. Loading verifies the checksum
by default, then hands back two ``numpy.memmap`` views -- the blocks
are 64-byte aligned, so replicas mapping the same file share pages and
a load costs no bulk copy.

Integrity failures follow the disk-cache healing discipline
(:mod:`repro.service.cache`): a file that claims to be an artifact but
fails its header, size, or checksum is **quarantined** -- renamed to
``<path>.quarantine`` so it is never parsed again -- and a
:class:`SurfaceIntegrityError` is raised for the caller to degrade on.
A file without the magic raises :class:`SurfaceFormatError` and is
left alone (it is not ours to destroy). Every load outcome is counted
in ``repro_surface_loads_total{outcome=...}``.

Chaos hooks: ``surface_io_error`` fails the read with an ``OSError``;
``surface_corrupt`` forces the integrity path (quarantine + raise) on
an otherwise healthy file -- deterministic adversity for the service's
quarantine-and-degrade handling (see :mod:`repro.faults`).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.faults.injector import build_injector
from repro.obs.metrics import get_registry
from repro.service.cache import QUARANTINE_SUFFIX
from repro.service.keys import KEY_VERSION
from repro.surface.interpolate import Surface
from repro.surface.spec import SurfaceSpec

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SurfaceError",
    "SurfaceFormatError",
    "SurfaceIntegrityError",
    "save_surface",
    "load_surface",
]

MAGIC = b"REPROSRF"
FORMAT_VERSION = 1

#: Data blocks start on this alignment so memory-mapped views are
#: cache-line aligned regardless of header length.
_ALIGN = 64

#: Headers are small JSON; anything claiming more is rot.
_MAX_HEADER = 1 << 24


class SurfaceError(Exception):
    """Base class for surface artifact problems."""


class SurfaceFormatError(SurfaceError):
    """Not a surface artifact (bad magic) or an unsupported version."""


class SurfaceIntegrityError(SurfaceError):
    """An artifact that failed verification and was quarantined."""


def _loads_counter():
    counter = get_registry().counter(
        "repro_surface_loads_total",
        help="Surface artifact load attempts by outcome.",
        labelnames=("outcome",),
    )
    return counter


def _data_checksum(values: bytes, bounds: bytes) -> str:
    digest = hashlib.sha256()
    digest.update(values)
    digest.update(bounds)
    return digest.hexdigest()


def _padding(header_len: int) -> int:
    used = len(MAGIC) + 8 + header_len
    return (-used) % _ALIGN


def save_surface(
    surface: Surface,
    path,
    builder: Optional[Dict[str, object]] = None,
) -> str:
    """Write ``surface`` to ``path`` atomically; returns the checksum.

    ``builder`` is free-form provenance recorded in the header (the
    builder passes its quadrature order and certification knobs).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    values = np.ascontiguousarray(surface.values, dtype="<f8").tobytes()
    bounds = np.ascontiguousarray(surface.bounds, dtype="<f8").tobytes()
    checksum = _data_checksum(values, bounds)
    header = dict(surface.spec.to_dict())
    header.update(
        {
            "format": "repro-surface",
            "format_version": FORMAT_VERSION,
            "key_version": KEY_VERSION,
            "checksum": checksum,
            "max_bound": surface.max_bound,
            "builder": dict(builder or {}),
        }
    )
    encoded = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=".surface"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<Q", len(encoded)))
            handle.write(encoded)
            handle.write(b"\x00" * _padding(len(encoded)))
            handle.write(values)
            handle.write(bounds)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return checksum


def _quarantine(path: Path) -> None:
    """Move a rotten artifact aside so it is never parsed again."""
    try:
        path.rename(path.with_name(path.name + QUARANTINE_SUFFIX))
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass


def load_surface(path, injector=None, verify: bool = True) -> Surface:
    """Memory-map the artifact at ``path`` into a :class:`Surface`.

    Raises :class:`SurfaceIntegrityError` after quarantining a file
    that claims the format but fails its header, size, or checksum;
    :class:`SurfaceFormatError` (no quarantine) for files without the
    magic or with an unsupported ``format_version``; and propagates
    ``OSError`` for I/O trouble (including ``FileNotFoundError``).
    """
    loads = _loads_counter()
    try:
        surface = _load(Path(path), build_injector(injector), verify)
    except SurfaceIntegrityError:
        loads.inc(outcome="corrupt")
        raise
    except SurfaceFormatError:
        loads.inc(outcome="format_error")
        raise
    except OSError:
        loads.inc(outcome="io_error")
        raise
    loads.inc(outcome="ok")
    return surface


def _load(path: Path, injector, verify: bool) -> Surface:
    key = str(path)
    if injector.enabled and injector.fires("surface_io_error", key):
        raise OSError(f"injected surface_io_error loading {key}")
    with path.open("rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SurfaceFormatError(
                f"{key}: not a surface artifact (bad magic)"
            )
        if injector.enabled and injector.fires("surface_corrupt", key):
            _quarantine(path)
            raise SurfaceIntegrityError(
                f"{key}: injected surface_corrupt; quarantined"
            )
        raw_len = handle.read(8)
        if len(raw_len) != 8:
            _quarantine(path)
            raise SurfaceIntegrityError(f"{key}: truncated header length")
        (header_len,) = struct.unpack("<Q", raw_len)
        if not 0 < header_len <= _MAX_HEADER:
            _quarantine(path)
            raise SurfaceIntegrityError(
                f"{key}: implausible header length {header_len}"
            )
        encoded = handle.read(header_len)
        if len(encoded) != header_len:
            _quarantine(path)
            raise SurfaceIntegrityError(f"{key}: truncated header")
        try:
            header = json.loads(encoded.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            _quarantine(path)
            raise SurfaceIntegrityError(f"{key}: rotten header: {exc}") from None
        file_size = os.fstat(handle.fileno()).st_size

    version = header.get("format_version")
    if header.get("format") != "repro-surface" or version != FORMAT_VERSION:
        raise SurfaceFormatError(
            f"{key}: unsupported surface format "
            f"{header.get('format')!r} v{version!r} "
            f"(this build reads v{FORMAT_VERSION})"
        )
    try:
        spec = SurfaceSpec.from_dict(header)
        checksum = str(header["checksum"])
    except (KeyError, TypeError, ValueError) as exc:
        _quarantine(path)
        raise SurfaceIntegrityError(f"{key}: rotten spec: {exc}") from None

    values_offset = len(MAGIC) + 8 + header_len + _padding(header_len)
    values_size = spec.n_points * 8
    bounds_offset = values_offset + values_size
    bounds_size = int(np.prod(spec.cell_shape)) * 8
    if file_size < bounds_offset + bounds_size:
        _quarantine(path)
        raise SurfaceIntegrityError(
            f"{key}: truncated data blocks "
            f"({file_size} < {bounds_offset + bounds_size} bytes)"
        )
    values = np.memmap(
        path, dtype="<f8", mode="r", offset=values_offset, shape=spec.shape
    )
    bounds = np.memmap(
        path,
        dtype="<f8",
        mode="r",
        offset=bounds_offset,
        shape=spec.cell_shape,
    )
    if verify and _data_checksum(values.tobytes(), bounds.tobytes()) != checksum:
        del values, bounds  # release the maps before renaming
        _quarantine(path)
        raise SurfaceIntegrityError(
            f"{key}: checksum mismatch; quarantined"
        )
    return Surface(
        spec=spec,
        values=values,
        bounds=bounds,
        path=key,
        checksum=checksum,
        format_version=int(version),
        key_version=header.get("key_version"),
    )
