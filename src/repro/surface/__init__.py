"""Precomputed equilibrium surfaces with certified-error interpolation.

The serving stack's fastest answer tier: dense grids of success rates
over the paper's parameter space, built offline against the exact
vectorised solver (:mod:`repro.surface.builder`), persisted as
versioned, checksummed, memory-mapped artifacts
(:mod:`repro.surface.artifact`), and served by a multilinear
interpolator that refuses anything it cannot certify within the
caller's tolerance (:mod:`repro.surface.interpolate`). The service
chain (:mod:`repro.service.sources`) consults a surface before the
result cache and the solvers.
"""

from repro.surface.artifact import (
    FORMAT_VERSION,
    MAGIC,
    SurfaceError,
    SurfaceFormatError,
    SurfaceIntegrityError,
    load_surface,
    save_surface,
)
from repro.surface.builder import (
    BOUND_FLOOR,
    SAFETY,
    build_surface,
    warm_surface,
)
from repro.surface.interpolate import Surface, SurfaceAnswer, SurfaceLookup
from repro.surface.spec import AXIS_KEYS, AxisSpec, SurfaceSpec

__all__ = [
    "AXIS_KEYS",
    "AxisSpec",
    "SurfaceSpec",
    "Surface",
    "SurfaceAnswer",
    "SurfaceLookup",
    "SurfaceError",
    "SurfaceFormatError",
    "SurfaceIntegrityError",
    "MAGIC",
    "FORMAT_VERSION",
    "SAFETY",
    "BOUND_FLOOR",
    "build_surface",
    "warm_surface",
    "save_surface",
    "load_surface",
]
