"""Offline surface builder: dense grids + midpoint error certification.

The builder rides the vectorised grid engine
(:func:`repro.core.engine.solve_grid`): for every combination of the
non-``pstar`` axis coordinates it solves the *whole* ``P*`` axis in one
array pass, so a ``(256 pstar) x (8 alpha) x (8 sigma)`` surface costs
64 engine passes, not 16k scalar solves.

**Certification.** Multilinear interpolation error decomposes into one
curvature term per axis (plus higher-order cross terms). For each axis
the builder solves the exact game at the *edge midpoints* along that
axis -- mid in the certified direction, on-grid everywhere else -- and
compares against the two-corner mean, which isolates that direction's
curvature with nothing to cancel against (a single cell-centre probe
can under-measure when two axes curve in opposite directions). Each
cell then records::

    bound = SAFETY * sum_axes max(|interp(mid_j) - exact(mid_j)|
                                  over the cell's edges)  + BOUND_FLOOR

For the smooth success-rate surfaces of the paper (Eq. 31/40 between
kinks) the edge-midpoint error is the dominant curvature term, and
``SAFETY = 4`` covers within-cell curvature variation and the places a
regime kink crosses a cell; ``BOUND_FLOOR`` keeps the bound honest
where a probe happens to land on an exact crossing. The bound is
*empirical-but-audited*: the property suite (``tests/surface/``)
hammers random off-grid points against the exact solver to keep the
safety factor honest, and the interpolator refuses any cell whose
bound exceeds the caller's tolerance -- a kinked cell simply certifies
a large bound and falls through to the engine.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import solve_grid
from repro.stochastic.quadrature import DEFAULT_QUAD_ORDER
from repro.surface.artifact import load_surface, save_surface
from repro.surface.interpolate import Surface
from repro.surface.spec import SurfaceSpec

__all__ = ["SAFETY", "BOUND_FLOOR", "build_surface", "warm_surface"]

#: Multiplier applied to the measured midpoint error of each cell.
SAFETY = 4.0

#: Additive floor so a luckily-exact midpoint never certifies zero.
BOUND_FLOOR = 5e-7


def _solve_block(
    spec: SurfaceSpec,
    coords: Sequence[np.ndarray],
    quad_order: int,
    scan_points: int,
) -> np.ndarray:
    """Exact success rates on the product grid of ``coords``.

    ``coords`` holds one coordinate array per axis (grid values for
    the fill pass, cell midpoints for the certification pass). One
    ``solve_grid`` pass per non-``pstar`` combination fills a whole
    line of the output.
    """
    names = spec.axis_names
    p_idx = spec.pstar_index
    shape = tuple(len(c) for c in coords)
    out = np.empty(shape)
    other = [i for i in range(len(shape)) if i != p_idx]
    pstars = np.asarray(coords[p_idx], dtype=np.float64)
    for combo in itertools.product(*(range(shape[i]) for i in other)):
        point: Dict[str, float] = {"pstar": 1.0}  # placeholder, unused
        index: List[object] = [slice(None)] * len(shape)
        for axis_i, j in zip(other, combo):
            point[names[axis_i]] = float(coords[axis_i][j])
            index[axis_i] = j
        params, _, collateral = spec.point_at(point)
        grid = solve_grid(
            params,
            pstars,
            collateral=collateral,
            quad_order=quad_order,
            scan_points=scan_points,
        )
        out[tuple(index)] = grid.success_rate
    return out


def build_surface(
    spec: SurfaceSpec,
    quad_order: int = DEFAULT_QUAD_ORDER,
    scan_points: int = 512,
    safety: float = SAFETY,
    floor: float = BOUND_FLOOR,
) -> Surface:
    """Fill and certify ``spec`` in memory (no artifact written)."""
    if safety < 1.0:
        raise ValueError(f"safety must be >= 1, got {safety}")
    if floor < 0.0:
        raise ValueError(f"floor must be >= 0, got {floor}")
    grids = [axis.values() for axis in spec.axes]
    values = _solve_block(spec, grids, quad_order, scan_points)
    ndim = len(grids)
    bounds = np.full(spec.cell_shape, float(floor))
    for j in range(ndim):
        coords = [
            (grid[:-1] + grid[1:]) / 2.0 if i == j else grid
            for i, grid in enumerate(grids)
        ]
        exact = _solve_block(spec, coords, quad_order, scan_points)
        # interpolation at an edge midpoint is the two-corner mean
        lo = [slice(None)] * ndim
        hi = [slice(None)] * ndim
        lo[j], hi[j] = slice(None, -1), slice(1, None)
        err = np.abs((values[tuple(lo)] + values[tuple(hi)]) / 2.0 - exact)
        # reduce every on-grid axis to per-cell maxima over both edges
        for i in range(ndim):
            if i == j:
                continue
            lo_i = [slice(None)] * ndim
            hi_i = [slice(None)] * ndim
            lo_i[i], hi_i[i] = slice(None, -1), slice(1, None)
            err = np.maximum(err[tuple(lo_i)], err[tuple(hi_i)])
        bounds += safety * err
    return Surface(spec=spec, values=values, bounds=bounds)


def warm_surface(
    spec: SurfaceSpec,
    path,
    quad_order: int = DEFAULT_QUAD_ORDER,
    scan_points: int = 512,
    safety: float = SAFETY,
    floor: float = BOUND_FLOOR,
    injector=None,
) -> Surface:
    """Build ``spec``, write the artifact at ``path``, and hand back
    the memory-mapped loaded surface (exactly what a server sees)."""
    built = build_surface(
        spec,
        quad_order=quad_order,
        scan_points=scan_points,
        safety=safety,
        floor=floor,
    )
    save_surface(
        built,
        path,
        builder={
            "quad_order": int(quad_order),
            "scan_points": int(scan_points),
            "safety": float(safety),
            "floor": float(floor),
            "certified_at": "edge-midpoints-per-axis",
        },
    )
    return load_surface(path, injector=injector)
