"""Certified multilinear interpolation over a loaded surface.

:class:`Surface` wraps the two packed blocks of an artifact -- grid
``values`` (success rates at every grid point) and per-cell ``bounds``
(certified interpolation-error bounds from the build) -- behind a
vectorised lookup that *refuses* rather than guesses:

* **off-surface** (the request's frozen parameters differ from the
  artifact's, or a coordinate falls outside an axis range): no answer,
  counted ``out_of_bounds``;
* **on-surface but uncertified** (the enclosing cell's bound exceeds
  the caller's tolerance): no answer, counted as a miss;
* otherwise a :class:`SurfaceAnswer` carrying the interpolated success
  rate *and* the cell bound it is certified against, counted as a hit.

The arrays are typically ``numpy.memmap`` views straight onto the
artifact file (see :mod:`repro.surface.artifact`), so N replicas of a
server share one page-cache copy; fancy indexing materialises only the
touched corners. Frozen-parameter matching is exact float equality --
the same canonicalisation discipline as the service request keys -- so
a surface can never silently answer for a different game.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.core.parameters import SwapParameters
from repro.service.cache import CacheStats
from repro.surface.spec import SurfaceSpec

__all__ = ["Surface", "SurfaceAnswer", "SurfaceLookup"]


class _SurfaceMetrics:
    """The registry instruments of the surface tier, bound once."""

    def __init__(self) -> None:
        registry = get_registry()
        self.hits = registry.counter(
            "repro_surface_hits_total",
            help="Lookups answered by interpolation within tolerance.",
        )
        self.misses = registry.counter(
            "repro_surface_misses_total",
            help="On-surface lookups refused: cell bound above tolerance.",
        )
        self.out_of_bounds = registry.counter(
            "repro_surface_out_of_bounds_total",
            help="Lookups refused as off-surface (frozen-parameter "
            "mismatch or coordinate outside the grid).",
        )
        self.lookup_seconds = registry.histogram(
            "repro_surface_lookup_seconds",
            help="Wall-clock duration of surface lookups (any outcome).",
        )
        for counter in (self.hits, self.misses, self.out_of_bounds):
            counter.inc(0)


@dataclass(frozen=True)
class SurfaceAnswer:
    """An interpolated success rate with its certified error bound.

    ``abs(success_rate - exact) <= bound`` holds for the enclosing
    cell's certification (see :mod:`repro.surface.builder`). Surface
    answers are approximations: they carry their bound, are never
    written into the exact-result cache, and serialise under the
    distinct ``surface_answer`` kind.
    """

    pstar: float
    collateral: float
    success_rate: float
    bound: float


@dataclass(frozen=True)
class SurfaceLookup:
    """The vectorised outcome of one multi-point lookup.

    ``values``/``bounds`` are aligned with the queried ``pstars`` and
    are ``NaN`` wherever ``answered`` is False. ``off_surface`` is True
    when the whole lookup was refused on frozen parameters (every point
    counted out-of-bounds without touching the grid).
    """

    values: np.ndarray
    bounds: np.ndarray
    answered: np.ndarray
    off_surface: bool
    tolerance: float

    def answer_at(self, i: int) -> Optional[SurfaceAnswer]:
        """The :class:`SurfaceAnswer` for point ``i``, or ``None``."""
        if not bool(self.answered[i]):
            return None
        return SurfaceAnswer(
            pstar=float(self._pstars[i]),
            collateral=float(self._collateral),
            success_rate=float(self.values[i]),
            bound=float(self.bounds[i]),
        )

    # filled by Surface.lookup; kept out of the public field list
    _pstars: np.ndarray = None  # type: ignore[assignment]
    _collateral: float = 0.0


class Surface:
    """A loaded equilibrium surface: spec + value/bound blocks.

    Construct via :func:`repro.surface.artifact.load_surface` (memory
    mapped) or :meth:`repro.surface.builder.build_surface` (in memory);
    both hand the same array contract to this class.
    """

    def __init__(
        self,
        spec: SurfaceSpec,
        values: np.ndarray,
        bounds: np.ndarray,
        path: Optional[str] = None,
        checksum: Optional[str] = None,
        format_version: int = 1,
        key_version: Optional[int] = None,
    ) -> None:
        values = np.asanyarray(values, dtype=np.float64)
        bounds = np.asanyarray(bounds, dtype=np.float64)
        if values.shape != spec.shape:
            raise ValueError(
                f"values shape {values.shape} != spec shape {spec.shape}"
            )
        if bounds.shape != spec.cell_shape:
            raise ValueError(
                f"bounds shape {bounds.shape} != cell shape {spec.cell_shape}"
            )
        self.spec = spec
        self.values = values
        self.bounds = bounds
        self.path = path
        self.checksum = checksum
        self.format_version = int(format_version)
        self.key_version = key_version
        self.stats = CacheStats()
        self._metrics = _SurfaceMetrics()
        self._axis_values: Tuple[np.ndarray, ...] = tuple(
            axis.values() for axis in spec.axes
        )
        self._frozen = spec.frozen_point()
        self._max_bound = float(np.max(bounds))

    # ---------------------------------------------------------------- info

    @property
    def max_bound(self) -> float:
        """The largest certified cell bound anywhere on the surface."""
        return self._max_bound

    def info(self) -> Dict[str, object]:
        """Operator-facing description (served by ``/readyz``,
        ``/version`` and ``repro-swaps stats``)."""
        return {
            "path": self.path,
            "format_version": self.format_version,
            "key_version": self.key_version,
            "checksum": self.checksum,
            "axes": [axis.to_dict() for axis in self.spec.axes],
            "points": self.spec.n_points,
            "collateral": self.spec.collateral,
            "default_tolerance": self.spec.default_tolerance,
            "max_bound": self.max_bound,
            "law": self.spec.params.law.describe(),
        }

    # ------------------------------------------------------------- matching

    def resolve_tolerance(self, tolerance: Optional[float]) -> float:
        """The effective tolerance: the caller's, or the artifact's
        default when the caller passed ``None``."""
        if tolerance is None:
            return self.spec.default_tolerance
        return float(tolerance)

    def match_coords(
        self, params: SwapParameters, collateral: float
    ) -> Optional[List[Optional[float]]]:
        """Per-axis fixed coordinates for a sweep, or ``None`` when the
        request is off-surface.

        The returned list has one entry per axis in storage order, with
        ``None`` at the ``pstar`` axis (filled per point by the
        caller). Off-surface means: the request's price law differs
        from the artifact's, a frozen parameter differs from the
        artifact's, a paired axis (``alpha``/``r``) is asked for
        unequal agent values, or a fixed coordinate falls outside its
        axis range.
        """
        # the law is not part of the flat float map; compare it first so
        # a surface never answers for a different transition kernel
        if params.law != self.spec.params.law:
            return None
        flat = dict(params.as_dict())
        flat["collateral"] = float(collateral)
        coords: List[Optional[float]] = []
        from repro.surface.spec import AXIS_KEYS

        for axis in self.spec.axes:
            keys = AXIS_KEYS[axis.name]
            if keys == ("pstar",):
                coords.append(None)
                continue
            values = {flat.pop(key) for key in keys}
            if len(values) != 1:  # paired axis with unequal agents
                return None
            value = values.pop()
            if not (axis.lo <= value <= axis.hi):
                return None
            coords.append(value)
        for key, value in flat.items():
            if value != self._frozen[key]:
                return None
        return coords

    # -------------------------------------------------------------- lookups

    def lookup(
        self,
        params: SwapParameters,
        pstars: Sequence[float],
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> SurfaceLookup:
        """Interpolate a sweep over ``pstars``, refusing what the
        artifact cannot certify (see the module docstring for the
        three outcomes and their counters)."""
        started = time.perf_counter()
        try:
            return self._lookup(params, pstars, collateral, tolerance)
        finally:
            self._metrics.lookup_seconds.observe(
                time.perf_counter() - started
            )

    def _lookup(
        self,
        params: SwapParameters,
        pstars: Sequence[float],
        collateral: float,
        tolerance: Optional[float],
    ) -> SurfaceLookup:
        pstars = np.asarray(pstars, dtype=np.float64)
        n = pstars.size
        tol = self.resolve_tolerance(tolerance)
        nan = np.full(n, np.nan)
        none = np.zeros(n, dtype=bool)
        coords = self.match_coords(params, collateral)
        if coords is None:
            self.stats.out_of_bounds += n
            self._metrics.out_of_bounds.inc(n)
            return SurfaceLookup(
                values=nan,
                bounds=nan.copy(),
                answered=none,
                off_surface=True,
                tolerance=tol,
                _pstars=pstars,
                _collateral=float(collateral),
            )
        p_axis = self.spec.axes[self.spec.pstar_index]
        in_range = (pstars >= p_axis.lo) & (pstars <= p_axis.hi)
        out_n = int(n - in_range.sum())
        if out_n:
            self.stats.out_of_bounds += out_n
            self._metrics.out_of_bounds.inc(out_n)
        values = nan
        bounds = nan.copy()
        answered = none
        m = int(in_range.sum())
        if m:
            points = np.empty((m, len(self.spec.axes)))
            for j, coord in enumerate(coords):
                points[:, j] = pstars[in_range] if coord is None else coord
            interp, cell_bounds = self._interpolate(points)
            ok = cell_bounds <= tol
            values[in_range] = np.where(ok, interp, np.nan)
            bounds[in_range] = cell_bounds
            answered[in_range] = ok
            hits = int(ok.sum())
            misses = m - hits
            if hits:
                self.stats.hits += hits
                self._metrics.hits.inc(hits)
            if misses:
                self.stats.misses += misses
                self._metrics.misses.inc(misses)
        return SurfaceLookup(
            values=values,
            bounds=bounds,
            answered=answered,
            off_surface=False,
            tolerance=tol,
            _pstars=pstars,
            _collateral=float(collateral),
        )

    def answer(
        self,
        params: SwapParameters,
        pstar: float,
        collateral: float = 0.0,
        tolerance: Optional[float] = None,
    ) -> Optional[SurfaceAnswer]:
        """Single-point convenience over :meth:`lookup`."""
        return self.lookup(
            params, [pstar], collateral=collateral, tolerance=tolerance
        ).answer_at(0)

    def _interpolate(
        self, points: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Multilinear interpolation of in-range ``(m, d)`` points.

        Returns ``(values, cell_bounds)``: the interpolated success
        rates and the certified bound of each point's enclosing cell.
        Fancy indexing on the (possibly memory-mapped) blocks reads
        only the ``2**d`` touched corners per point.
        """
        m, d = points.shape
        idx: List[np.ndarray] = []
        frac: List[np.ndarray] = []
        for j, grid in enumerate(self._axis_values):
            i = np.clip(
                np.searchsorted(grid, points[:, j], side="right") - 1,
                0,
                len(grid) - 2,
            )
            idx.append(i)
            frac.append((points[:, j] - grid[i]) / (grid[i + 1] - grid[i]))
        out = np.zeros(m)
        for corner in itertools.product((0, 1), repeat=d):
            weight = np.ones(m)
            corner_idx = []
            for j, hi in enumerate(corner):
                weight = weight * (frac[j] if hi else 1.0 - frac[j])
                corner_idx.append(idx[j] + hi)
            out += weight * np.asarray(self.values[tuple(corner_idx)])
        cell_bounds = np.asarray(self.bounds[tuple(idx)])
        return out, cell_bounds
