"""Single-episode runner.

One *episode* = one sampled price realisation + one full protocol run
on a fresh two-chain network. Agents default to the rational
equilibrium pair; any :class:`~repro.agents.base.SwapAgent` can be
substituted (honest, adversarial, crashing) for counterfactual studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.agents.base import SwapAgent
from repro.agents.rational import rational_pair
from repro.core.parameters import SwapParameters
from repro.protocol.collateral_swap import CollateralSwapProtocol
from repro.protocol.messages import SwapRecord
from repro.protocol.swap import SwapProtocol
from repro.stochastic.paths import sample_decision_prices
from repro.stochastic.rng import RandomState

__all__ = ["EpisodeConfig", "run_episode"]


@dataclass(frozen=True)
class EpisodeConfig:
    """Everything one episode needs besides randomness."""

    params: SwapParameters
    pstar: float
    collateral: float = 0.0
    alice: Optional[SwapAgent] = None
    bob: Optional[SwapAgent] = None

    def __post_init__(self) -> None:
        if not self.pstar > 0.0:
            raise ValueError(f"pstar must be positive, got {self.pstar}")
        if self.collateral < 0.0:
            raise ValueError(
                f"collateral must be non-negative, got {self.collateral}"
            )

    def agents(self) -> Tuple[SwapAgent, SwapAgent]:
        """The configured agents, defaulting to the equilibrium pair."""
        if self.alice is not None and self.bob is not None:
            return self.alice, self.bob
        rational_alice, rational_bob = rational_pair(
            self.params, self.pstar, collateral=self.collateral
        )
        return (
            self.alice if self.alice is not None else rational_alice,
            self.bob if self.bob is not None else rational_bob,
        )


def run_episode(
    config: EpisodeConfig,
    rng: RandomState,
    decision_prices: Optional[Sequence[float]] = None,
) -> SwapRecord:
    """Run one episode.

    ``decision_prices`` overrides the sampled ``(P_{t1}, P_{t2},
    P_{t3})`` -- useful for deterministic tests; by default one GBM
    realisation is drawn from ``rng``.
    """
    params = config.params
    if decision_prices is None:
        prices = sample_decision_prices(
            params.process, params.p0, params.grid, rng, n_paths=1
        )[0]
    else:
        prices = [float(x) for x in decision_prices]

    alice, bob = config.agents()
    if config.collateral > 0.0:
        protocol: "SwapProtocol | CollateralSwapProtocol" = CollateralSwapProtocol(
            params,
            config.pstar,
            config.collateral,
            alice,
            bob,
            rng=rng,
        )
    else:
        protocol = SwapProtocol(params, config.pstar, alice, bob, rng=rng)
    return protocol.run(list(prices))
