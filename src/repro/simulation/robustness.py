"""Timing robustness: atomicity under stochastic confirmation delays.

The paper's Assumption 1 fixes the confirmation times ``tau_a`` and
``tau_b``. Zakhary et al. (Section II-C) warn that HTLC atomicity can
break "due to crash failures, preventing smart contract execution
before the expiry time of the contract" -- and the same happens when a
*confirmation* simply lands late. This module measures that failure
mode on the executable substrate:

* chains draw each transaction's confirmation delay from
  ``tau * (1 + jitter * U[-1, 1])``;
* the protocol runs on the paper's zero-slack Eq. (13) schedule plus an
  optional *expiry margin* added to both timelocks;
* outcomes are classified, including the two atomicity violations:
  ``ALICE_FORFEITED`` (her claim confirmed after ``t_b`` while her
  revealed secret let Bob redeem) and handshake failures (a deploy
  confirming after the counterparty's verification time).

The experiment: sweep ``jitter`` x ``margin`` and report the violation
probability -- zero margin is fragile under even modest jitter, and a
margin of about the jitter's worst case restores safety at the price of
longer worst-case lock times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.agents.honest import HonestAgent
from repro.chain.network import TwoChainNetwork
from repro.core.parameters import SwapParameters
from repro.protocol.messages import SwapOutcome
from repro.protocol.swap import SwapProtocol
from repro.stochastic.rng import RandomState

__all__ = ["RobustnessPoint", "timing_robustness_sweep"]


@dataclass(frozen=True)
class RobustnessPoint:
    """Outcome distribution for one ``(jitter, margin, wait)`` cell."""

    jitter: float
    margin: float
    wait_slack: float
    n_runs: int
    outcomes: Dict[SwapOutcome, int]

    @property
    def completion_rate(self) -> float:
        """Fraction of runs that completed."""
        return self.outcomes.get(SwapOutcome.COMPLETED, 0) / self.n_runs

    @property
    def violation_rate(self) -> float:
        """Fraction of runs where a party lost assets without compensation."""
        bad = self.outcomes.get(SwapOutcome.ALICE_FORFEITED, 0) + self.outcomes.get(
            SwapOutcome.BOB_FORFEITED, 0
        )
        return bad / self.n_runs

    @property
    def handshake_failure_rate(self) -> float:
        """Fraction of runs aborted because a deploy confirmed too late.

        With honest agents on a flat price, every abort is a timing
        artifact, never a strategic stop.
        """
        aborted = self.outcomes.get(SwapOutcome.ABORTED_AT_T2, 0) + self.outcomes.get(
            SwapOutcome.ABORTED_AT_T3, 0
        )
        return aborted / self.n_runs


def _run_cell(
    params: SwapParameters,
    jitter: float,
    margin: float,
    wait_slack: float,
    n_runs: int,
    rng: RandomState,
) -> RobustnessPoint:
    outcomes: Dict[SwapOutcome, int] = {}
    flat_price = [params.p0] * 3
    for _ in range(n_runs):
        network_rng, secret_rng = rng.spawn(2)
        network = TwoChainNetwork(
            params, confirmation_jitter=jitter, jitter_rng=network_rng
        )
        network.fund_agents(pstar=2.0)
        protocol = SwapProtocol(
            params,
            2.0,
            HonestAgent("alice"),
            HonestAgent("bob"),
            rng=secret_rng,
            network=network,
            expiry_margin=margin,
            wait_slack=wait_slack,
        )
        record = protocol.run(flat_price)
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
    return RobustnessPoint(
        jitter=jitter, margin=margin, wait_slack=wait_slack,
        n_runs=n_runs, outcomes=outcomes,
    )


def timing_robustness_sweep(
    params: SwapParameters,
    jitters: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    margins: Sequence[float] = (0.0, 1.0, 2.0, 4.0),
    wait_slacks: Sequence[float] = (0.0,),
    n_runs: int = 200,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Sweep jitter x expiry margin x waiting slack, honest agents.

    Honest agents + flat price isolate *timing* failures: in a
    frictionless run every swap completes, so any other outcome is
    caused by a late confirmation somewhere. ``margins`` pad the
    timelocks (protects revealed claims); ``wait_slacks`` pad the
    decision schedule (protects the deploy handshakes).
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    rng = RandomState(seed)
    points: List[RobustnessPoint] = []
    for jitter in jitters:
        for margin in margins:
            for wait in wait_slacks:
                cell_rng = RandomState(rng.integers(0, 2**31))
                points.append(
                    _run_cell(params, jitter, margin, wait, n_runs, cell_rng)
                )
    return points
