"""Batch Monte Carlo and analytic-vs-empirical validation.

Two fidelity levels:

* **strategy level** (default): sample decision-price triples and apply
  the equilibrium threshold strategies vectorised -- millions of
  episodes per second; validates the probability calculus behind
  Eq. (31)/(40);
* **protocol level** (``protocol_level=True``): run every episode
  through the full chain substrate (HTLCs, mempool, refunds); validates
  that the *executable system* realises the same outcome the strategy
  algebra predicts (asserted in integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.agents.rational import rational_pair
from repro.core.collateral import CollateralBackwardInduction
from repro.core.backward_induction import BackwardInduction
from repro.core.parameters import SwapParameters
from repro.simulation.engine import EpisodeConfig, run_episode
from repro.simulation.results import BatchSummary, wilson_interval
from repro.stochastic.law import observe_law
from repro.stochastic.paths import sample_decision_prices_for_law
from repro.stochastic.rng import RandomState

__all__ = ["MonteCarloResult", "empirical_success_rate", "validate_against_analytic"]


def _decision_prices(
    params: SwapParameters,
    rng: RandomState,
    n_paths: int,
    antithetic: bool,
) -> np.ndarray:
    """Sample ``(P_t1, P_t2, P_t3)`` under the parameter set's price law."""
    return sample_decision_prices_for_law(
        params.law, params.mu, params.sigma, params.p0, params.grid,
        rng, n_paths, antithetic=antithetic,
    )


@dataclass(frozen=True)
class MonteCarloResult:
    """Empirical success statistics for one ``(params, pstar, Q)`` point."""

    pstar: float
    collateral: float
    n_paths: int
    n_initiated: int
    n_completed: int
    success_rate: float
    ci_low: float
    ci_high: float

    def contains(self, analytic_rate: float) -> bool:
        """Whether the analytic rate falls inside the 95% CI."""
        return self.ci_low <= analytic_rate <= self.ci_high


def _strategy_level_counts(
    params: SwapParameters,
    pstar: float,
    collateral: float,
    n_paths: int,
    rng: RandomState,
    antithetic: bool,
) -> Tuple[int, int, int]:
    """Vectorised (initiated, completed, total) under threshold strategies."""
    if collateral > 0.0:
        solver: BackwardInduction = CollateralBackwardInduction(
            params, pstar, collateral
        )
    else:
        solver = BackwardInduction(params, pstar)
    initiate = solver.alice_t1_cont() > solver.alice_t1_stop()
    if not initiate:
        return 0, 0, n_paths

    prices = _decision_prices(params, rng, n_paths, antithetic)
    p2 = prices[:, 1]
    p3 = prices[:, 2]
    region = solver.bob_t2_region()
    bob_locks = np.zeros(n_paths, dtype=bool)
    # strict interior: agents exactly on an indifference boundary stop
    # (see repro.core.equilibrium.INDIFFERENT_ACTION); the boundary has
    # probability zero but the counts must match the executable
    # strategies bit-for-bit.
    for lo, hi in region.intervals:
        bob_locks |= (p2 > lo) & (p2 < hi)
    alice_reveals = p3 > solver.p3_threshold()
    completed = int(np.count_nonzero(bob_locks & alice_reveals))
    return n_paths, completed, n_paths


def empirical_success_rate(
    params: SwapParameters,
    pstar: float,
    n_paths: int = 20_000,
    seed: int = 0,
    collateral: float = 0.0,
    protocol_level: bool = False,
    antithetic: bool = False,
) -> MonteCarloResult:
    """Empirical SR (completed / initiated) over ``n_paths`` episodes."""
    import time

    from repro.obs.metrics import get_registry

    if n_paths < 1:
        raise ValueError(f"n_paths must be >= 1, got {n_paths}")
    rng = RandomState(seed)
    mc_started = time.perf_counter()

    if protocol_level:
        alice, bob = rational_pair(params, pstar, collateral=collateral)
        config = EpisodeConfig(
            params=params,
            pstar=pstar,
            collateral=collateral,
            alice=alice,
            bob=bob,
        )
        price_rng, secret_rng = rng.spawn(2)
        prices = _decision_prices(params, price_rng, n_paths, antithetic)
        summary = BatchSummary()
        for i in range(n_paths):
            record = run_episode(config, secret_rng, decision_prices=prices[i])
            summary.add(record)
        n_initiated = summary.n_initiated
        n_completed = summary.n_completed
    else:
        n_initiated, n_completed, _total = _strategy_level_counts(
            params, pstar, collateral, n_paths, rng, antithetic
        )

    elapsed = time.perf_counter() - mc_started
    level = "protocol" if protocol_level else "strategy"
    observe_law(params.law.kind, "montecarlo")
    registry = get_registry()
    registry.counter(
        "repro_mc_paths_total",
        help="Monte Carlo episodes simulated, by fidelity level.",
        labelnames=("level",),
    ).inc(n_paths, level=level)
    registry.histogram(
        "repro_mc_run_seconds",
        help="Wall-clock duration of one Monte Carlo batch.",
        labelnames=("level",),
    ).observe(elapsed, level=level)
    if elapsed > 0.0:
        registry.gauge(
            "repro_mc_paths_per_second",
            help="Throughput of the most recent Monte Carlo batch.",
            labelnames=("level",),
        ).set(n_paths / elapsed, level=level)

    if n_initiated == 0:
        return MonteCarloResult(
            pstar=pstar, collateral=collateral, n_paths=n_paths,
            n_initiated=0, n_completed=0,
            success_rate=0.0, ci_low=0.0, ci_high=1.0,
        )
    rate = n_completed / n_initiated
    lo, hi = wilson_interval(n_completed, n_initiated)
    return MonteCarloResult(
        pstar=pstar, collateral=collateral, n_paths=n_paths,
        n_initiated=n_initiated, n_completed=n_completed,
        success_rate=rate, ci_low=lo, ci_high=hi,
    )


def validate_against_analytic(
    params: SwapParameters,
    pstar: float,
    n_paths: int = 20_000,
    seed: int = 0,
    collateral: float = 0.0,
    protocol_level: bool = False,
) -> Tuple[MonteCarloResult, float]:
    """Run the Monte Carlo and return it with the matching analytic SR."""
    if collateral > 0.0:
        analytic = CollateralBackwardInduction(
            params, pstar, collateral
        ).success_rate()
    else:
        analytic = BackwardInduction(params, pstar).success_rate()
    empirical = empirical_success_rate(
        params,
        pstar,
        n_paths=n_paths,
        seed=seed,
        collateral=collateral,
        protocol_level=protocol_level,
    )
    return empirical, analytic
