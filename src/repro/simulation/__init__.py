"""Monte Carlo validation of the analytics.

* :mod:`repro.simulation.engine` runs single swap *episodes*: sampled
  GBM decision prices + agents + the full protocol engine on the chain
  substrate;
* :mod:`repro.simulation.montecarlo` aggregates batches into empirical
  success rates with Wilson confidence intervals and compares them to
  the closed-form Eq. (31)/(40) values;
* :mod:`repro.simulation.scenarios` names the parameter settings used
  across examples and benchmarks.
"""

from repro.simulation.engine import EpisodeConfig, run_episode
from repro.simulation.montecarlo import (
    MonteCarloResult,
    empirical_success_rate,
    validate_against_analytic,
)
from repro.simulation.results import BatchSummary, wilson_interval
from repro.simulation.population import (
    MarketOutcome,
    PopulationSpec,
    simulate_market,
    volatility_failure_curve,
)
from repro.simulation.robustness import RobustnessPoint, timing_robustness_sweep
from repro.simulation.scenarios import SCENARIOS, scenario

__all__ = [
    "EpisodeConfig",
    "run_episode",
    "MonteCarloResult",
    "empirical_success_rate",
    "validate_against_analytic",
    "BatchSummary",
    "wilson_interval",
    "MarketOutcome",
    "PopulationSpec",
    "simulate_market",
    "volatility_failure_curve",
    "RobustnessPoint",
    "timing_robustness_sweep",
    "SCENARIOS",
    "scenario",
]
