"""Market-level studies over heterogeneous agent populations.

The paper's agents have a fixed, known ``(alpha, r)``. Real swap
markets (Bisq, Komodo, ...) host a *population* of traders with
heterogeneous preferences; the observed market failure rate aggregates
over that heterogeneity. This module simulates such a market:

* draw ``n_pairs`` trader pairs with success premiums sampled from a
  given distribution (and optionally heterogeneous discount rates);
* each pair that admits a feasible exchange rate trades at its
  SR-maximising ``P*``;
* the *market failure rate* is the complement of the trade-weighted
  success rate, and the *participation rate* is the share of pairs
  that trade at all.

Sweeping the market volatility reproduces the Bisq observation quoted
in Section II-A: a few percent of transactions fail in calm regimes,
and the rate "increases during periods of higher market volatility".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parameters import SwapParameters
from repro.core.success_rate import max_success_rate
from repro.stochastic.rng import RandomState

__all__ = ["PopulationSpec", "MarketOutcome", "simulate_market", "volatility_failure_curve"]


@dataclass(frozen=True)
class PopulationSpec:
    """Distributional assumptions about the trader population.

    Success premiums are drawn uniformly from ``alpha_range``; discount
    rates uniformly from ``r_range``. Each pair draws independent
    parameters for its two members.
    """

    alpha_range: Tuple[float, float] = (0.15, 0.6)
    r_range: Tuple[float, float] = (0.005, 0.015)

    def __post_init__(self) -> None:
        lo, hi = self.alpha_range
        if not 0.0 <= lo <= hi:
            raise ValueError(f"bad alpha_range {self.alpha_range}")
        lo, hi = self.r_range
        if not 0.0 < lo <= hi:
            raise ValueError(f"bad r_range {self.r_range}")

    def sample_pair(self, rng: RandomState) -> Tuple[float, float, float, float]:
        """``(alpha_a, alpha_b, r_a, r_b)`` for one trader pair."""
        alpha_a, alpha_b = rng.uniform(*self.alpha_range, size=2)
        r_a, r_b = rng.uniform(*self.r_range, size=2)
        return float(alpha_a), float(alpha_b), float(r_a), float(r_b)


@dataclass(frozen=True)
class MarketOutcome:
    """Aggregate outcome of one simulated market."""

    sigma: float
    n_pairs: int
    n_participating: int
    mean_success_rate: float

    @property
    def participation_rate(self) -> float:
        """Share of pairs that found a feasible exchange rate."""
        if self.n_pairs == 0:
            return 0.0
        return self.n_participating / self.n_pairs

    @property
    def failure_rate(self) -> float:
        """1 - mean SR among participating pairs."""
        return 1.0 - self.mean_success_rate if self.n_participating else 0.0


def simulate_market(
    base: SwapParameters,
    spec: PopulationSpec,
    n_pairs: int,
    seed: int,
    sigma: Optional[float] = None,
) -> MarketOutcome:
    """Simulate one market snapshot.

    Each pair trades at its own SR-maximising rate when feasible; the
    market-level success rate averages the per-pair analytic SR (the
    expected outcome over many such markets).
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    params = base if sigma is None else base.replace(sigma=float(sigma))
    rng = RandomState(seed)
    rates: List[float] = []
    for _ in range(n_pairs):
        alpha_a, alpha_b, r_a, r_b = spec.sample_pair(rng)
        pair_params = params.replace(
            alpha_a=alpha_a, alpha_b=alpha_b, r_a=r_a, r_b=r_b
        )
        located = max_success_rate(pair_params, n_grid=16, refine_iters=12, n_scan=40)
        if located is None:
            continue
        rates.append(located[1])
    mean_sr = float(np.mean(rates)) if rates else 0.0
    return MarketOutcome(
        sigma=params.sigma,
        n_pairs=n_pairs,
        n_participating=len(rates),
        mean_success_rate=mean_sr,
    )


def volatility_failure_curve(
    base: SwapParameters,
    spec: PopulationSpec,
    sigmas: Sequence[float],
    n_pairs: int = 60,
    seed: int = 0,
) -> List[MarketOutcome]:
    """Market failure/participation across volatility regimes.

    The Bisq-anecdote experiment: failure rates should rise and
    participation should fall as ``sigma`` grows.
    """
    return [
        simulate_market(base, spec, n_pairs, seed=seed, sigma=float(s))
        for s in sigmas
    ]
