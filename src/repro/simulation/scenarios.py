"""Named parameter scenarios used by examples, tests and benchmarks.

Each scenario is a :class:`~repro.core.parameters.SwapParameters`
variation motivated by the paper's Section III-F discussion.
"""

from __future__ import annotations

from typing import Dict

from repro.core.parameters import SwapParameters

__all__ = ["SCENARIOS", "scenario"]


def _build_scenarios() -> Dict[str, SwapParameters]:
    base = SwapParameters.default()
    return {
        # the paper's Table III
        "default": base,
        # Section III-F4: sigma drives failures -- a calm and a turbulent market
        "calm_market": base.replace(sigma=0.05),
        "volatile_market": base.replace(sigma=0.2),
        # Section III-F4: trend direction
        "deflationary_b": base.replace(mu=0.005),
        "inflationary_b": base.replace(mu=-0.005),
        "driftless": base.replace(mu=0.0),
        # Section III-F1: low success premium -> near-degenerate game
        "distrustful": base.replace(alpha_a=0.1, alpha_b=0.1),
        "reputable": base.replace(alpha_a=0.5, alpha_b=0.5),
        # Section III-F2: impatient agents
        "impatient": base.replace(r_a=0.02, r_b=0.02),
        "patient": base.replace(r_a=0.005, r_b=0.005),
        # Section III-F3: slow chains (hour-long PoW finality on both legs)
        "slow_chains": base.replace(tau_a=6.0, tau_b=8.0, eps_b=2.0),
        "fast_chains": base.replace(tau_a=1.0, tau_b=1.5, eps_b=0.25),
    }


SCENARIOS: Dict[str, SwapParameters] = _build_scenarios()


def scenario(name: str) -> SwapParameters:
    """Look up a named scenario."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
