"""Aggregation of protocol outcomes.

:class:`BatchSummary` counts outcomes over a batch of episodes and
provides the empirical success rate with a Wilson score confidence
interval (well-behaved near 0 and 1, unlike the normal approximation).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.protocol.messages import SwapOutcome, SwapRecord

__all__ = ["wilson_interval", "BatchSummary"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.959963984540054
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion (default 95%)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2.0 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return max(centre - half, 0.0), min(centre + half, 1.0)


@dataclass
class BatchSummary:
    """Outcome statistics over a batch of swap episodes."""

    outcomes: Counter = field(default_factory=Counter)
    n_initiated: int = 0
    n_completed: int = 0
    n_total: int = 0

    @staticmethod
    def from_records(records: Iterable[SwapRecord]) -> "BatchSummary":
        """Tally a batch."""
        summary = BatchSummary()
        for record in records:
            summary.add(record)
        return summary

    def add(self, record: SwapRecord) -> None:
        """Tally one episode."""
        if record.outcome is None:
            raise ValueError("record has no outcome; did the protocol run?")
        self.outcomes[record.outcome] += 1
        self.n_total += 1
        if record.outcome is not SwapOutcome.NOT_INITIATED:
            self.n_initiated += 1
        if record.outcome is SwapOutcome.COMPLETED:
            self.n_completed += 1

    @property
    def success_rate(self) -> float:
        """Completed / initiated -- the paper's SR definition (Eq. (31))."""
        if self.n_initiated == 0:
            return 0.0
        return self.n_completed / self.n_initiated

    @property
    def unconditional_success_rate(self) -> float:
        """Completed / all episodes (includes never-initiated)."""
        if self.n_total == 0:
            return 0.0
        return self.n_completed / self.n_total

    def success_rate_ci(self) -> Tuple[float, float]:
        """95% Wilson interval around :attr:`success_rate`."""
        if self.n_initiated == 0:
            return (0.0, 1.0)
        return wilson_interval(self.n_completed, self.n_initiated)

    def outcome_fractions(self) -> Dict[SwapOutcome, float]:
        """Share of each terminal outcome among all episodes."""
        if self.n_total == 0:
            return {}
        return {k: v / self.n_total for k, v in self.outcomes.items()}

    def describe(self) -> str:
        """One-paragraph report."""
        lines = [f"episodes: {self.n_total} (initiated: {self.n_initiated})"]
        for outcome, count in sorted(self.outcomes.items(), key=lambda kv: kv[0].value):
            lines.append(f"  {outcome.value:>16}: {count}")
        lo, hi = self.success_rate_ci()
        lines.append(
            f"  success rate: {self.success_rate:.4f} (95% CI [{lo:.4f}, {hi:.4f}])"
        )
        return "\n".join(lines)
