"""Protocol-level exceptions."""

from __future__ import annotations

__all__ = ["ProtocolError", "ProtocolStateError", "AgentCrashed"]


class ProtocolError(Exception):
    """Base class for protocol failures."""


class ProtocolStateError(ProtocolError):
    """The engine was driven out of order or reused."""


class AgentCrashed(ProtocolError):
    """An agent stopped responding mid-swap (crash-failure injection).

    Raised by crash agents; the engine treats it as silence -- the
    on-chain effect is identical to never acting, i.e. timeouts fire.
    """
