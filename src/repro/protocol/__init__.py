"""The HTLC atomic-swap protocol engine.

:mod:`repro.protocol.swap` drives the paper's Section II-B / III-B
step sequence on the simulated two-chain substrate, delegating each
decision to pluggable agents; :mod:`repro.protocol.collateral_swap`
adds the Section IV escrow + Oracle around it.
"""

from repro.protocol.errors import ProtocolError, ProtocolStateError
from repro.protocol.messages import DecisionContext, Stage, SwapOutcome, SwapRecord
from repro.protocol.swap import SwapProtocol
from repro.protocol.collateral_swap import CollateralSwapProtocol

__all__ = [
    "ProtocolError",
    "ProtocolStateError",
    "DecisionContext",
    "Stage",
    "SwapOutcome",
    "SwapRecord",
    "SwapProtocol",
    "CollateralSwapProtocol",
]
