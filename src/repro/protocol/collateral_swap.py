"""The Section IV protocol: HTLC swap wrapped in a collateral escrow.

Both agents deposit ``Q`` Token_a into the
:class:`~repro.chain.oracle.CollateralEscrow` before the swap; the
(simulated, trusted) :class:`~repro.chain.oracle.Oracle` settles the
deposits as the swap unfolds:

===========================  ==========================================
event                         settlement (submitted at / lands at)
===========================  ==========================================
neither engages at ``t1``     both deposits return (t1 / t1 + tau_a)
Bob walks away at ``t2``      2Q to Alice (t3 / t3 + tau_a)
Bob locks at ``t2``           Bob's Q returns (t3 / t3 + tau_a)
Alice reveals at ``t3``       Alice's Q returns (t4 / t4 + tau_a)
Alice waives at ``t3``        Alice's Q to Bob (t4 / t4 + tau_a)
===========================  ==========================================

These instants match the discounting in the paper's Eqs. (33)-(39).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.chain.network import ALICE, BOB, TwoChainNetwork
from repro.chain.oracle import CollateralEscrow, DepositOp, Oracle
from repro.core.parameters import SwapParameters
from repro.protocol.messages import SwapOutcome, SwapRecord
from repro.protocol.swap import SwapProtocol
from repro.stochastic.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agents.base import SwapAgent

__all__ = ["CollateralSwapProtocol"]


class CollateralSwapProtocol:
    """Escrow + Oracle wrapper around :class:`SwapProtocol`."""

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        collateral: float,
        alice: "SwapAgent",
        bob: "SwapAgent",
        rng: RandomState,
        network: Optional[TwoChainNetwork] = None,
    ) -> None:
        if collateral < 0.0:
            raise ValueError(f"collateral must be non-negative, got {collateral}")
        if network is None:
            network = TwoChainNetwork(params)
            network.fund_agents(pstar, collateral=collateral)
        self.params = params
        self.pstar = float(pstar)
        self.collateral = float(collateral)
        self.network = network
        self.escrow = CollateralEscrow(alice=ALICE, bob=BOB, amount=collateral)
        self.oracle = Oracle(network.chain_a, self.escrow)
        self._inner = SwapProtocol(
            params, pstar, alice, bob, rng=rng, network=network
        )

    def run(self, decision_prices: Sequence[float]) -> SwapRecord:
        """Deposit, run the swap, and settle the escrow per the Oracle rules."""
        net = self.network
        grid = self.params.grid

        if self.collateral > 0.0:
            net.chain_a.submit(ALICE, DepositOp(self.escrow, ALICE))
            net.chain_a.submit(BOB, DepositOp(self.escrow, BOB))

        record = self._inner.run(decision_prices)
        record.collateral = self.collateral

        if self.collateral > 0.0:
            self._settle_escrow(record)
            horizon = max(grid.t7, grid.t8) + self.params.tau_a + 1e-9
            net.settle_all(horizon)
            record.final_balances = net.balances()
        return record

    def _settle_escrow(self, record: SwapRecord) -> None:
        """Translate the swap outcome into Oracle settlements.

        The clock already ran to the end of the swap, so payout
        transactions are submitted immediately; the *decision* times in
        the table above were respected by the inner protocol's own
        advancement (payout discounting in the analytic model is
        validated separately -- the token flows here are what the
        record's balance audit checks).
        """
        outcome = record.outcome
        if outcome is SwapOutcome.NOT_INITIATED:
            self.oracle.return_both()
        elif outcome is SwapOutcome.ABORTED_AT_T2:
            self.oracle.forfeit_bob_to_alice()
        elif outcome is SwapOutcome.ABORTED_AT_T3:
            self.oracle.release_bob_deposit()
            self.oracle.forfeit_alice_to_bob()
        else:  # COMPLETED or BOB_FORFEITED: both discharged their duties
            self.oracle.release_bob_deposit()
            self.oracle.release_alice_deposit()
