"""Protocol stage/outcome vocabulary and the per-swap record.

:class:`SwapRecord` is the audit trail of one protocol run: which
decisions were taken at which price, every on-chain timestamp, the
outcome, and the agents' final balance changes -- everything the
Monte Carlo layer aggregates and the atomicity checker inspects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.parameters import SwapParameters
from repro.core.strategy import Action

__all__ = ["Stage", "SwapOutcome", "DecisionContext", "DecisionLogEntry", "SwapRecord"]


class Stage(str, enum.Enum):
    """The four decision points of the idealized timeline."""

    T1_INITIATE = "t1_initiate"
    T2_LOCK = "t2_lock"
    T3_REVEAL = "t3_reveal"
    T4_REDEEM = "t4_redeem"


class SwapOutcome(str, enum.Enum):
    """Terminal classification of a protocol run."""

    NOT_INITIATED = "not_initiated"
    ABORTED_AT_T2 = "aborted_at_t2"  # Bob never locked
    ABORTED_AT_T3 = "aborted_at_t3"  # Alice never revealed
    COMPLETED = "completed"
    BOB_FORFEITED = "bob_forfeited"  # secret revealed but Bob never redeemed
    ALICE_FORFEITED = "alice_forfeited"  # Alice's claim confirmed too late:
    # her reveal leaked through the mempool, Bob redeemed Token_a, but her
    # own Token_b claim missed the expiry (only possible with confirmation
    # jitter -- the atomicity violation Zakhary et al. warn about)

    @property
    def succeeded(self) -> bool:
        """Whether the swap's balance changes followed the paper's Table I."""
        return self is SwapOutcome.COMPLETED


@dataclass(frozen=True)
class DecisionContext:
    """Everything an agent may condition on at a decision point.

    ``price`` is the current Token_b price (in Token_a); agents see the
    same information set the paper's players do -- current price,
    agreed rate, parameters and the clock.
    """

    stage: Stage
    time: float
    price: float
    pstar: float
    params: SwapParameters
    collateral: float = 0.0


@dataclass(frozen=True)
class DecisionLogEntry:
    """One decision taken during a run."""

    stage: Stage
    agent: str
    time: float
    price: float
    action: Action
    crashed: bool = False


@dataclass
class SwapRecord:
    """Full audit trail of one protocol run."""

    pstar: float
    collateral: float = 0.0
    decisions: List[DecisionLogEntry] = field(default_factory=list)
    outcome: Optional[SwapOutcome] = None
    htlc_a_locked_at: Optional[float] = None
    htlc_b_locked_at: Optional[float] = None
    secret_revealed_at: Optional[float] = None
    alice_received_at: Optional[float] = None
    bob_received_at: Optional[float] = None
    final_balances: Dict[str, Dict[str, float]] = field(default_factory=dict)
    initial_balances: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def log(self, entry: DecisionLogEntry) -> None:
        """Append one decision."""
        self.decisions.append(entry)

    def balance_change(self, agent: str, token: str) -> float:
        """Net balance change of ``agent`` in ``token`` over the run."""
        before = self.initial_balances.get(agent, {}).get(token, 0.0)
        after = self.final_balances.get(agent, {}).get(token, 0.0)
        return after - before

    def matches_table1(self) -> bool:
        """Whether balance changes match the paper's Table I success row."""
        tol = 1e-9
        return (
            abs(self.balance_change("alice", "TOKEN_A") + self.pstar) <= tol
            and abs(self.balance_change("alice", "TOKEN_B") - 1.0) <= tol
            and abs(self.balance_change("bob", "TOKEN_A") - self.pstar) <= tol
            and abs(self.balance_change("bob", "TOKEN_B") + 1.0) <= tol
        )

    def is_no_op(self) -> bool:
        """Whether every balance is unchanged (clean abort)."""
        tol = 1e-9
        return all(
            abs(self.balance_change(agent, token)) <= tol
            for agent in ("alice", "bob")
            for token in ("TOKEN_A", "TOKEN_B")
        )

    def decision_at(self, stage: Stage) -> Optional[DecisionLogEntry]:
        """The logged decision at ``stage``, if it was reached."""
        for entry in self.decisions:
            if entry.stage is stage:
                return entry
        return None
