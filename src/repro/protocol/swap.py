"""The HTLC atomic-swap state machine (paper Sections II-B, III-B).

:class:`SwapProtocol` executes one swap attempt on a
:class:`~repro.chain.network.TwoChainNetwork`, delegating the four
decisions to agents and letting the chain substrate enforce every
timing rule (confirmation delays, mempool visibility, automatic
refunds at expiry). The engine itself never moves funds -- it only
submits the transactions a real participant would submit.

Timeline (idealized, Eq. (13); all offsets from ``t1 = 0``)::

    t1 = 0            Alice decides; on cont deploys HTLC_a
                      (expiry t_a = tau_a + tau_b + eps_b + tau_a)
    t2 = tau_a        HTLC_a confirmed; Bob verifies + decides; on cont
                      deploys HTLC_b (expiry t_b = t3 + tau_b)
    t3 = t2 + tau_b   HTLC_b confirmed; Alice verifies + decides; on
                      cont claims HTLC_b, revealing the secret
    t4 = t3 + eps_b   Bob reads the secret from Chain_b's mempool and
                      claims HTLC_a
    ... timeouts: HTLC_b refunds at t_b (+tau_b), HTLC_a at t_a (+tau_a)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.chain.crypto import Secret, new_secret
from repro.chain.htlc import HTLC, HTLCState
from repro.chain.network import ALICE, BOB, TwoChainNetwork
from repro.core.parameters import SwapParameters
from repro.core.strategy import Action
from repro.protocol.errors import AgentCrashed, ProtocolStateError
from repro.protocol.messages import (
    DecisionContext,
    DecisionLogEntry,
    Stage,
    SwapOutcome,
    SwapRecord,
)
from repro.stochastic.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (agents -> protocol)
    from repro.agents.base import SwapAgent

__all__ = ["SwapProtocol"]


class SwapProtocol:
    """One swap attempt between two agents.

    Parameters
    ----------
    params, pstar:
        The game configuration.
    alice, bob:
        Agents driving the four decisions.
    rng:
        Source of the swap secret.
    network:
        Optionally a pre-built network (must be freshly funded);
        by default one is created and funded.
    """

    def __init__(
        self,
        params: SwapParameters,
        pstar: float,
        alice: "SwapAgent",
        bob: "SwapAgent",
        rng: RandomState,
        network: Optional[TwoChainNetwork] = None,
        expiry_margin: float = 0.0,
        wait_slack: float = 0.0,
    ) -> None:
        if not pstar > 0.0:
            raise ValueError(f"pstar must be positive, got {pstar}")
        if expiry_margin < 0.0:
            raise ValueError(f"expiry_margin must be >= 0, got {expiry_margin}")
        if wait_slack < 0.0:
            raise ValueError(f"wait_slack must be >= 0, got {wait_slack}")
        self.params = params
        self.pstar = float(pstar)
        self.alice = alice
        self.bob = bob
        self.rng = rng
        self.expiry_margin = float(expiry_margin)
        self.wait_slack = float(wait_slack)
        if network is None:
            network = TwoChainNetwork(params)
            network.fund_agents(pstar)
        self.network = network
        self._ran = False

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _ask(self, agent: "SwapAgent", method: str, ctx: DecisionContext, record: SwapRecord) -> Action:
        """Invoke an agent decision, translating crashes into silence."""
        try:
            action: Action = getattr(agent, method)(ctx)
            crashed = False
        except AgentCrashed:
            action = Action.STOP
            crashed = True
        record.log(
            DecisionLogEntry(
                stage=ctx.stage,
                agent=agent.name,
                time=ctx.time,
                price=ctx.price,
                action=action,
                crashed=crashed,
            )
        )
        return action

    def _verify_htlc(
        self,
        contract: HTLC,
        sender: str,
        recipient: str,
        amount: float,
        hashlock: bytes,
        min_expiry: float,
    ) -> bool:
        """The paper's "verify that the contract is in order" step."""
        return (
            contract.state is HTLCState.LOCKED
            and contract.sender == sender
            and contract.recipient == recipient
            and abs(contract.amount - amount) <= 1e-12
            and contract.hashlock == hashlock
            and contract.expiry >= min_expiry
        )

    def _finalise(self, record: SwapRecord, horizon: float) -> SwapRecord:
        """Run out all pending events and snapshot final balances."""
        self.network.settle_all(horizon)
        record.final_balances = self.network.balances()
        return record

    # ------------------------------------------------------------------ #
    # the protocol run
    # ------------------------------------------------------------------ #

    def run(self, decision_prices: Sequence[float]) -> SwapRecord:
        """Execute one swap attempt.

        ``decision_prices`` are the Token_b prices observed at
        ``(t1, t2, t3)`` -- typically one row of
        :func:`repro.stochastic.paths.sample_decision_prices`.
        """
        if self._ran:
            raise ProtocolStateError("a SwapProtocol instance runs exactly once")
        self._ran = True
        if len(decision_prices) != 3:
            raise ValueError(
                f"need prices at (t1, t2, t3); got {len(decision_prices)} values"
            )
        p1, p2, p3 = (float(x) for x in decision_prices)

        params = self.params
        grid = params.grid
        net = self.network
        record = SwapRecord(pstar=self.pstar)
        record.initial_balances = net.balances()
        margin = self.expiry_margin
        wait = self.wait_slack
        # effective decision times: waiting `wait` extra hours after each
        # nominal confirmation instant tolerates late confirmations at the
        # cost of a longer schedule (a departure from the paper's
        # zero-waiting-time idealization, used by the robustness study)
        t2_eff = grid.t2 + wait
        t3_eff = t2_eff + params.tau_b + wait
        t4_eff = t3_eff + params.eps_b
        expiry_b = t3_eff + params.tau_b + margin
        expiry_a = t4_eff + params.tau_a + margin
        # jittered chains can push refunds past the nominal t7/t8
        jitter_slack = (
            self.params.tau_a * net.chain_a.confirmation_jitter
            + self.params.tau_b * net.chain_b.confirmation_jitter
        )
        horizon = (
            max(expiry_b + params.tau_b, expiry_a + params.tau_a)
            + jitter_slack
            + 1e-9
        )

        # ---- t1: Alice initiates or not -------------------------------- #
        ctx1 = DecisionContext(
            stage=Stage.T1_INITIATE, time=grid.t1, price=p1,
            pstar=self.pstar, params=params,
        )
        if self._ask(self.alice, "decide_initiate", ctx1, record) is Action.STOP:
            record.outcome = SwapOutcome.NOT_INITIATED
            return self._finalise(record, horizon)

        secret: Secret = new_secret(self.rng)
        _tx_a, htlc_a = net.chain_a.deploy_htlc(
            sender=ALICE,
            recipient=BOB,
            amount=self.pstar,
            hashlock=secret.hashlock,
            expiry=expiry_a,
        )

        # ---- t2: Bob verifies and locks or walks away ------------------- #
        net.advance_to(t2_eff)
        record.htlc_a_locked_at = htlc_a.locked_at
        bob_verified = self._verify_htlc(
            htlc_a,
            sender=ALICE,
            recipient=BOB,
            amount=self.pstar,
            hashlock=secret.hashlock,
            min_expiry=expiry_a,
        )
        ctx2 = DecisionContext(
            stage=Stage.T2_LOCK, time=t2_eff, price=p2,
            pstar=self.pstar, params=params,
        )
        if (
            not bob_verified
            or self._ask(self.bob, "decide_lock", ctx2, record) is Action.STOP
        ):
            record.outcome = SwapOutcome.ABORTED_AT_T2
            return self._finalise(record, horizon)

        _tx_b, htlc_b = net.chain_b.deploy_htlc(
            sender=BOB,
            recipient=ALICE,
            amount=1.0,
            hashlock=secret.hashlock,
            expiry=expiry_b,
        )

        # ---- t3: Alice verifies and reveals or waives ------------------- #
        net.advance_to(t3_eff)
        record.htlc_b_locked_at = htlc_b.locked_at
        alice_verified = self._verify_htlc(
            htlc_b,
            sender=BOB,
            recipient=ALICE,
            amount=1.0,
            hashlock=secret.hashlock,
            min_expiry=expiry_b,
        )
        ctx3 = DecisionContext(
            stage=Stage.T3_REVEAL, time=t3_eff, price=p3,
            pstar=self.pstar, params=params,
        )
        if (
            not alice_verified
            or self._ask(self.alice, "decide_reveal", ctx3, record) is Action.STOP
        ):
            record.outcome = SwapOutcome.ABORTED_AT_T3
            return self._finalise(record, horizon)

        net.chain_b.claim_htlc(htlc_b, claimer=ALICE, preimage=secret.preimage)
        record.secret_revealed_at = t3_eff

        # ---- t4: Bob reads the secret from the mempool and redeems ------ #
        net.advance_to(t4_eff)
        observed = net.chain_b.observe_preimage(secret.hashlock)
        ctx4 = DecisionContext(
            stage=Stage.T4_REDEEM, time=t4_eff, price=p3,
            pstar=self.pstar, params=params,
        )
        if (
            observed is not None
            and self._ask(self.bob, "decide_redeem", ctx4, record) is Action.CONT
        ):
            net.chain_a.claim_htlc(htlc_a, claimer=BOB, preimage=observed)

        # ---- settle and classify ---------------------------------------- #
        self._finalise(record, horizon)
        if htlc_a.state is HTLCState.CLAIMED and htlc_b.state is HTLCState.CLAIMED:
            record.outcome = SwapOutcome.COMPLETED
            record.alice_received_at = htlc_b.resolved_at
            record.bob_received_at = htlc_a.resolved_at
        elif htlc_b.state is HTLCState.CLAIMED:
            record.outcome = SwapOutcome.BOB_FORFEITED
            record.alice_received_at = htlc_b.resolved_at
        elif htlc_a.state is HTLCState.CLAIMED:
            # Alice revealed (leaking the secret through the mempool) but
            # her own claim confirmed after t_b: Bob redeemed Token_a AND
            # got Token_b back -- atomicity broken by timing, not malice
            record.outcome = SwapOutcome.ALICE_FORFEITED
            record.bob_received_at = htlc_a.resolved_at
        else:
            record.outcome = SwapOutcome.ABORTED_AT_T3
        return record
