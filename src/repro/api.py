"""The unified public solver API.

One typed facade over the package's three game solvers and the Monte
Carlo validator, with a single calling convention:
:class:`~repro.core.parameters.SwapParameters` plus keyword options in,
frozen result dataclasses out.

* :func:`solve` -- the basic game, the Section IV collateral game
  (``collateral > 0``), or the Han-et-al. premium baseline
  (``premium > 0``), dispatched from one signature;
* :func:`validate` -- Monte Carlo validation of the analytic success
  rate, returning a :class:`~repro.service.executor.ValidationResult`;
* :func:`sweep` -- one equilibrium per exchange rate, served through
  the process-wide :class:`~repro.service.api.SwapService` so repeated
  sweeps hit the cache and misses are answered by one vectorised grid
  solve;
* :func:`solve_grid` -- the raw vectorised engine
  (:mod:`repro.core.engine`): a whole ``P*`` grid as array kernels,
  returning an :class:`~repro.core.engine.EquilibriumGrid` of aligned
  arrays instead of per-point equilibria;
* :func:`success_rate` -- just the Eq. (31)/(40) number;
* :func:`swap_graph` -- solve a multi-party / packetized swap graph
  (:mod:`repro.swapgraph`), optionally replaying the equilibrium on
  simulated chains, served through the process-wide service.

The pre-facade top-level aliases (``repro.solve_swap_game``,
``repro.solve_collateral_game``, ``repro.solve_premium_game``) were
removed in v1.2 after their deprecation cycle -- accessing them raises
``ImportError`` pointing here. The underlying implementations in
:mod:`repro.core` are unchanged and the facade returns results equal
to them (property-tested).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.collateral import (
    CollateralEquilibrium,
    collateral_success_rate,
    solve_collateral_game,
)
from repro.core.engine import EquilibriumGrid, solve_grid
from repro.core.equilibrium import SwapEquilibrium
from repro.core.parameters import SwapParameters
from repro.core.premium import PremiumEquilibrium, solve_premium_game
from repro.core.solver import solve_swap_game
from repro.core.success_rate import success_rate as _basic_success_rate

__all__ = [
    "Equilibrium",
    "EquilibriumGrid",
    "solve",
    "solve_grid",
    "validate",
    "sweep",
    "success_rate",
    "swap_graph",
]

#: Any frozen equilibrium object the facade can return.
Equilibrium = Union[SwapEquilibrium, CollateralEquilibrium, PremiumEquilibrium]


def _resolve_params(params: Optional[SwapParameters]) -> SwapParameters:
    if params is None:
        return SwapParameters.default()
    if not isinstance(params, SwapParameters):
        raise TypeError(
            f"params must be SwapParameters or None, got {type(params).__name__}"
        )
    return params


def solve(
    params: Optional[SwapParameters] = None,
    pstar: float = 2.0,
    *,
    collateral: float = 0.0,
    premium: float = 0.0,
) -> Equilibrium:
    """Solve one swap game; the mechanism is selected by keyword.

    Parameters
    ----------
    params:
        Model parameters; ``None`` means the paper's Table III defaults.
    pstar:
        Agreed exchange rate ``P*``.
    collateral:
        Symmetric deposit ``Q`` (Section IV). ``> 0`` solves the
        collateral game.
    premium:
        Initiator premium ``W`` (Han et al. baseline). ``> 0`` solves
        the premium game. Mutually exclusive with ``collateral``.

    Returns
    -------
    Equilibrium
        A frozen :class:`SwapEquilibrium`,
        :class:`CollateralEquilibrium`, or :class:`PremiumEquilibrium`.
    """
    params = _resolve_params(params)
    if collateral > 0.0 and premium > 0.0:
        raise ValueError(
            "collateral and premium are alternative mechanisms; set at most one"
        )
    if collateral > 0.0:
        return solve_collateral_game(params, pstar, collateral)
    if premium > 0.0:
        return solve_premium_game(params, pstar, premium)
    return solve_swap_game(params, pstar)


def validate(
    params: Optional[SwapParameters] = None,
    pstar: float = 2.0,
    *,
    collateral: float = 0.0,
    n_paths: int = 20_000,
    seed: Optional[int] = None,
    protocol_level: bool = False,
):
    """Monte-Carlo-validate the analytic success rate at one point.

    Routed through the process-wide service, so the result carries the
    same deterministic key-derived seed a batch run would use when
    ``seed`` is ``None``, and repeated validations are served from
    cache.

    Returns
    -------
    ValidationResult
        Frozen record with the empirical
        :class:`~repro.simulation.montecarlo.MonteCarloResult`, the
        analytic rate, and the seed actually used; ``.passed`` is the
        CI-membership verdict.
    """
    from repro.service.api import default_service
    from repro.service.requests import ValidateRequest

    request = ValidateRequest(
        pstar=pstar,
        collateral=collateral,
        n_paths=n_paths,
        seed=seed,
        protocol_level=protocol_level,
        params=_resolve_params(params),
    )
    return default_service().run_batch([request])[0].unwrap()


def sweep(
    pstars: Sequence[float],
    params: Optional[SwapParameters] = None,
    *,
    collateral: float = 0.0,
) -> List[Equilibrium]:
    """Solve one game per exchange rate (the figure-sweep shape).

    Served through the process-wide cached service: a repeated sweep
    over the same grid is answered from memory. Raises
    :class:`~repro.service.errors.ServiceError` if any point fails.
    """
    from repro.service.api import default_service

    items = default_service().sweep(
        pstars, params=_resolve_params(params), collateral=collateral
    )
    return [item.unwrap() for item in items]


def success_rate(
    params: Optional[SwapParameters] = None,
    pstar: float = 2.0,
    *,
    collateral: float = 0.0,
) -> float:
    """Eq. (31) (or Eq. (40) when ``collateral > 0``) at one point."""
    params = _resolve_params(params)
    if collateral > 0.0:
        return collateral_success_rate(params, pstar, collateral)
    return _basic_success_rate(params, pstar)


def swap_graph(
    spec,
    *,
    n_lattice: Optional[int] = None,
    replay: bool = False,
    replay_paths: int = 400,
    seed: Optional[int] = None,
):
    """Solve a k-packet / n-party swap graph, optionally chain-replayed.

    ``spec`` is a :class:`~repro.swapgraph.spec.SwapGraphSpec` (build
    one with :meth:`SwapGraphSpec.two_party` or
    :meth:`SwapGraphSpec.cycle`). Routed through the process-wide
    service, so repeated solves are served from cache and replay seeds
    derive deterministically from the request key when ``seed=None``.

    Returns
    -------
    SwapGraphResult
        Frozen record with the
        :class:`~repro.swapgraph.solver.SwapGraphEquilibrium` and,
        when ``replay=True``, the
        :class:`~repro.swapgraph.replay.SwapGraphReplay` verdict.
    """
    from repro.service.api import default_service
    from repro.service.requests import SwapGraphRequest

    request = SwapGraphRequest(
        spec=spec,
        n_lattice=n_lattice,
        replay=replay,
        replay_paths=replay_paths,
        seed=seed,
    )
    return default_service().run_batch([request])[0].unwrap()
