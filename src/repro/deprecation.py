"""One-release deprecation shims, warned exactly once per process.

The repo's deprecation policy (DESIGN.md): a renamed parameter or flag
keeps working for one release behind a shim that emits a single
:class:`DeprecationWarning` naming the replacement; the next release
turns the shim into a hard error. This module is the shared mechanics
so every layer (service constructor, server config, CLI flags) warns
with the same voice and the same once-per-process discipline.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once"]

_warned: Set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen.

    ``stacklevel=3`` points the warning at the caller of the shimmed
    API, not at the shim itself.
    """
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def _reset_for_tests() -> None:
    """Forget warned keys (tests assert the warn-once behaviour)."""
    _warned.clear()
