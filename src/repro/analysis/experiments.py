"""The experiment registry: regenerate every paper artifact in one run.

:func:`run_all_experiments` executes each table/figure reproduction and
each extension experiment, collects paper-claim vs measured-value rows,
and renders the EXPERIMENTS.md report. This is the single source of
truth for the repository's reproduction record -- the committed
``EXPERIMENTS.md`` is this module's output.

The sweep- and validation-shaped experiments route through a
:class:`~repro.service.api.SwapService`, so a full registry run reuses
equilibria across experiments and -- when callers pass a pooled
service -- executes the Monte Carlo validations in parallel with
unchanged (deterministically seeded) results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.core.backward_induction import BackwardInduction
from repro.core.bayesian import BayesianSwapGame, TypeDistribution
from repro.core.carry import CarryBackwardInduction
from repro.core.feasible_range import feasible_pstar_range
from repro.core.fees import FeeBackwardInduction
from repro.core.optionality import optionality_report
from repro.core.parameters import SwapParameters
from repro.core.premium import PremiumBackwardInduction
from repro.core.success_rate import max_success_rate

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.api import SwapService

__all__ = ["ExperimentResult", "run_all_experiments", "render_markdown"]


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced claim."""

    experiment: str
    claim: str
    measured: str
    holds: bool


def _eq29(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    bounds = feasible_pstar_range(params)
    return [
        ExperimentResult(
            experiment="Eq. (29)",
            claim="feasible P* range = (1.5, 2.5) under Table III",
            measured=f"({bounds[0]:.4f}, {bounds[1]:.4f})",
            holds=abs(bounds[0] - 1.5) < 0.05 and abs(bounds[1] - 2.5) < 0.05,
        )
    ]


def _figure6(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    out: List[ExperimentResult] = []
    base = max_success_rate(params)

    out.append(
        ExperimentResult(
            experiment="Fig. 6 (shape)",
            claim="SR(P*) concave with interior max",
            measured=f"max SR = {base[1]:.4f} at P* = {base[0]:.4f}",
            holds=1.53 < base[0] < 2.53,
        )
    )

    def best(p) -> float:
        located = max_success_rate(p)
        return located[1] if located else 0.0

    checks = [
        ("higher alpha raises SR", best(params.replace(alpha_a=0.5, alpha_b=0.5)) > base[1]),
        ("higher r lowers SR", best(params.replace(r_a=0.015, r_b=0.015)) < base[1]),
        ("longer tau lowers SR", best(params.replace(tau_a=5.0)) < base[1]),
        ("upward mu raises SR", best(params.replace(mu=0.01)) > base[1]),
        ("higher sigma lowers max SR", best(params.replace(sigma=0.15)) < base[1]),
        ("sigma=0.2 non-viable", max_success_rate(params.replace(sigma=0.2)) is None),
    ]
    for claim, holds in checks:
        out.append(
            ExperimentResult(
                experiment="Fig. 6 (statics)",
                claim=claim,
                measured="confirmed" if holds else "CONTRADICTED",
                holds=holds,
            )
        )
    return out


def _figure9(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    rates = [
        service.success_rates([2.0], params=params, collateral=q)[0]
        for q in (0.0, 0.2, 0.5, 1.0)
    ]
    monotone = all(a < b for a, b in zip(rates, rates[1:]))
    return [
        ExperimentResult(
            experiment="Fig. 9",
            claim="SR increases with collateral Q",
            measured="SR(Q=0..1) = " + ", ".join(f"{r:.4f}" for r in rates),
            holds=monotone,
        )
    ]


def _validation(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    from repro.service.requests import ValidateRequest

    strategy, protocol = (
        item.unwrap()
        for item in service.validate_batch(
            [
                ValidateRequest(pstar=2.0, n_paths=200_000, seed=7, params=params),
                ValidateRequest(
                    pstar=2.0,
                    n_paths=6_000,
                    seed=11,
                    protocol_level=True,
                    params=params,
                ),
            ]
        )
    )
    return [
        ExperimentResult(
            experiment="X1 (validation)",
            claim="Monte Carlo SR inside CI of Eq. (31)",
            measured=(
                f"analytic {strategy.analytic:.4f};"
                f" strategy-level {strategy.empirical.success_rate:.4f};"
                f" protocol-level {protocol.empirical.success_rate:.4f}"
            ),
            holds=strategy.passed and protocol.passed,
        )
    ]


def _extensions(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    out: List[ExperimentResult] = []
    base_sr = service.success_rates([2.0], params=params)[0]

    belief = TypeDistribution.uniform([0.1, 0.3, 0.5])
    bayes = BayesianSwapGame(params, 2.0, belief, belief).realised_success_rate()
    out.append(
        ExperimentResult(
            experiment="X4 (uncertainty)",
            claim="belief uncertainty lowers SR",
            measured=f"{base_sr:.4f} -> {bayes:.4f}",
            holds=bayes < base_sr,
        )
    )

    carry_b = CarryBackwardInduction(params, 2.0, yield_b=0.004).success_rate()
    out.append(
        ExperimentResult(
            experiment="X5 (carry)",
            claim="Token_b staking yield lowers SR",
            measured=f"{base_sr:.4f} -> {carry_b:.4f}",
            holds=carry_b < base_sr,
        )
    )

    fee_sr = FeeBackwardInduction(params, 2.0, fee_a=0.05, fee_b=0.02).success_rate()
    out.append(
        ExperimentResult(
            experiment="X6 (fees)",
            claim="fees lower SR",
            measured=f"{base_sr:.4f} -> {fee_sr:.4f}",
            holds=fee_sr < base_sr,
        )
    )

    premium_sr = PremiumBackwardInduction(params, 2.0, 0.5).success_rate()
    collateral_sr = service.success_rates([2.0], params=params, collateral=0.5)[0]
    out.append(
        ExperimentResult(
            experiment="X3 (premium baseline)",
            claim="symmetric collateral beats initiator premium at equal stake",
            measured=f"premium {premium_sr:.4f} < collateral {collateral_sr:.4f}",
            holds=premium_sr < collateral_sr,
        )
    )

    report = optionality_report(params, 2.0)
    out.append(
        ExperimentResult(
            experiment="X8 (optionality)",
            claim="both agents hold valuable options (not only the initiator)",
            measured=(
                f"Alice {report.alice_option_value:+.4f},"
                f" Bob {report.bob_option_value:+.4f}"
            ),
            holds=report.alice_option_value > 0 and report.bob_option_value > 0,
        )
    )
    return out


def _laws(params: SwapParameters, service: "SwapService") -> List[ExperimentResult]:
    """X12: Figure 6/9 comparative statics under non-lognormal laws."""
    from repro.stochastic.law import LawSpec

    out: List[ExperimentResult] = []
    pstars = [1.8, 2.0, 2.2]
    base = service.success_rates(pstars, params=params)
    jumpy = params.replace(
        law=LawSpec.make(
            "merton", jump_intensity=0.2, jump_mean=-0.15, jump_std=0.15
        )
    )
    stormy = params.replace(law=LawSpec.make("regime"))

    jump_sr = service.success_rates(pstars, params=jumpy)
    regime_sr = service.success_rates(pstars, params=stormy)
    out.append(
        ExperimentResult(
            experiment="X12 (laws, Fig. 6)",
            claim=(
                "jump risk lowers SR at every P*; the mostly-calm regime "
                "raises it (stationary vol < sigma)"
            ),
            measured=(
                f"SR(2.0): lognormal {base[1]:.4f}, merton {jump_sr[1]:.4f},"
                f" regime {regime_sr[1]:.4f}"
            ),
            holds=all(j < b for j, b in zip(jump_sr, base))
            and all(g > b for g, b in zip(regime_sr, base)),
        )
    )

    for name, lawful in (("merton", jumpy), ("regime", stormy)):
        rates = [
            service.success_rates([2.0], params=lawful, collateral=q)[0]
            for q in (0.0, 0.5, 1.0)
        ]
        out.append(
            ExperimentResult(
                experiment="X12 (laws, Fig. 9)",
                claim=f"collateral remains monotone under {name}",
                measured="SR(Q=0,0.5,1) = "
                + ", ".join(f"{r:.4f}" for r in rates),
                holds=all(a < b for a, b in zip(rates, rates[1:])),
            )
        )

    degenerate = params.replace(
        law=LawSpec.make("merton", jump_intensity=0.0)
    )
    gap = max(
        abs(d - b)
        for d, b in zip(service.success_rates(pstars, params=degenerate), base)
    )
    out.append(
        ExperimentResult(
            experiment="X12 (laws, degeneracy)",
            claim="merton at jump_intensity=0 reproduces GBM to <= 1e-9",
            measured=f"max |delta SR| = {gap:.2e}",
            holds=gap <= 1e-9,
        )
    )
    return out


def run_all_experiments(
    params: Optional[SwapParameters] = None,
    service: "Optional[SwapService]" = None,
) -> List[ExperimentResult]:
    """Run the full reproduction record.

    ``service`` defaults to the shared in-process
    :func:`~repro.service.api.default_service`; pass a pooled instance
    (``SwapService(max_workers=N)``) to parallelise the Monte Carlo
    validations -- per-request seeds are fixed, so the record is
    identical either way.
    """
    from repro.service.api import default_service

    if params is None:
        params = SwapParameters.default()
    if service is None:
        service = default_service()
    results: List[ExperimentResult] = []
    for producer in (_eq29, _figure6, _figure9, _validation, _extensions, _laws):
        results.extend(producer(params, service))
    return results


def render_markdown(results: List[ExperimentResult]) -> str:
    """Render the results as a markdown table."""
    lines = [
        "| experiment | paper claim | measured | holds |",
        "|---|---|---|---|",
    ]
    for result in results:
        mark = "yes" if result.holds else "**NO**"
        lines.append(
            f"| {result.experiment} | {result.claim} | {result.measured} | {mark} |"
        )
    return "\n".join(lines)
