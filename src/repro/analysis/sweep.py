"""Parameter sweeps over the success-rate curve.

The machinery behind Figure 6: vary one model parameter across a set
of values and compute ``SR(P*)`` curves (plus feasible ranges and the
SR-maximising point) for each. Non-viable parameter values -- those
with an empty feasible ``P*`` range, which the paper marks with an
empty-square symbol -- are flagged rather than dropped.

Grid evaluation routes through the service layer
(:func:`repro.service.api.default_service` unless a caller passes its
own :class:`~repro.service.api.SwapService`), so repeated sweeps are
served from cache. The service's sweep verb answers each curve's cache
misses with *one* vectorised pass through the grid engine
(:func:`repro.core.engine.solve_grid`) -- one array solve per panel
value, not one backward induction per ``P*`` point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.feasible_range import feasible_pstar_range
from repro.core.parameters import SwapParameters
from repro.core.success_rate import max_success_rate

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.api import SwapService

__all__ = ["SweepCurve", "SweepResult", "sweep_parameter", "sr_curve_on_grid"]


@dataclass(frozen=True)
class SweepCurve:
    """One ``SR(P*)`` curve for one parameter value."""

    parameter: str
    value: float
    viable: bool
    feasible_range: Optional[Tuple[float, float]]
    pstars: Tuple[float, ...]
    rates: Tuple[float, ...]
    best_pstar: Optional[float]
    best_rate: Optional[float]

    @property
    def max_rate(self) -> float:
        """Peak SR over the evaluated grid (nan when not viable)."""
        finite = [r for r in self.rates if not np.isnan(r)]
        return max(finite) if finite else float("nan")


@dataclass(frozen=True)
class SweepResult:
    """All curves of one parameter sweep."""

    parameter: str
    curves: Tuple[SweepCurve, ...]

    def curve_for(self, value: float) -> SweepCurve:
        """The curve at a specific parameter value."""
        for curve in self.curves:
            if curve.value == value:
                return curve
        raise KeyError(f"no curve for {self.parameter}={value}")

    def viable_values(self) -> List[float]:
        """Parameter values with a non-empty feasible ``P*`` range."""
        return [c.value for c in self.curves if c.viable]


def sr_curve_on_grid(
    params: SwapParameters,
    n_points: int = 25,
    pad: float = 1e-4,
    service: "Optional[SwapService]" = None,
) -> Tuple[Optional[Tuple[float, float]], Tuple[float, ...], Tuple[float, ...]]:
    """``SR`` on an evenly spaced grid spanning the feasible ``P*`` range.

    Returns ``(feasible_range, pstars, rates)``; with no feasible range
    the grids are empty. The grid is solved through ``service`` (the
    shared default when ``None``), so repeated figure generation hits
    the equilibrium cache.
    """
    from repro.service.api import default_service

    bounds = feasible_pstar_range(params)
    if bounds is None:
        return None, (), ()
    lo, hi = bounds
    grid = np.linspace(lo * (1.0 + pad), hi * (1.0 - pad), n_points)
    svc = service if service is not None else default_service()
    rates = tuple(svc.success_rates([float(k) for k in grid], params=params))
    return bounds, tuple(float(k) for k in grid), rates


def sweep_parameter(
    base: SwapParameters,
    parameter: str,
    values: Sequence[float],
    n_points: int = 25,
    locate_max: bool = True,
    service: "Optional[SwapService]" = None,
) -> SweepResult:
    """Sweep ``parameter`` over ``values`` (Figure 6's panel generator).

    ``parameter`` accepts the flat keys of
    :meth:`SwapParameters.replace` (``alpha_a``, ``r_b``, ``tau_a``,
    ``mu``, ``sigma``, ...).
    """
    curves: List[SweepCurve] = []
    for value in values:
        params = base.replace(**{parameter: float(value)})
        bounds, pstars, rates = sr_curve_on_grid(
            params, n_points=n_points, service=service
        )
        viable = bounds is not None
        best_pstar = best_rate = None
        if viable and locate_max:
            located = max_success_rate(params)
            if located is not None:
                best_pstar, best_rate = located
        curves.append(
            SweepCurve(
                parameter=parameter,
                value=float(value),
                viable=viable,
                feasible_range=bounds,
                pstars=pstars,
                rates=rates,
                best_pstar=best_pstar,
                best_rate=best_rate,
            )
        )
    return SweepResult(parameter=parameter, curves=tuple(curves))
